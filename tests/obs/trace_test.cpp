#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "util/json.hpp"

namespace ff::obs {
namespace {

/// Every test owns the process-global recorder for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing(false);
    TraceRecorder::instance().set_ring_capacity(8192);
    TraceRecorder::instance().clear();
  }
  void TearDown() override {
    set_tracing(false);
    TraceRecorder::instance().clear();
  }
};

TEST_F(TraceTest, DisabledEmitsNothing) {
  trace_instant("test", "test.instant");
  trace_counter("test", "test.counter", 1.0);
  { Span span("test", "test.span"); }
  EXPECT_TRUE(TraceRecorder::instance().flush().empty());
}

TEST_F(TraceTest, SpanNestingProducesBalancedBeginEnd) {
  set_tracing(true);
  {
    Span outer("test", "test.outer", {{"depth", 0}});
    {
      Span inner("test", "test.inner", {{"depth", 1}});
      trace_instant("test", "test.leaf");
    }
  }
  const auto events = TraceRecorder::instance().flush();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, EventKind::Begin);
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_EQ(events[1].kind, EventKind::Begin);
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[2].kind, EventKind::Instant);
  EXPECT_EQ(events[3].kind, EventKind::End);
  EXPECT_STREQ(events[3].name, "test.inner");
  EXPECT_EQ(events[4].kind, EventKind::End);
  EXPECT_STREQ(events[4].name, "test.outer");
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);   // emission order
    EXPECT_GE(events[i].ts_s, events[i - 1].ts_s); // monotone wall clock
  }
}

TEST_F(TraceTest, SpanOpenAcrossDisableStillCloses) {
  set_tracing(true);
  {
    Span span("test", "test.span");
    set_tracing(false);  // e.g. a tool stopping capture mid-flight
  }
  const auto events = TraceRecorder::instance().flush();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::Begin);
  EXPECT_EQ(events[1].kind, EventKind::End);
}

TEST_F(TraceTest, ArgsCarryTypedValues) {
  set_tracing(true);
  trace_instant("test", "test.args",
                {{"count", 42}, {"ratio", 0.5}, {"id", "run-7"}});
  trace_counter("test", "test.gauge", 3.25, {{"queue", "q0"}});
  const auto events = TraceRecorder::instance().flush();
  ASSERT_EQ(events.size(), 2u);

  const TraceEvent& instant = events[0];
  ASSERT_EQ(instant.arg_count, 3u);
  EXPECT_EQ(instant.args[0].type, Arg::Type::Int);
  EXPECT_EQ(instant.args[0].int_value, 42);
  EXPECT_EQ(instant.args[1].type, Arg::Type::Float);
  EXPECT_DOUBLE_EQ(instant.args[1].float_value, 0.5);
  EXPECT_EQ(instant.args[2].type, Arg::Type::Str);
  EXPECT_EQ(instant.args[2].str_value, "run-7");

  const TraceEvent& counter = events[1];
  EXPECT_EQ(counter.kind, EventKind::Counter);
  ASSERT_EQ(counter.arg_count, 2u);
  EXPECT_STREQ(counter.args[0].key, "value");
  EXPECT_DOUBLE_EQ(counter.args[0].float_value, 3.25);
  EXPECT_EQ(counter.args[1].str_value, "q0");
}

TEST_F(TraceTest, VirtualClockEventsKeepExplicitTimestamps) {
  set_tracing(true);
  trace_instant_at(120.0, "test", "test.virtual", {{"step", 1}});
  trace_counter_at(240.0, "test", "test.virtual.gauge", 7.0);
  const auto events = TraceRecorder::instance().flush();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].clock, ClockDomain::Virtual);
  EXPECT_DOUBLE_EQ(events[0].ts_s, 120.0);
  EXPECT_EQ(events[1].clock, ClockDomain::Virtual);
  EXPECT_DOUBLE_EQ(events[1].ts_s, 240.0);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  auto& recorder = TraceRecorder::instance();
  recorder.set_ring_capacity(16);
  set_tracing(true);
  for (int i = 0; i < 100; ++i) {
    trace_instant("test", "test.flood", {{"i", i}});
  }
  const auto events = recorder.flush();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(recorder.dropped(), 84u);
  // The survivors are the newest 16, still in emission order.
  EXPECT_EQ(events.front().args[0].int_value, 84);
  EXPECT_EQ(events.back().args[0].int_value, 99);
  recorder.clear();
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST_F(TraceTest, ThreadsInterleaveWithDistinctTidsAndGlobalOrder) {
  set_tracing(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span("test", "test.worker", {{"worker", t}, {"i", i}});
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto events = TraceRecorder::instance().flush();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread * 2));
  // flush() returns global emission order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  // Each worker's events carry one consistent recorder thread index, and
  // per thread the Begin/End stream is perfectly balanced and in order.
  std::map<int64_t, uint32_t> tid_of_worker;
  std::map<uint32_t, int> open_spans;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::Begin) {
      const int64_t worker = event.args[0].int_value;
      auto [it, inserted] = tid_of_worker.emplace(worker, event.thread);
      EXPECT_EQ(it->second, event.thread);
      ++open_spans[event.thread];
    } else {
      --open_spans[event.thread];
      EXPECT_GE(open_spans[event.thread], 0);
    }
  }
  EXPECT_EQ(tid_of_worker.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, open] : open_spans) EXPECT_EQ(open, 0);
}

TEST_F(TraceTest, JsonlRoundTripPreservesEveryField) {
  set_tracing(true);
  {
    Span span("roundtrip", "rt.span", {{"n", 3}, {"x", 1.5}, {"s", "abc"}});
    trace_instant_at(42.0, "roundtrip", "rt.virtual", {{"esc", "a\"b\\c\n"}});
    trace_counter("roundtrip", "rt.counter", 2.0, {{"k", "v"}});
  }
  const auto events = TraceRecorder::instance().flush();
  const std::string jsonl = to_jsonl(events);

  std::istringstream lines(jsonl);
  std::string line;
  size_t index = 0;
  while (std::getline(lines, line)) {
    ASSERT_LT(index, events.size());
    const TraceEvent& event = events[index];
    const Json parsed = Json::parse(line);
    ASSERT_TRUE(parsed.is_object()) << line;
    EXPECT_EQ(parsed["seq"].as_int(), static_cast<int64_t>(event.seq));
    // ts is serialized with 9 significant digits, not full precision.
    EXPECT_NEAR(parsed["ts"].as_double(), event.ts_s,
                1e-9 + 1e-8 * std::abs(event.ts_s));
    EXPECT_EQ(parsed["clock"].as_string(),
              event.clock == ClockDomain::Wall ? "wall" : "virtual");
    EXPECT_EQ(parsed["cat"].as_string(), event.category);
    EXPECT_EQ(parsed["name"].as_string(), event.name);
    EXPECT_EQ(parsed["tid"].as_int(), static_cast<int64_t>(event.thread));
    ASSERT_TRUE(parsed["args"].is_object());
    EXPECT_EQ(parsed["args"].as_object().size(), event.arg_count);
    for (size_t a = 0; a < event.arg_count; ++a) {
      const Arg& arg = event.args[a];
      const Json& value = parsed["args"][arg.key];
      switch (arg.type) {
        case Arg::Type::Int:
          EXPECT_EQ(value.as_int(), arg.int_value);
          break;
        case Arg::Type::Float:
          EXPECT_DOUBLE_EQ(value.as_double(), arg.float_value);
          break;
        case Arg::Type::Str:
          EXPECT_EQ(value.as_string(), arg.str_value);
          break;
      }
    }
    ++index;
  }
  EXPECT_EQ(index, events.size());
}

TEST_F(TraceTest, ChromeTraceIsValidJsonWithClockProcesses) {
  set_tracing(true);
  {
    Span span("chrome", "c.span", {{"n", 1}});
    trace_instant("chrome", "c.instant");
    trace_counter("chrome", "c.counter", 5.0);
    trace_instant_at(10.0, "chrome", "c.virtual");
  }
  const auto events = TraceRecorder::instance().flush();
  const Json parsed = Json::parse(to_chrome_trace(events));
  ASSERT_TRUE(parsed.is_array());
  const auto& array = parsed.as_array();
  // Two process_name metadata events label the clock domains.
  ASSERT_GE(array.size(), 2u);
  EXPECT_EQ(array[0]["ph"].as_string(), "M");
  EXPECT_EQ(array[1]["ph"].as_string(), "M");

  std::map<std::string, int> phases;
  for (size_t i = 2; i < array.size(); ++i) {
    const Json& entry = array[i];
    phases[entry["ph"].as_string()]++;
    if (entry["ph"].as_string() == "i") {
      EXPECT_EQ(entry["s"].as_string(), "t");
    }
    // Wall events on pid 1, virtual on pid 2.
    EXPECT_EQ(entry["pid"].as_int(),
              entry["name"].as_string() == "c.virtual" ? 2 : 1);
  }
  EXPECT_EQ(phases["B"], 1);
  EXPECT_EQ(phases["E"], 1);
  EXPECT_EQ(phases["i"], 2);
  EXPECT_EQ(phases["C"], 1);
}

TEST_F(TraceTest, SetRingCapacityAppliesToAllThreads) {
  auto& recorder = TraceRecorder::instance();
  recorder.set_ring_capacity(4);
  EXPECT_EQ(recorder.ring_capacity(), 4u);
  set_tracing(true);
  std::thread other([] {
    for (int i = 0; i < 10; ++i) trace_instant("test", "test.other");
  });
  other.join();
  for (int i = 0; i < 10; ++i) trace_instant("test", "test.main");
  const auto events = recorder.flush();
  EXPECT_EQ(events.size(), 8u);  // 4 per thread survive
  EXPECT_GT(recorder.dropped(), 0u);
}

}  // namespace
}  // namespace ff::obs
