#include "savanna/provenance.hpp"

#include <gtest/gtest.h>

namespace ff::savanna {
namespace {

RunTracker populated_tracker() {
  RunTracker tracker;
  tracker.add_run("done-run");
  tracker.mark_started("done-run", 10.0, 3);
  tracker.mark_done("done-run", 20.0);
  tracker.add_run("failed-run");
  tracker.mark_started("failed-run", 5.0, 7);
  tracker.mark_failed("failed-run", 9.0, "/gpfs/host42/core.1234");
  tracker.add_run("never-started");
  return tracker;
}

TEST(Provenance, SameSitePolicyKeepsEverything) {
  const Json exported =
      export_provenance(populated_tracker(), same_site_policy());
  EXPECT_EQ(exported.size(), 3u);
  EXPECT_TRUE(exported.contains("never-started"));
  const Json& failure = exported["failed-run"]["events"][size_t{1}];
  EXPECT_EQ(failure["detail"].as_string(), "/gpfs/host42/core.1234");
  EXPECT_DOUBLE_EQ(exported["done-run"]["events"][size_t{0}]["time"].as_double(),
                   10.0);
  EXPECT_EQ(exported["done-run"]["events"][size_t{0}]["node"].as_int(), 3);
}

TEST(Provenance, PublicReleasePolicyStripsSensitiveFields) {
  const Json exported =
      export_provenance(populated_tracker(), public_release_policy());
  // Never-started runs dropped.
  EXPECT_EQ(exported.size(), 2u);
  EXPECT_FALSE(exported.contains("never-started"));
  // States and attempts always survive.
  EXPECT_EQ(exported["failed-run"]["state"].as_string(), "failed");
  EXPECT_EQ(exported["failed-run"]["attempts"].as_int(), 1);
  // Timestamps, nodes and failure details do not.
  for (const Json& event : exported["failed-run"]["events"].as_array()) {
    EXPECT_FALSE(event.contains("time"));
    EXPECT_FALSE(event.contains("node"));
    EXPECT_FALSE(event.contains("detail"));
    EXPECT_TRUE(event.contains("kind"));
  }
}

TEST(Provenance, CustomPolicyMix) {
  ExportPolicy policy;
  policy.include_timestamps = true;
  policy.include_nodes = false;
  policy.include_failure_details = false;
  policy.include_never_started = true;
  const Json exported = export_provenance(populated_tracker(), policy);
  EXPECT_EQ(exported.size(), 3u);
  const Json& start = exported["done-run"]["events"][size_t{0}];
  EXPECT_TRUE(start.contains("time"));
  EXPECT_FALSE(start.contains("node"));
}

TEST(Provenance, ExportIsValidTrackerSubset) {
  // The exported fragment must still parse as structured provenance (what
  // a downstream consumer loads) — attempt counts and states intact.
  const Json exported =
      export_provenance(populated_tracker(), same_site_policy());
  const RunTracker reloaded = RunTracker::from_json(exported);
  EXPECT_EQ(reloaded.counts().done, 1u);
  EXPECT_EQ(reloaded.counts().failed, 1u);
  EXPECT_EQ(reloaded.attempts("failed-run"), 1u);
}

TEST(Provenance, EmptyTrackerExportsEmptyObject) {
  const Json exported = export_provenance(RunTracker{}, public_release_policy());
  EXPECT_TRUE(exported.is_object());
  EXPECT_EQ(exported.size(), 0u);
}

}  // namespace
}  // namespace ff::savanna
