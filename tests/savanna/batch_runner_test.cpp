#include "savanna/batch_runner.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::savanna {
namespace {

sim::MachineSpec quiet_machine(int nodes, double queue_wait = 0) {
  sim::MachineSpec spec = sim::institutional_cluster();
  spec.nodes = nodes;
  spec.queue_wait_mean_s = queue_wait;
  return spec;
}

std::vector<sim::TaskSpec> uniform_tasks(size_t count, double duration) {
  std::vector<sim::TaskSpec> tasks;
  for (size_t i = 0; i < count; ++i) {
    sim::TaskSpec task;
    task.id = "t" + std::to_string(i);
    task.duration_s = duration;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(BatchRunner, SingleJobCompletesEverything) {
  sim::Simulation sim;
  sim::BatchSystem batch(sim, quiet_machine(8), 1);
  CampaignRunOptions options;
  options.execution.nodes = 4;
  options.execution.walltime_s = 100;
  const auto report =
      run_campaign_through_batch(sim, batch, uniform_tasks(8, 10), options);
  EXPECT_EQ(report.jobs_submitted, 1u);
  EXPECT_EQ(report.inner.completed_runs, 8u);
  EXPECT_EQ(report.inner.remaining_runs, 0u);
  EXPECT_DOUBLE_EQ(report.total_queue_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(report.total_wall_s, 20.0);  // two waves of 10s on 4 nodes
}

TEST(BatchRunner, ResubmissionGoesBackThroughTheQueue) {
  sim::Simulation sim;
  sim::BatchSystem batch(sim, quiet_machine(2), 1);
  CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 25;  // 4 completions per allocation
  const auto report =
      run_campaign_through_batch(sim, batch, uniform_tasks(10, 10), options);
  EXPECT_EQ(report.inner.completed_runs, 10u);
  EXPECT_EQ(report.jobs_submitted, 3u);
  EXPECT_EQ(report.inner.allocations_used, 3u);
  // Three back-to-back allocations; killed third-wave runs hold each
  // full allocation to its 25 s walltime: 25 + 25 + 10.
  EXPECT_DOUBLE_EQ(report.total_wall_s, 60.0);
}

TEST(BatchRunner, QueueWaitsAccumulatePerSubmission) {
  sim::Simulation sim;
  sim::BatchSystem batch(sim, quiet_machine(2, /*queue_wait=*/300), 7);
  CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 25;
  const auto report =
      run_campaign_through_batch(sim, batch, uniform_tasks(10, 10), options);
  EXPECT_EQ(report.inner.completed_runs, 10u);
  EXPECT_GT(report.total_queue_wait_s, 0.0);
  // Wall includes the waits on top of the 60 s of allocations.
  EXPECT_GT(report.total_wall_s, 60.0);
  EXPECT_NEAR(report.total_wall_s, 60.0 + report.total_queue_wait_s, 1e-6);
}

TEST(BatchRunner, ImpossibleTaskStopsAfterOneAllocation) {
  sim::Simulation sim;
  sim::BatchSystem batch(sim, quiet_machine(2), 1);
  CampaignRunOptions options;
  options.execution.nodes = 1;
  options.execution.walltime_s = 5;  // task needs 10
  const auto report =
      run_campaign_through_batch(sim, batch, uniform_tasks(1, 10), options);
  EXPECT_EQ(report.inner.completed_runs, 0u);
  EXPECT_EQ(report.inner.remaining_runs, 1u);
  EXPECT_EQ(report.jobs_submitted, 1u);
}

TEST(BatchRunner, MaxAllocationsRespected) {
  sim::Simulation sim;
  sim::BatchSystem batch(sim, quiet_machine(1), 1);
  CampaignRunOptions options;
  options.execution.nodes = 1;
  options.execution.walltime_s = 10.5;
  options.max_allocations = 2;
  const auto report =
      run_campaign_through_batch(sim, batch, uniform_tasks(10, 10), options);
  EXPECT_EQ(report.inner.allocations_used, 2u);
  EXPECT_EQ(report.inner.completed_runs, 2u);
  EXPECT_EQ(report.inner.remaining_runs, 8u);
}

TEST(BatchRunner, TrackerSeesBatchTimeline) {
  sim::Simulation sim;
  sim::BatchSystem batch(sim, quiet_machine(2, 100), 3);
  CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 1000;
  RunTracker tracker;
  const auto report = run_campaign_through_batch(sim, batch, uniform_tasks(4, 10),
                                                 options, &tracker);
  EXPECT_EQ(report.inner.completed_runs, 4u);
  EXPECT_EQ(tracker.counts().done, 4u);
  // Start times in the tracker reflect the queue wait (allocation start).
  const Json provenance = tracker.to_json();
  const double start =
      provenance["t0"]["events"][size_t{0}]["time"].as_double();
  EXPECT_GT(start, 0.0);  // waited in the queue before starting
}

TEST(BatchRunner, InfiniteWalltimeRejected) {
  sim::Simulation sim;
  sim::BatchSystem batch(sim, quiet_machine(2), 1);
  CampaignRunOptions options;  // default walltime is infinite
  EXPECT_THROW(
      run_campaign_through_batch(sim, batch, uniform_tasks(1, 1), options),
      Error);
}

TEST(BatchRunner, BaselineSetBackendSuffersMoreSubmissions) {
  // With the same walltime, the set-synchronized backend completes less
  // per allocation, so it needs more trips through the queue — the cost
  // the paper's Fig. 7 ratio includes.
  sim::DurationModel durations;
  durations.median_s = 50;
  durations.sigma = 0.8;
  const auto tasks = sim::make_ensemble(60, durations, 5);

  auto run_with_backend = [&](Backend backend) {
    sim::Simulation sim;
    sim::BatchSystem batch(sim, quiet_machine(8, 600), 11);
    CampaignRunOptions options;
    options.backend = backend;
    options.execution.nodes = 8;
    options.execution.walltime_s = 400;
    return run_campaign_through_batch(sim, batch, tasks, options);
  };
  const auto set_report = run_with_backend(Backend::SetSynchronized);
  const auto pilot_report = run_with_backend(Backend::Pilot);
  EXPECT_EQ(pilot_report.inner.remaining_runs, 0u);
  EXPECT_LE(pilot_report.jobs_submitted, set_report.jobs_submitted);
  EXPECT_LE(pilot_report.total_wall_s, set_report.total_wall_s);
}

}  // namespace
}  // namespace ff::savanna
