#include "savanna/campaign_runner.hpp"

#include <gtest/gtest.h>

namespace ff::savanna {
namespace {

std::vector<sim::TaskSpec> uniform_tasks(size_t count, double duration) {
  std::vector<sim::TaskSpec> tasks;
  for (size_t i = 0; i < count; ++i) {
    sim::TaskSpec task;
    task.id = "t" + std::to_string(i);
    task.duration_s = duration;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(CampaignRunner, SingleAllocationCompletesEverything) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 4;
  const auto result = run_with_resubmission(sim, uniform_tasks(8, 10), options);
  EXPECT_EQ(result.allocations_used, 1u);
  EXPECT_EQ(result.completed_runs, 8u);
  EXPECT_EQ(result.remaining_runs, 0u);
}

TEST(CampaignRunner, ResubmissionFinishesWorkAcrossAllocations) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 25.0;  // 2 nodes * 2 runs of 10 per allocation
  const auto result = run_with_resubmission(sim, uniform_tasks(10, 10), options);
  EXPECT_EQ(result.completed_runs, 10u);
  EXPECT_EQ(result.remaining_runs, 0u);
  EXPECT_GT(result.allocations_used, 1u);
  EXPECT_EQ(result.reports.size(), result.allocations_used);
}

TEST(CampaignRunner, MaxAllocationsCapsWork) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 1;
  options.execution.walltime_s = 10.5;
  options.max_allocations = 3;
  const auto result = run_with_resubmission(sim, uniform_tasks(10, 10), options);
  EXPECT_EQ(result.allocations_used, 3u);
  EXPECT_EQ(result.completed_runs, 3u);
  EXPECT_EQ(result.remaining_runs, 7u);
}

TEST(CampaignRunner, ImpossibleTaskDoesNotLoopForever) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 1;
  options.execution.walltime_s = 5.0;  // task needs 10
  const auto result = run_with_resubmission(sim, uniform_tasks(1, 10), options);
  EXPECT_EQ(result.completed_runs, 0u);
  EXPECT_EQ(result.remaining_runs, 1u);
  EXPECT_GE(result.allocations_used, 1u);
}

TEST(CampaignRunner, TrackerReceivesFullProvenance) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 25.0;
  RunTracker tracker;
  const auto result =
      run_with_resubmission(sim, uniform_tasks(6, 10), options, &tracker);
  EXPECT_EQ(result.completed_runs, 6u);
  const auto counts = tracker.counts();
  EXPECT_EQ(counts.total, 6u);
  EXPECT_EQ(counts.done, 6u);
  EXPECT_TRUE(tracker.needing_rerun().empty());
}

TEST(CampaignRunner, FailedRunsRetryInNextAllocation) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 2;
  int failures_left = 1;
  options.execution.fails = [&](const sim::TaskSpec& task, int) {
    if (task.id == "t0" && failures_left > 0) {
      --failures_left;
      return true;
    }
    return false;
  };
  RunTracker tracker;
  const auto result =
      run_with_resubmission(sim, uniform_tasks(4, 10), options, &tracker);
  EXPECT_EQ(result.completed_runs, 4u);
  EXPECT_EQ(result.allocations_used, 2u);  // retry allocation for t0
  EXPECT_EQ(tracker.attempts("t0"), 2u);
  EXPECT_EQ(tracker.attempts("t1"), 1u);
}

TEST(CampaignRunner, SetBackendUsesBarriers) {
  CampaignRunOptions set_options;
  set_options.backend = Backend::SetSynchronized;
  set_options.execution.nodes = 2;
  CampaignRunOptions pilot_options = set_options;
  pilot_options.backend = Backend::Pilot;

  std::vector<sim::TaskSpec> skewed;
  for (size_t i = 0; i < 6; ++i) {
    sim::TaskSpec task;
    task.id = "t" + std::to_string(i);
    task.duration_s = (i % 2 == 0) ? 10.0 : 50.0;
    skewed.push_back(std::move(task));
  }
  sim::Simulation sim_a;
  sim::Simulation sim_b;
  const auto set_result = run_with_resubmission(sim_a, skewed, set_options);
  const auto pilot_result = run_with_resubmission(sim_b, skewed, pilot_options);
  EXPECT_EQ(set_result.completed_runs, 6u);
  EXPECT_EQ(pilot_result.completed_runs, 6u);
  EXPECT_GT(pilot_result.utilization(), set_result.utilization());
}

}  // namespace
}  // namespace ff::savanna
