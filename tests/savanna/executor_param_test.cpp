// Property-style sweeps over the executors: for many (nodes, ensemble
// size, seed, walltime) combinations, both backends must satisfy the
// scheduling invariants, and the pilot must never lose to the barrier
// runner.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "savanna/executor.hpp"

namespace ff::savanna {
namespace {

struct ExecutorCase {
  int nodes;
  size_t tasks;
  uint64_t seed;
  double walltime;  // 0 = unlimited
};

class ExecutorProperties : public ::testing::TestWithParam<ExecutorCase> {
 protected:
  std::vector<sim::TaskSpec> make_tasks() const {
    sim::DurationModel model;
    model.median_s = 120;
    model.sigma = 0.6;
    model.straggler_fraction = 0.1;
    return sim::make_ensemble(GetParam().tasks, model, GetParam().seed);
  }

  ExecutionOptions make_options() const {
    ExecutionOptions options;
    options.nodes = GetParam().nodes;
    if (GetParam().walltime > 0) options.walltime_s = GetParam().walltime;
    return options;
  }

  static void check_invariants(const ExecutionReport& report, size_t total,
                               const ExecutionOptions& options) {
    // Every task is accounted for exactly once.
    EXPECT_EQ(report.completed.size() + report.failed.size() +
                  report.killed.size() + report.not_started.size(),
              total);
    std::set<std::string> seen;
    for (const auto& list : {report.completed, report.failed, report.killed,
                             report.not_started}) {
      for (const auto& id : list) EXPECT_TRUE(seen.insert(id).second) << id;
    }
    // Node accounting.
    EXPECT_EQ(report.node_timeline.size(), static_cast<size_t>(options.nodes));
    EXPECT_LE(report.busy_node_seconds, report.allocation_node_seconds + 1e-6);
    EXPECT_LE(report.makespan_s, options.walltime_s + 1e-9);
    // Intervals are disjoint, ordered, inside [0, makespan].
    for (const auto& intervals : report.node_timeline) {
      for (size_t i = 0; i < intervals.size(); ++i) {
        EXPECT_LE(intervals[i].start, intervals[i].end);
        EXPECT_GE(intervals[i].start, 0.0);
        EXPECT_LE(intervals[i].end, report.makespan_s + 1e-9);
        if (i > 0) {
          EXPECT_GE(intervals[i].start, intervals[i - 1].end - 1e-9);
        }
      }
    }
    // Utilization is a fraction.
    EXPECT_GE(report.utilization(), 0.0);
    EXPECT_LE(report.utilization(), 1.0 + 1e-9);
  }
};

TEST_P(ExecutorProperties, SetSynchronizedInvariantsHold) {
  const auto tasks = make_tasks();
  const auto options = make_options();
  sim::Simulation sim;
  const auto report = run_set_synchronized(sim, tasks, options);
  check_invariants(report, tasks.size(), options);
}

TEST_P(ExecutorProperties, PilotInvariantsHold) {
  const auto tasks = make_tasks();
  const auto options = make_options();
  sim::Simulation sim;
  const auto report = run_pilot(sim, tasks, options);
  check_invariants(report, tasks.size(), options);
}

TEST_P(ExecutorProperties, PilotNeverSlowerAndNeverLessComplete) {
  const auto tasks = make_tasks();
  const auto options = make_options();
  sim::Simulation sim_a;
  sim::Simulation sim_b;
  const auto set_report = run_set_synchronized(sim_a, tasks, options);
  const auto pilot_report = run_pilot(sim_b, tasks, options);
  // Without a walltime the pilot strictly dominates on makespan; with one,
  // both clip at the walltime so only completions are comparable.
  if (!std::isfinite(options.walltime_s)) {
    EXPECT_LE(pilot_report.makespan_s, set_report.makespan_s + 1e-9);
  }
  // Within a walltime the pilot completes at least as many runs.
  EXPECT_GE(pilot_report.completed.size(), set_report.completed.size());
}

TEST_P(ExecutorProperties, DeterministicAcrossRuns) {
  const auto tasks = make_tasks();
  const auto options = make_options();
  sim::Simulation sim_a;
  sim::Simulation sim_b;
  const auto a = run_pilot(sim_a, tasks, options);
  const auto b = run_pilot(sim_b, tasks, options);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorProperties,
    ::testing::Values(ExecutorCase{1, 1, 1, 0}, ExecutorCase{1, 17, 2, 0},
                      ExecutorCase{4, 16, 3, 0}, ExecutorCase{8, 64, 4, 0},
                      ExecutorCase{16, 50, 5, 0}, ExecutorCase{20, 200, 6, 0},
                      ExecutorCase{8, 64, 7, 900}, ExecutorCase{4, 40, 8, 300},
                      ExecutorCase{20, 300, 9, 7200},
                      ExecutorCase{32, 32, 10, 0}),
    [](const ::testing::TestParamInfo<ExecutorCase>& info) {
      return "n" + std::to_string(info.param.nodes) + "_t" +
             std::to_string(info.param.tasks) + "_s" +
             std::to_string(info.param.seed) + "_w" +
             std::to_string(static_cast<int>(info.param.walltime));
    });

}  // namespace
}  // namespace ff::savanna
