// docs/journal_format.md is the normative on-disk format spec; the record
// registry in savanna/journal.cpp is the implementation. This test pins the
// two together in both directions — the same contract doc_sync_test
// enforces for lint codes and trace_lint enforces for trace events. A
// record kind counts as documented when the spec shows its discriminator
// literally, e.g. `"kind":"alloc"` in backticks.

#include <gtest/gtest.h>

#include <regex>
#include <set>
#include <string>

#include "savanna/journal.hpp"
#include "util/fs.hpp"

namespace ff::savanna {
namespace {

std::set<std::string> documented_kinds() {
  const std::string text =
      read_file(std::string(FF_REPO_ROOT) + "/docs/journal_format.md");
  std::set<std::string> kinds;
  const std::regex pattern("`\"kind\":\"([a-z_]+)\"`");
  for (std::sregex_iterator it(text.begin(), text.end(), pattern), end;
       it != end; ++it) {
    kinds.insert((*it)[1].str());
  }
  return kinds;
}

TEST(JournalFormatDoc, EveryRecordKindIsDocumented) {
  const std::set<std::string> documented = documented_kinds();
  EXPECT_FALSE(documented.empty())
      << "docs/journal_format.md defines no record kinds — each record "
         "section must show its discriminator as `\"kind\":\"<name>\"`";
  for (const JournalRecordInfo& record : journal_record_registry()) {
    EXPECT_TRUE(documented.count(std::string(record.kind)))
        << "record kind \"" << record.kind << "\" (" << record.name
        << ") is missing from docs/journal_format.md — add its section";
  }
}

TEST(JournalFormatDoc, EveryDocumentedKindIsImplemented) {
  for (const std::string& kind : documented_kinds()) {
    EXPECT_NE(find_journal_record(kind), nullptr)
        << "docs/journal_format.md specifies record kind \"" << kind
        << "\" but the registry in savanna/journal.cpp has no such record "
           "— delete the section or implement the record";
  }
}

TEST(JournalFormatDoc, SpecStatesTheCurrentSchemaVersion) {
  const std::string text =
      read_file(std::string(FF_REPO_ROOT) + "/docs/journal_format.md");
  const std::string needle =
      "`\"schema\":" + std::to_string(kJournalSchemaVersion) + "`";
  EXPECT_NE(text.find(needle), std::string::npos)
      << "docs/journal_format.md must state the current schema version as "
      << needle << " — bump the doc alongside kJournalSchemaVersion";
}

}  // namespace
}  // namespace ff::savanna
