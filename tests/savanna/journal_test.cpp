#include "savanna/journal.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "savanna/campaign_runner.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::savanna {
namespace {

std::vector<sim::TaskSpec> uniform_tasks(size_t count, double duration) {
  std::vector<sim::TaskSpec> tasks;
  for (size_t i = 0; i < count; ++i) {
    sim::TaskSpec task;
    task.id = "t" + std::to_string(i);
    task.duration_s = duration;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

Json alloc_record(double start, double end,
                  const std::vector<std::string>& completed) {
  Json record = Json::object();
  record["start"] = start;
  record["end"] = end;
  record["makespan"] = end - start;
  record["intervals"] = Json::array();
  Json done = Json::array();
  for (const auto& id : completed) done.push_back(id);
  record["completed"] = std::move(done);
  return record;
}

TEST(CampaignJournal, RoundTripsHeaderAndAllocations) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  auto journal = CampaignJournal::create(path, "camp", {"a", "b"});
  EXPECT_EQ(journal.append_allocation(alloc_record(0, 10, {"a"})), 0u);
  EXPECT_EQ(journal.append_allocation(alloc_record(10, 20, {"b"})), 1u);
  journal.close();

  const auto replay = CampaignJournal::replay(path);
  ASSERT_TRUE(replay.has_header());
  EXPECT_EQ(replay.header["campaign"].as_string(), "camp");
  EXPECT_EQ(replay.header["schema"].as_int(), kJournalSchemaVersion);
  ASSERT_EQ(replay.allocations.size(), 2u);
  EXPECT_EQ(replay.allocations[0]["index"].as_int(), 0);
  EXPECT_EQ(replay.allocations[1]["completed"][0].as_string(), "b");
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.committed_bytes, read_file(path).size());
}

TEST(CampaignJournal, MissingFileReplaysEmpty) {
  TempDir dir("journal");
  const auto replay = CampaignJournal::replay(dir.file("absent.jsonl"));
  EXPECT_FALSE(replay.has_header());
  EXPECT_TRUE(replay.allocations.empty());
  EXPECT_FALSE(replay.torn_tail);
}

TEST(CampaignJournal, EmptyFileReplaysEmpty) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  write_file(path, "");
  const auto replay = CampaignJournal::replay(path);
  EXPECT_FALSE(replay.has_header());
  EXPECT_TRUE(replay.allocations.empty());
}

TEST(CampaignJournal, TornFinalLineIsDroppedAndTruncatedOnOpen) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  auto journal = CampaignJournal::create(path, "camp", {"a"});
  journal.append_allocation(alloc_record(0, 10, {"a"}));
  journal.close();
  const std::string committed = read_file(path);

  // A crash mid-append leaves a partial, unterminated record.
  {
    std::ofstream torn(path, std::ios::app | std::ios::binary);
    torn << R"({"kind":"alloc","index":1,"comp)";
  }
  auto replay = CampaignJournal::replay(path);
  ASSERT_TRUE(replay.has_header());
  EXPECT_EQ(replay.allocations.size(), 1u);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.committed_bytes, committed.size());

  // Re-opening truncates the torn bytes, and appending resumes cleanly.
  auto reopened = CampaignJournal::open_for_append(path, replay);
  EXPECT_EQ(reopened.next_allocation_index(), 1u);
  reopened.append_allocation(alloc_record(10, 20, {}));
  reopened.close();
  const auto final_replay = CampaignJournal::replay(path);
  EXPECT_EQ(final_replay.allocations.size(), 2u);
  EXPECT_FALSE(final_replay.torn_tail);
}

TEST(CampaignJournal, UnknownSchemaVersionIsRejected) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  write_file(path, R"({"kind":"header","schema":99,"campaign":"x","runs":[]})"
                   "\n");
  EXPECT_THROW(CampaignJournal::replay(path), ValidationError);
}

TEST(CampaignJournal, MissingHeaderIsRejected) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  write_file(path, R"({"kind":"alloc","index":0})"
                   "\n");
  EXPECT_THROW(CampaignJournal::replay(path), ValidationError);
}

TEST(CampaignJournal, CorruptInteriorLineIsRejected) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  auto journal = CampaignJournal::create(path, "camp", {"a"});
  journal.append_allocation(alloc_record(0, 10, {"a"}));
  journal.close();
  // Corruption *followed by* a committed record is not a torn tail.
  std::string text = read_file(path);
  text += "not json\n";
  text += alloc_record(10, 20, {}).dump() + "\n";
  write_file(path, text);
  EXPECT_THROW(CampaignJournal::replay(path), ValidationError);
}

TEST(CampaignJournal, HeaderCarriesRunCountAndDigest) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  CampaignJournal::create(path, "camp", {"a", "b"}).close();
  const auto replay = CampaignJournal::replay(path);
  ASSERT_TRUE(replay.has_header());
  EXPECT_EQ(replay.header["run_count"].as_int(), 2);
  RunSetDigest expected;
  expected.add("a");
  expected.add("b");
  EXPECT_EQ(replay.header["runs_digest"].as_string(), expected.hex());
  // Small run sets stay inlined for grep-ability.
  ASSERT_TRUE(replay.header.contains("runs"));
  EXPECT_EQ(replay.header["runs"].size(), 2u);
}

TEST(CampaignJournal, SummaryCreateOmitsInlineRunList) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  RunSetDigest digest;
  digest.add("a");
  CampaignJournal::RunSetSummary summary{digest.count(), digest.hex()};
  CampaignJournal::create(path, "camp", summary).close();
  const auto replay = CampaignJournal::replay(path);
  ASSERT_TRUE(replay.has_header());
  EXPECT_FALSE(replay.header.contains("runs"));
  EXPECT_EQ(replay.header["run_count"].as_int(), 1);
  EXPECT_EQ(replay.header["runs_digest"].as_string(), digest.hex());
}

TEST(CampaignJournal, RunSetDigestDistinguishesFraming) {
  RunSetDigest ab_c;
  ab_c.add("ab");
  ab_c.add("c");
  RunSetDigest a_bc;
  a_bc.add("a");
  a_bc.add("bc");
  EXPECT_NE(ab_c.hex(), a_bc.hex());
  EXPECT_EQ(ab_c.count(), a_bc.count());
}

TEST(CampaignJournal, CheckpointRestoresStateAndTailOnly) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  auto journal = CampaignJournal::create(path, "camp", {"a", "b", "c"});
  journal.append_allocation(alloc_record(0, 10, {"a"}));
  journal.append_allocation(alloc_record(10, 20, {"b"}));
  Json snapshot = Json::object();
  snapshot["a"] = Json::parse(R"({"state":"done","attempts":1,"events":[]})");
  snapshot["b"] = Json::parse(R"({"state":"done","attempts":1,"events":[]})");
  journal.append_checkpoint(snapshot, 20.0);
  journal.append_allocation(alloc_record(20, 30, {"c"}));
  journal.close();

  const auto replay = CampaignJournal::replay(path);
  ASSERT_TRUE(replay.has_checkpoint());
  EXPECT_EQ(replay.checkpoint["next_index"].as_int(), 2);
  EXPECT_DOUBLE_EQ(replay.checkpoint["clock"].as_double(), 20.0);
  EXPECT_EQ(replay.checkpoint["tracker"].dump(), snapshot.dump());
  // Only the tail after the checkpoint is replayed as alloc records.
  ASSERT_EQ(replay.allocations.size(), 1u);
  EXPECT_EQ(replay.allocations[0]["index"].as_int(), 2);
  EXPECT_EQ(replay.next_index, 3u);
}

TEST(CampaignJournal, CompactFoldsHistoryIntoCheckpointAtomically) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  auto journal = CampaignJournal::create(path, "camp", {"a", "b", "c"});
  journal.append_allocation(alloc_record(0, 10, {"a"}));
  journal.append_allocation(alloc_record(10, 20, {"b"}));
  Json snapshot = Json::object();
  snapshot["a"] = Json::parse(R"({"state":"done","attempts":1,"events":[]})");
  journal.append_checkpoint(snapshot, 20.0);
  const std::string before = read_file(path);
  journal.compact();
  const std::string after = read_file(path);
  EXPECT_LT(after.size(), before.size());

  const auto replay = CampaignJournal::replay(path);
  ASSERT_TRUE(replay.has_checkpoint());
  EXPECT_EQ(replay.compactions, 1u);
  EXPECT_TRUE(replay.allocations.empty());
  EXPECT_EQ(replay.next_index, 2u);

  // Idempotent: compacting a compacted journal changes nothing, and the
  // handle still appends correctly afterwards.
  journal.compact();
  EXPECT_EQ(read_file(path), after);
  journal.append_allocation(alloc_record(20, 30, {"c"}));
  journal.close();
  const auto final_replay = CampaignJournal::replay(path);
  ASSERT_EQ(final_replay.allocations.size(), 1u);
  EXPECT_EQ(final_replay.allocations[0]["index"].as_int(), 2);
}

TEST(CampaignJournal, CompactWithoutCheckpointIsANoOp) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  auto journal = CampaignJournal::create(path, "camp", {"a"});
  journal.append_allocation(alloc_record(0, 10, {"a"}));
  const std::string before = read_file(path);
  journal.compact();  // nothing summarizes the alloc history yet
  EXPECT_EQ(read_file(path), before);
}

TEST(CampaignJournal, GroupCommitBatchesRecordsUntilFlush) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  auto journal = CampaignJournal::create(path, "camp", {"a", "b", "c"});
  journal.set_group_commit(3);
  EXPECT_EQ(journal.append_allocation(alloc_record(0, 10, {"a"})), 0u);
  EXPECT_EQ(journal.append_allocation(alloc_record(10, 20, {"b"})), 1u);
  // Two records buffered, none durable yet.
  EXPECT_TRUE(CampaignJournal::replay(path).allocations.empty());
  // The third append completes the batch: one write+fsync commits all.
  EXPECT_EQ(journal.append_allocation(alloc_record(20, 30, {"c"})), 2u);
  EXPECT_EQ(CampaignJournal::replay(path).allocations.size(), 3u);
  // A partial batch flushes on close().
  journal.set_group_commit(3);
  journal.append_allocation(alloc_record(30, 40, {}));
  journal.close();
  EXPECT_EQ(CampaignJournal::replay(path).allocations.size(), 4u);
}

TEST(ResumeCampaign, JournalReferencingUnknownRunsIsRejected) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  auto journal = CampaignJournal::create(path, "camp", {"t0", "stranger"});
  journal.close();

  sim::Simulation sim;
  RunTracker tracker;
  CampaignRunOptions options;
  EXPECT_THROW(resume_campaign(sim, uniform_tasks(1, 10), options, tracker, path),
               ValidationError);
}

TEST(ResumeCampaign, MissingJournalStartsFreshAndCompletes) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  sim::Simulation sim;
  RunTracker tracker;
  CampaignRunOptions options;
  options.execution.nodes = 2;
  const auto report = resume_campaign(sim, uniform_tasks(4, 10), options,
                                      tracker, path);
  EXPECT_EQ(report.allocations_replayed, 0u);
  EXPECT_EQ(report.incomplete, 4u);
  EXPECT_EQ(report.result.completed_runs, 4u);
  EXPECT_EQ(report.result.remaining_runs, 0u);
  // The journal is durable: a second resume has nothing left to do.
  sim::Simulation sim2;
  RunTracker tracker2;
  const auto again = resume_campaign(sim2, uniform_tasks(4, 10), options,
                                     tracker2, path);
  EXPECT_EQ(again.allocations_replayed, 1u);
  EXPECT_EQ(again.incomplete, 0u);
  EXPECT_EQ(again.result.allocations_used, 0u);
  EXPECT_EQ(tracker2.to_json().dump(), tracker.to_json().dump());
}

TEST(ResumeCampaign, InterruptedCampaignMatchesUninterruptedProvenance) {
  CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 25.0;
  const auto tasks = uniform_tasks(10, 10);

  RunTracker uninterrupted;
  {
    TempDir dir("journal");
    sim::Simulation sim;
    resume_campaign(sim, tasks, options, uninterrupted, dir.file("j.jsonl"));
  }

  TempDir dir("journal");
  const std::string path = dir.file("j.jsonl");
  {
    // First leg stops after one allocation — a controlled "crash".
    sim::Simulation sim;
    RunTracker tracker;
    CampaignRunOptions first_leg = options;
    first_leg.max_allocations = 1;
    const auto report = resume_campaign(sim, tasks, first_leg, tracker, path);
    EXPECT_GT(report.result.remaining_runs, 0u);
  }
  sim::Simulation sim;
  RunTracker resumed;
  const auto report = resume_campaign(sim, tasks, options, resumed, path);
  EXPECT_EQ(report.allocations_replayed, 1u);
  EXPECT_EQ(report.result.remaining_runs, 0u);
  EXPECT_EQ(resumed.to_json().dump(), uninterrupted.to_json().dump());
}

TEST(RetryPolicy, BudgetExhaustsAlwaysFailingRun) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 1;
  options.retry.max_attempts = 3;
  options.execution.fails = [](const sim::TaskSpec& task, int) {
    return task.id == "t0";
  };
  RunTracker tracker;
  const auto result =
      run_with_resubmission(sim, uniform_tasks(2, 10), options, &tracker);
  EXPECT_EQ(result.completed_runs, 1u);
  ASSERT_EQ(result.exhausted.size(), 1u);
  EXPECT_EQ(result.exhausted[0], "t0");
  EXPECT_EQ(result.remaining_runs, 0u);  // exhausted is terminal, not pending
  EXPECT_EQ(tracker.status("t0").state, "exhausted");
  EXPECT_EQ(tracker.attempts("t0"), 3u);
  EXPECT_EQ(tracker.counts().exhausted, 1u);
  EXPECT_TRUE(tracker.needing_rerun().empty());
}

TEST(CampaignJournal, ExplicitCloseThrowsWhenFlushCannotCommit) {
  TempDir dir("journal");
  const std::string path = dir.file("journal.jsonl");
  CampaignJournal journal = CampaignJournal::create(path, "camp", {"t0", "t1"});
  journal.set_group_commit(4);
  journal.append_allocation(alloc_record(0, 10, {"t0"}));  // buffered only
  CampaignJournal::set_test_write_hook(
      [](CampaignJournal::WriteKind kind, CampaignJournal::WritePhase phase,
         size_t) {
        if (kind == CampaignJournal::WriteKind::Append &&
            phase == CampaignJournal::WritePhase::BeforeWrite) {
          throw IoError("injected: disk full");
        }
      });
  EXPECT_THROW(journal.close(), IoError);
  CampaignJournal::set_test_write_hook(nullptr);
  // Even a failed close releases the handle, and the failure is recorded.
  EXPECT_FALSE(journal.is_open());
  EXPECT_NE(journal.last_error().find("injected: disk full"),
            std::string::npos)
      << journal.last_error();
  // Closing again is a no-op, not a second throw.
  journal.close();
}

TEST(CampaignJournal, DestructorSwallowsFlushFailureDuringUnwind) {
  // Regression: ~CampaignJournal() used to delegate to the throwing
  // close(), so a flush failure while an exception was already unwinding
  // the stack was std::terminate. The destructor path now swallows the
  // failure; surviving the two scopes below *is* the assertion.
  TempDir dir("journal");
  CampaignJournal::WriteHook poison =
      [](CampaignJournal::WriteKind kind, CampaignJournal::WritePhase phase,
         size_t) {
        if (kind == CampaignJournal::WriteKind::Append &&
            phase == CampaignJournal::WritePhase::BeforeWrite) {
          throw IoError("injected: device gone");
        }
      };
  {
    // Plain scope exit with a poisoned, non-empty buffer.
    CampaignJournal journal =
        CampaignJournal::create(dir.file("a.jsonl"), "camp", {"t0"});
    journal.set_group_commit(4);
    journal.append_allocation(alloc_record(0, 10, {"t0"}));
    CampaignJournal::set_test_write_hook(poison);
  }
  CampaignJournal::set_test_write_hook(nullptr);
  // Destruction *during unwind* — the case that used to terminate.
  EXPECT_THROW(
      {
        CampaignJournal journal =
            CampaignJournal::create(dir.file("b.jsonl"), "camp", {"t0"});
        journal.set_group_commit(4);
        journal.append_allocation(alloc_record(0, 10, {"t0"}));
        CampaignJournal::set_test_write_hook(poison);
        throw StateError("campaign failed elsewhere");
      },
      StateError);
  CampaignJournal::set_test_write_hook(nullptr);
}

TEST(RetryPolicy, BackoffDelaysRetryInVirtualTime) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 1;
  options.retry.max_attempts = 3;  // a budget disables the zero-progress stop
  options.retry.base_backoff_s = 100;
  int failures_left = 1;
  options.execution.fails = [&](const sim::TaskSpec&, int) {
    return failures_left-- > 0;
  };
  const auto result = run_with_resubmission(sim, uniform_tasks(1, 10), options);
  EXPECT_EQ(result.completed_runs, 1u);
  // Fail at t=10, held back until 10 + 100, retry runs 110..120.
  EXPECT_DOUBLE_EQ(sim.now(), 120.0);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.base_backoff_s = 10;
  policy.growth = 2.0;
  policy.max_backoff_s = 35;
  EXPECT_DOUBLE_EQ(policy.backoff_after(0), 0.0);
  EXPECT_DOUBLE_EQ(policy.backoff_after(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.backoff_after(2), 20.0);
  EXPECT_DOUBLE_EQ(policy.backoff_after(3), 35.0);  // clamped from 40
  EXPECT_DOUBLE_EQ(policy.backoff_after(10), 35.0);
}

TEST(CampaignRunner, ZeroProgressStopsEvenWithAllocationBudget) {
  sim::Simulation sim;
  CampaignRunOptions options;
  options.execution.nodes = 1;
  options.execution.walltime_s = 5.0;  // task needs 10
  options.max_allocations = 50;
  const auto result = run_with_resubmission(sim, uniform_tasks(1, 10), options);
  // Before the zero-progress guard learned about bounded campaigns, this
  // burned all 50 allocations re-running an impossible task.
  EXPECT_EQ(result.allocations_used, 1u);
  EXPECT_EQ(result.remaining_runs, 1u);
}

TEST(ApplyReport, TerminalRunWithoutIntervalFallsBackToAllocationEnd) {
  // Regression: a failed/killed run with no recorded interval used to crash
  // the tracker bookkeeping with std::out_of_range (end_time.at).
  ExecutionReport report;
  report.makespan_s = 40;
  report.failed = {"ghost"};
  report.killed = {"wraith"};
  RunTracker tracker;
  tracker.add_run("ghost");
  tracker.add_run("wraith");
  apply_report_to_tracker(tracker, report, /*allocation_start=*/100);
  EXPECT_EQ(tracker.status("ghost").state, "failed");
  EXPECT_DOUBLE_EQ(tracker.status("ghost").last_time, 140.0);
  EXPECT_EQ(tracker.status("wraith").state, "killed");
  EXPECT_DOUBLE_EQ(tracker.status("wraith").last_time, 140.0);
}

}  // namespace
}  // namespace ff::savanna
