#include "savanna/tracker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace ff::savanna {
namespace {

TEST(RunTracker, LifecycleHappyPath) {
  RunTracker tracker;
  tracker.add_run("r1");
  EXPECT_TRUE(tracker.has_run("r1"));
  tracker.mark_started("r1", 0.0, 3);
  tracker.mark_done("r1", 10.0);
  EXPECT_EQ(tracker.attempts("r1"), 1u);
  EXPECT_TRUE(tracker.needing_rerun().empty());
  const auto counts = tracker.counts();
  EXPECT_EQ(counts.total, 1u);
  EXPECT_EQ(counts.done, 1u);
}

TEST(RunTracker, DuplicateAddThrows) {
  RunTracker tracker;
  tracker.add_run("r1");
  EXPECT_THROW(tracker.add_run("r1"), ValidationError);
}

TEST(RunTracker, UnknownRunThrows) {
  RunTracker tracker;
  EXPECT_THROW(tracker.mark_started("ghost", 0, 0), NotFoundError);
  EXPECT_THROW(tracker.attempts("ghost"), NotFoundError);
}

TEST(RunTracker, IllegalTransitionsThrow) {
  RunTracker tracker;
  tracker.add_run("r1");
  EXPECT_THROW(tracker.mark_done("r1", 1.0), StateError);  // not running
  tracker.mark_started("r1", 0.0, 0);
  EXPECT_THROW(tracker.mark_started("r1", 1.0, 0), StateError);  // double start
  tracker.mark_failed("r1", 2.0, "oom");
  EXPECT_THROW(tracker.mark_killed("r1", 3.0), StateError);
}

TEST(RunTracker, RetryAfterFailureCountsAttempts) {
  RunTracker tracker;
  tracker.add_run("r1");
  tracker.mark_started("r1", 0.0, 0);
  tracker.mark_failed("r1", 5.0, "node crash");
  EXPECT_EQ(tracker.needing_rerun(), std::vector<std::string>{"r1"});
  tracker.mark_started("r1", 10.0, 1);  // re-submission
  tracker.mark_done("r1", 20.0);
  EXPECT_EQ(tracker.attempts("r1"), 2u);
  EXPECT_TRUE(tracker.needing_rerun().empty());
}

TEST(RunTracker, NeedingRerunCoversAllIncompleteStates) {
  RunTracker tracker;
  for (const std::string id : {"pending", "failed", "killed", "done", "running"}) {
    tracker.add_run(id);
  }
  tracker.mark_started("failed", 0, 0);
  tracker.mark_failed("failed", 1, "x");
  tracker.mark_started("killed", 0, 1);
  tracker.mark_killed("killed", 1);
  tracker.mark_started("done", 0, 2);
  tracker.mark_done("done", 1);
  tracker.mark_started("running", 0, 3);
  const auto rerun = tracker.needing_rerun();
  EXPECT_EQ(rerun.size(), 4u);  // everything but "done"
  const auto counts = tracker.counts();
  EXPECT_EQ(counts.never_started, 1u);
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(counts.killed, 1u);
  EXPECT_EQ(counts.done, 1u);
}

TEST(RunTracker, JsonRoundTripPreservesProvenance) {
  RunTracker tracker;
  tracker.add_run("r1");
  tracker.mark_started("r1", 1.5, 7);
  tracker.mark_failed("r1", 9.0, "segfault");
  tracker.mark_started("r1", 12.0, 2);
  tracker.mark_done("r1", 30.0);

  const Json json = tracker.to_json();
  EXPECT_EQ(json["r1"]["state"].as_string(), "done");
  EXPECT_EQ(json["r1"]["attempts"].as_int(), 2);
  EXPECT_EQ(json["r1"]["events"].size(), 4u);
  EXPECT_EQ(json["r1"]["events"][size_t{1}]["detail"].as_string(), "segfault");

  const RunTracker reparsed = RunTracker::from_json(json);
  EXPECT_EQ(reparsed.attempts("r1"), 2u);
  EXPECT_TRUE(reparsed.needing_rerun().empty());
  EXPECT_EQ(reparsed.to_json(), json);
}

TEST(RunTracker, ShardCountIsInvisibleInExports) {
  auto drive = [](RunTracker& tracker) {
    for (int i = 0; i < 200; ++i) {
      const std::string id = "run-" + std::to_string(i);
      tracker.add_run(id);
      if (i % 3 == 0) {
        tracker.mark_started(id, i, i % 7);
        tracker.mark_done(id, i + 1);
      } else if (i % 3 == 1) {
        tracker.mark_started(id, i, i % 7);
        tracker.mark_failed(id, i + 1, "flake");
      }
    }
  };
  RunTracker sharded;  // kDefaultShardCount
  RunTracker single(1);
  drive(sharded);
  drive(single);
  EXPECT_EQ(sharded.to_json().dump(), single.to_json().dump());
  EXPECT_EQ(sharded.needing_rerun(), single.needing_rerun());
  EXPECT_EQ(sharded.live_runs(), single.live_runs());
}

TEST(RunTracker, LiveRunsTracksTerminalTransitions) {
  RunTracker tracker;
  tracker.add_run("a");
  tracker.add_run("b");
  EXPECT_EQ(tracker.live_runs(), 2u);
  tracker.mark_started("a", 0, 0);
  EXPECT_EQ(tracker.live_runs(), 2u);  // running is still live
  tracker.mark_done("a", 1);
  EXPECT_EQ(tracker.live_runs(), 1u);
  tracker.mark_started("b", 0, 1);
  tracker.mark_failed("b", 1, "oom");
  EXPECT_EQ(tracker.live_runs(), 1u);  // failed runs await a retry decision
  tracker.mark_exhausted("b", 2, "retry budget spent");
  EXPECT_EQ(tracker.live_runs(), 0u);
  EXPECT_TRUE(tracker.needing_rerun().empty());
  EXPECT_EQ(tracker.counts().exhausted, 1u);
}

TEST(RunTracker, StatusReportsLatestPosition) {
  RunTracker tracker;
  tracker.add_run("r1");
  EXPECT_EQ(tracker.status("r1").state, "pending");
  tracker.mark_started("r1", 3.5, 2);
  tracker.mark_failed("r1", 8.0, "segfault");
  const auto status = tracker.status("r1");
  EXPECT_EQ(status.state, "failed");
  EXPECT_EQ(status.attempts, 1u);
  EXPECT_DOUBLE_EQ(status.last_time, 8.0);
  EXPECT_THROW(tracker.status("ghost"), NotFoundError);
}

TEST(RunTracker, ToJsonStartedOmitsPendingRuns) {
  RunTracker tracker;
  tracker.add_run("pending-run");
  tracker.add_run("started-run");
  tracker.mark_started("started-run", 1.0, 0);
  const Json sparse = tracker.to_json_started();
  EXPECT_EQ(sparse.size(), 1u);
  EXPECT_TRUE(sparse.contains("started-run"));
  EXPECT_FALSE(sparse.contains("pending-run"));
  // The full export still carries everything.
  EXPECT_EQ(tracker.to_json().size(), 2u);
}

TEST(RunTracker, RestoreRebuildsCountersFromSnapshot) {
  RunTracker original;
  for (const std::string id : {"done", "failed", "running", "exhausted"}) {
    original.add_run(id);
    original.mark_started(id, 0, 0);
  }
  original.mark_done("done", 1);
  original.mark_failed("failed", 1, "x");
  original.mark_killed("exhausted", 1);
  original.mark_exhausted("exhausted", 2, "budget");

  RunTracker restored;
  restored.restore(original.to_json_started());
  EXPECT_EQ(restored.live_runs(), original.live_runs());
  EXPECT_EQ(restored.needing_rerun(), original.needing_rerun());
  const auto counts = restored.counts();
  EXPECT_EQ(counts.total, 4u);
  EXPECT_EQ(counts.done, 1u);
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(counts.exhausted, 1u);
  EXPECT_EQ(restored.to_json().dump(), original.to_json().dump());
  EXPECT_EQ(restored.attempts("failed"), 1u);
  // A snapshot may not collide with runs already present.
  EXPECT_THROW(restored.restore(original.to_json_started()), ValidationError);
}

TEST(RunTracker, ManyRunsKeepAggregatesConsistent) {
  RunTracker tracker;
  const size_t n = 10000;
  for (size_t i = 0; i < n; ++i) {
    tracker.add_run("r" + std::to_string(i));
  }
  for (size_t i = 0; i < n; i += 2) {
    const std::string id = "r" + std::to_string(i);
    tracker.mark_started(id, 0, 0);
    tracker.mark_done(id, 1);
  }
  const auto counts = tracker.counts();
  EXPECT_EQ(counts.total, n);
  EXPECT_EQ(counts.done, n / 2);
  EXPECT_EQ(counts.never_started, n / 2);
  EXPECT_EQ(tracker.live_runs(), n / 2);
  EXPECT_EQ(tracker.needing_rerun().size(), n / 2);
  // needing_rerun is sorted by id regardless of shard layout.
  const auto rerun = tracker.needing_rerun();
  EXPECT_TRUE(std::is_sorted(rerun.begin(), rerun.end()));
}

}  // namespace
}  // namespace ff::savanna
