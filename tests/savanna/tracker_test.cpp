#include "savanna/tracker.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::savanna {
namespace {

TEST(RunTracker, LifecycleHappyPath) {
  RunTracker tracker;
  tracker.add_run("r1");
  EXPECT_TRUE(tracker.has_run("r1"));
  tracker.mark_started("r1", 0.0, 3);
  tracker.mark_done("r1", 10.0);
  EXPECT_EQ(tracker.attempts("r1"), 1u);
  EXPECT_TRUE(tracker.needing_rerun().empty());
  const auto counts = tracker.counts();
  EXPECT_EQ(counts.total, 1u);
  EXPECT_EQ(counts.done, 1u);
}

TEST(RunTracker, DuplicateAddThrows) {
  RunTracker tracker;
  tracker.add_run("r1");
  EXPECT_THROW(tracker.add_run("r1"), ValidationError);
}

TEST(RunTracker, UnknownRunThrows) {
  RunTracker tracker;
  EXPECT_THROW(tracker.mark_started("ghost", 0, 0), NotFoundError);
  EXPECT_THROW(tracker.attempts("ghost"), NotFoundError);
}

TEST(RunTracker, IllegalTransitionsThrow) {
  RunTracker tracker;
  tracker.add_run("r1");
  EXPECT_THROW(tracker.mark_done("r1", 1.0), StateError);  // not running
  tracker.mark_started("r1", 0.0, 0);
  EXPECT_THROW(tracker.mark_started("r1", 1.0, 0), StateError);  // double start
  tracker.mark_failed("r1", 2.0, "oom");
  EXPECT_THROW(tracker.mark_killed("r1", 3.0), StateError);
}

TEST(RunTracker, RetryAfterFailureCountsAttempts) {
  RunTracker tracker;
  tracker.add_run("r1");
  tracker.mark_started("r1", 0.0, 0);
  tracker.mark_failed("r1", 5.0, "node crash");
  EXPECT_EQ(tracker.needing_rerun(), std::vector<std::string>{"r1"});
  tracker.mark_started("r1", 10.0, 1);  // re-submission
  tracker.mark_done("r1", 20.0);
  EXPECT_EQ(tracker.attempts("r1"), 2u);
  EXPECT_TRUE(tracker.needing_rerun().empty());
}

TEST(RunTracker, NeedingRerunCoversAllIncompleteStates) {
  RunTracker tracker;
  for (const std::string id : {"pending", "failed", "killed", "done", "running"}) {
    tracker.add_run(id);
  }
  tracker.mark_started("failed", 0, 0);
  tracker.mark_failed("failed", 1, "x");
  tracker.mark_started("killed", 0, 1);
  tracker.mark_killed("killed", 1);
  tracker.mark_started("done", 0, 2);
  tracker.mark_done("done", 1);
  tracker.mark_started("running", 0, 3);
  const auto rerun = tracker.needing_rerun();
  EXPECT_EQ(rerun.size(), 4u);  // everything but "done"
  const auto counts = tracker.counts();
  EXPECT_EQ(counts.never_started, 1u);
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(counts.killed, 1u);
  EXPECT_EQ(counts.done, 1u);
}

TEST(RunTracker, JsonRoundTripPreservesProvenance) {
  RunTracker tracker;
  tracker.add_run("r1");
  tracker.mark_started("r1", 1.5, 7);
  tracker.mark_failed("r1", 9.0, "segfault");
  tracker.mark_started("r1", 12.0, 2);
  tracker.mark_done("r1", 30.0);

  const Json json = tracker.to_json();
  EXPECT_EQ(json["r1"]["state"].as_string(), "done");
  EXPECT_EQ(json["r1"]["attempts"].as_int(), 2);
  EXPECT_EQ(json["r1"]["events"].size(), 4u);
  EXPECT_EQ(json["r1"]["events"][size_t{1}]["detail"].as_string(), "segfault");

  const RunTracker reparsed = RunTracker::from_json(json);
  EXPECT_EQ(reparsed.attempts("r1"), 2u);
  EXPECT_TRUE(reparsed.needing_rerun().empty());
  EXPECT_EQ(reparsed.to_json(), json);
}

}  // namespace
}  // namespace ff::savanna
