#include "savanna/executor.hpp"

#include <gtest/gtest.h>

#include "savanna/timeline.hpp"
#include "util/error.hpp"

namespace ff::savanna {
namespace {

std::vector<sim::TaskSpec> tasks_with_durations(const std::vector<double>& durations) {
  std::vector<sim::TaskSpec> tasks;
  for (size_t i = 0; i < durations.size(); ++i) {
    sim::TaskSpec task;
    task.id = "t" + std::to_string(i);
    task.duration_s = durations[i];
    task.feature_index = static_cast<int>(i);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(SetSynchronized, BarriersWaitForSlowestMember) {
  sim::Simulation sim;
  ExecutionOptions options;
  options.nodes = 2;
  // Sets: {10, 100}, {10, 10} — first set barrier at 100.
  const auto report = run_set_synchronized(
      sim, tasks_with_durations({10, 100, 10, 10}), options);
  EXPECT_EQ(report.completed.size(), 4u);
  EXPECT_DOUBLE_EQ(report.makespan_s, 110.0);
  // Node 0 idles from 10 to 100 — that is the paper's straggler problem.
  EXPECT_DOUBLE_EQ(report.busy_node_seconds, 130.0);
  EXPECT_NEAR(report.utilization(), 130.0 / 220.0, 1e-12);
}

TEST(Pilot, NoBarriersPacksWork) {
  sim::Simulation sim;
  ExecutionOptions options;
  options.nodes = 2;
  // Pilot: node0 runs 10 then 10 then 10 (t=30); node1 runs 100.
  const auto report = run_pilot(sim, tasks_with_durations({10, 100, 10, 10}), options);
  EXPECT_EQ(report.completed.size(), 4u);
  EXPECT_DOUBLE_EQ(report.makespan_s, 100.0);
  EXPECT_DOUBLE_EQ(report.busy_node_seconds, 130.0);
  EXPECT_GT(report.utilization(), 0.6);
}

TEST(PilotBeatsSetSynchronizedOnSkewedWork, Property) {
  // Property: for any workload, the pilot's makespan never exceeds the
  // set-synchronized makespan (both unbounded walltime, same order).
  const sim::DurationModel model;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto tasks = sim::make_ensemble(60, model, seed);
    ExecutionOptions options;
    options.nodes = 8;
    sim::Simulation sim_a;
    sim::Simulation sim_b;
    const auto set_report = run_set_synchronized(sim_a, tasks, options);
    const auto pilot_report = run_pilot(sim_b, tasks, options);
    EXPECT_LE(pilot_report.makespan_s, set_report.makespan_s + 1e-9) << seed;
    EXPECT_EQ(pilot_report.completed.size(), 60u);
    EXPECT_EQ(set_report.completed.size(), 60u);
  }
}

TEST(SetSynchronized, WalltimeKillsRunningAndSkipsRest) {
  sim::Simulation sim;
  ExecutionOptions options;
  options.nodes = 1;
  options.walltime_s = 25.0;
  const auto report =
      run_set_synchronized(sim, tasks_with_durations({10, 10, 10, 10}), options);
  EXPECT_EQ(report.completed.size(), 2u);  // t0, t1 finish by 20
  EXPECT_EQ(report.killed.size(), 1u);     // t2 running at 25
  EXPECT_EQ(report.not_started.size(), 1u);
  EXPECT_LE(report.makespan_s, 25.0);
}

TEST(Pilot, WalltimeKillsRunningAndSkipsRest) {
  sim::Simulation sim;
  ExecutionOptions options;
  options.nodes = 2;
  options.walltime_s = 15.0;
  const auto report =
      run_pilot(sim, tasks_with_durations({10, 20, 10, 10}), options);
  // node0: t0 (0-10) then t2 (10-20 -> killed at 15). node1: t1 killed.
  EXPECT_EQ(report.completed.size(), 1u);
  EXPECT_EQ(report.killed.size(), 2u);
  EXPECT_EQ(report.not_started.size(), 1u);
  EXPECT_LE(report.makespan_s, 15.0);
}

TEST(Executors, StartupCostDelaysCompletions) {
  ExecutionOptions options;
  options.nodes = 1;
  options.startup_cost_s = 5.0;
  sim::Simulation sim;
  const auto report = run_pilot(sim, tasks_with_durations({10, 10}), options);
  EXPECT_DOUBLE_EQ(report.makespan_s, 30.0);
}

TEST(Executors, FailureInjectionMarksFailed) {
  ExecutionOptions options;
  options.nodes = 2;
  options.fails = [](const sim::TaskSpec& task, int) { return task.id == "t1"; };
  sim::Simulation sim;
  const auto report = run_pilot(sim, tasks_with_durations({5, 5, 5}), options);
  EXPECT_EQ(report.completed.size(), 2u);
  ASSERT_EQ(report.failed.size(), 1u);
  EXPECT_EQ(report.failed[0], "t1");
  // Failed run still consumed its node time.
  EXPECT_DOUBLE_EQ(report.busy_node_seconds, 15.0);
}

TEST(Executors, EmptyTaskListIsTrivial) {
  ExecutionOptions options;
  options.nodes = 4;
  sim::Simulation sim_a;
  sim::Simulation sim_b;
  EXPECT_EQ(run_pilot(sim_a, {}, options).makespan_s, 0.0);
  EXPECT_EQ(run_set_synchronized(sim_b, {}, options).makespan_s, 0.0);
}

TEST(Executors, OptionValidation) {
  sim::Simulation sim;
  ExecutionOptions bad;
  bad.nodes = 0;
  EXPECT_THROW(run_pilot(sim, {}, bad), Error);
  bad.nodes = 1;
  bad.walltime_s = 0;
  EXPECT_THROW(run_set_synchronized(sim, {}, bad), Error);
  bad.walltime_s = 10;
  bad.startup_cost_s = -1;
  EXPECT_THROW(run_pilot(sim, {}, bad), Error);
}

TEST(Executors, SetSizeSmallerThanNodes) {
  sim::Simulation sim;
  ExecutionOptions options;
  options.nodes = 4;
  options.set_size = 2;
  const auto report =
      run_set_synchronized(sim, tasks_with_durations({10, 10, 10, 10}), options);
  // Two sets of two, serial: makespan 20 even though 4 nodes exist.
  EXPECT_DOUBLE_EQ(report.makespan_s, 20.0);
}

TEST(Executors, TimelineIntervalsAreDisjointPerNode) {
  const auto tasks = sim::make_ensemble(40, sim::DurationModel{}, 11);
  ExecutionOptions options;
  options.nodes = 5;
  sim::Simulation sim;
  const auto report = run_pilot(sim, tasks, options);
  for (const auto& node_intervals : report.node_timeline) {
    for (size_t i = 1; i < node_intervals.size(); ++i) {
      EXPECT_GE(node_intervals[i].start, node_intervals[i - 1].end - 1e-9);
    }
  }
}

TEST(Executors, RenderTimelineShowsBusyAndIdle) {
  sim::Simulation sim;
  ExecutionOptions options;
  options.nodes = 2;
  const auto report =
      run_set_synchronized(sim, tasks_with_durations({10, 100}), options);
  const std::string text =
      render_timeline(report.node_timeline, report.makespan_s, 20);
  EXPECT_NE(text.find("node   0 |"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('.'), std::string::npos);  // node 0 idles after t=10
}

TEST(Executors, VirtualTimeAdvancesInSim) {
  sim::Simulation sim;
  ExecutionOptions options;
  options.nodes = 1;
  run_pilot(sim, tasks_with_durations({10, 10}), options);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
  run_set_synchronized(sim, tasks_with_durations({5}), options);
  EXPECT_DOUBLE_EQ(sim.now(), 25.0);
}

}  // namespace
}  // namespace ff::savanna
