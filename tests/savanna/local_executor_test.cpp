#include "savanna/local_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace ff::savanna {
namespace {

TEST(LocalExecutor, RunsAllTasks) {
  std::atomic<int> counter{0};
  std::vector<LocalTask> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(LocalTask{"t" + std::to_string(i),
                              [&counter] { counter.fetch_add(1); }});
  }
  const LocalReport report = run_local(tasks, 4);
  EXPECT_EQ(counter.load(), 20);
  EXPECT_EQ(report.completed.size(), 20u);
  EXPECT_TRUE(report.failed.empty());
  EXPECT_GE(report.wall_seconds, 0.0);
}

TEST(LocalExecutor, FailuresAreCollectedNotPropagated) {
  std::vector<LocalTask> tasks;
  tasks.push_back(LocalTask{"ok", [] {}});
  tasks.push_back(LocalTask{"bad", [] { throw std::runtime_error("boom"); }});
  tasks.push_back(LocalTask{"weird", [] { throw 42; }});
  const LocalReport report = run_local(tasks, 2);
  EXPECT_EQ(report.completed.size(), 1u);
  ASSERT_EQ(report.failed.size(), 2u);
  bool saw_boom = false;
  for (const auto& [id, message] : report.failed) {
    if (id == "bad") {
      saw_boom = true;
      EXPECT_EQ(message, "boom");
    }
  }
  EXPECT_TRUE(saw_boom);
}

TEST(LocalExecutor, EmptyTaskList) {
  const LocalReport report = run_local({}, 2);
  EXPECT_TRUE(report.completed.empty());
  EXPECT_TRUE(report.failed.empty());
}

TEST(LocalExecutor, SingleWorkerIsSerial) {
  std::vector<int> order;
  std::vector<LocalTask> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(LocalTask{"t" + std::to_string(i),
                              [&order, i] { order.push_back(i); }});
  }
  run_local(tasks, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace ff::savanna
