#include "savanna/failure_injection.hpp"

#include <gtest/gtest.h>

namespace ff::savanna {
namespace {

sim::TaskSpec task_with(const std::string& id, double duration) {
  sim::TaskSpec task;
  task.id = id;
  task.duration_s = duration;
  return task;
}

TEST(FailureInjector, DeterministicPerRunId) {
  sim::MachineSpec machine = sim::summit();
  machine.node_mttf_hours = 0.5;
  const auto injector = make_failure_injector(machine, 42);
  const auto again = make_failure_injector(machine, 42);
  for (int i = 0; i < 50; ++i) {
    const auto task = task_with("run-" + std::to_string(i), 600);
    EXPECT_EQ(injector(task, 0), again(task, 3));  // node does not matter
  }
}

TEST(FailureInjector, SeedChangesFates) {
  sim::MachineSpec machine = sim::summit();
  machine.node_mttf_hours = 0.3;
  const auto a = make_failure_injector(machine, 1);
  const auto b = make_failure_injector(machine, 2);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    const auto task = task_with("run-" + std::to_string(i), 600);
    if (a(task, 0) != b(task, 0)) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(FailureInjector, RateMatchesExponentialModel) {
  sim::MachineSpec machine = sim::summit();
  machine.node_mttf_hours = 1.0;  // 3600 s
  const auto injector = make_failure_injector(machine, 7);
  const double duration = 1800;  // p = 1 - e^-0.5 ~ 0.393
  int failures = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (injector(task_with("t" + std::to_string(i), duration), 0)) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / trials, 0.393, 0.03);
}

TEST(FailureInjector, LongerRunsFailMore) {
  sim::MachineSpec machine = sim::summit();
  machine.node_mttf_hours = 1.0;
  const auto injector = make_failure_injector(machine, 9);
  int short_failures = 0;
  int long_failures = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string id = "t" + std::to_string(i);
    if (injector(task_with(id, 60), 0)) ++short_failures;
    if (injector(task_with(id, 6000), 0)) ++long_failures;
  }
  EXPECT_GT(long_failures, short_failures * 3);
}

TEST(FailureInjector, DisabledMachineNeverFails) {
  sim::MachineSpec machine = sim::summit();
  machine.node_mttf_hours = 0;
  const auto injector = make_failure_injector(machine, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector(task_with("t" + std::to_string(i), 1e9), 0));
  }
}

TEST(FailureInjector, ComposesWithExecutors) {
  sim::MachineSpec machine = sim::summit();
  machine.node_mttf_hours = 0.05;  // runs almost always fail
  ExecutionOptions options;
  options.nodes = 2;
  options.fails = make_failure_injector(machine, 3);
  std::vector<sim::TaskSpec> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(task_with("t" + std::to_string(i), 3600));
  }
  sim::Simulation sim;
  const auto report = run_pilot(sim, tasks, options);
  EXPECT_GT(report.failed.size(), 5u);
  EXPECT_EQ(report.failed.size() + report.completed.size(), 10u);
}

}  // namespace
}  // namespace ff::savanna
