// Kill/resume fault harness: fork a child that runs a journaled campaign
// and SIGKILLs itself at a fuzzer-chosen journal write (before the write,
// mid-line with the partial bytes fsync'd, or after the commit fsync), then
// resume the campaign in the parent from whatever survived on disk.
//
// Invariants asserted for every kill point:
//   * the resumed campaign completes;
//   * no run is executed twice (each run appears in exactly one committed
//     "completed" record);
//   * the final RunTracker provenance is byte-identical to an
//     uninterrupted run's, and so is the journal file itself.
//
// Three batteries: the PR-3 fsync-per-record configuration, a checkpointed
// + compacted + group-committed configuration (kills land mid-checkpoint
// and mid-compaction too), and a 100k-run scale case proving resume is
// O(live tail) after compaction.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "savanna/campaign_runner.hpp"
#include "savanna/journal.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace ff::savanna {
namespace {

std::vector<sim::TaskSpec> campaign_tasks() {
  std::vector<sim::TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) {
    sim::TaskSpec task;
    task.id = "t" + std::to_string(i);
    task.duration_s = 10.0 + 10.0 * i;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

CampaignRunOptions campaign_options(const RunTracker& tracker,
                                    const JournalPolicy& policy = {}) {
  CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 100;  // forces several re-submissions
  options.retry.max_attempts = 2;     // "t7" exhausts, the rest complete
  options.retry.base_backoff_s = 7;
  options.journal = policy;
  // Failure fates must be identical in the original and resumed processes,
  // so key them off durable state only: the task id and the attempt count
  // already committed to the journal (the tracker is rebuilt from it).
  options.execution.fails = [&tracker](const sim::TaskSpec& task, int) {
    if (task.id == "t7") return true;  // fails every attempt -> exhausted
    if (task.id == "t2") {
      // Fails its first attempt only.
      return tracker.has_run(task.id) && tracker.attempts(task.id) == 0;
    }
    return false;
  };
  return options;
}

struct CampaignOutcome {
  std::string provenance;  // RunTracker::to_json().dump()
  std::string journal_bytes;
  CampaignRunResult result;
};

/// Run (or resume) the campaign at `journal_path` to completion.
CampaignOutcome drive_to_completion(const std::string& journal_path,
                                    const JournalPolicy& policy = {}) {
  sim::Simulation sim;
  RunTracker tracker;
  const auto tasks = campaign_tasks();
  const auto options = campaign_options(tracker, policy);
  CampaignOutcome outcome;
  outcome.result =
      resume_campaign(sim, tasks, options, tracker, journal_path, "crash-test")
          .result;
  outcome.provenance = tracker.to_json().dump();
  outcome.journal_bytes = read_file(journal_path);
  return outcome;
}

/// One hook invocation of an uninterrupted campaign, in order. The child's
/// pre-kill invocation sequence is identical (the campaign is
/// deterministic), so "kill at invocation #n" is a precise, reproducible
/// kill point covering every write kind and phase.
struct HookCall {
  CampaignJournal::WriteKind kind;
  CampaignJournal::WritePhase phase;
};

std::vector<HookCall> record_hook_calls(const JournalPolicy& policy) {
  TempDir dir("crash-count");
  std::vector<HookCall> calls;
  CampaignJournal::set_test_write_hook(
      [&calls](CampaignJournal::WriteKind kind,
               CampaignJournal::WritePhase phase, size_t) {
        calls.push_back(HookCall{kind, phase});
      });
  drive_to_completion(dir.file("journal.jsonl"), policy);
  CampaignJournal::set_test_write_hook({});
  return calls;
}

/// Fork a child that runs the campaign and SIGKILLs itself at the n-th hook
/// invocation. Returns true if the child died by SIGKILL (it always should:
/// every chosen invocation index is reached by the full campaign).
bool run_child_killed_at(const std::string& journal_path,
                         const JournalPolicy& policy, size_t kill_invocation) {
  const pid_t pid = fork();
  if (pid == 0) {
    size_t invocation = 0;
    CampaignJournal::set_test_write_hook(
        [kill_invocation, &invocation](CampaignJournal::WriteKind,
                                       CampaignJournal::WritePhase, size_t) {
          if (invocation++ == kill_invocation) ::kill(::getpid(), SIGKILL);
        });
    drive_to_completion(journal_path, policy);
    ::_exit(0);  // only reached if the kill point was never hit
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

/// Shared per-trial assertions: the resumed campaign reproduces the
/// baseline byte-for-byte (provenance and journal file).
void expect_resumes_to_baseline(const std::string& journal_path,
                                const JournalPolicy& policy,
                                const CampaignOutcome& baseline,
                                size_t* torn_tails_seen) {
  const auto wreckage = CampaignJournal::replay(journal_path);
  if (torn_tails_seen) *torn_tails_seen += wreckage.torn_tail ? 1 : 0;

  const CampaignOutcome resumed = drive_to_completion(journal_path, policy);
  EXPECT_EQ(resumed.result.remaining_runs, 0u);
  EXPECT_EQ(resumed.provenance, baseline.provenance);
  EXPECT_EQ(resumed.journal_bytes, baseline.journal_bytes);
}

TEST(CrashResume, FiftyRandomizedKillPointsAllResumeExactlyOnce) {
  // Uninterrupted baseline: the ground truth every resumed campaign must
  // reproduce byte-for-byte.
  TempDir baseline_dir("crash-baseline");
  const CampaignOutcome baseline =
      drive_to_completion(baseline_dir.file("journal.jsonl"));
  ASSERT_EQ(baseline.result.remaining_runs, 0u);
  ASSERT_EQ(baseline.result.exhausted, std::vector<std::string>{"t7"});

  const std::vector<HookCall> calls = record_hook_calls({});
  ASSERT_GE(calls.size(), 12u) << "campaign too short to fuzz";

  Rng rng(0xFA17F10Eu);  // fixed seed: kill points are reproducible
  size_t torn_tails_seen = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const size_t kill_invocation = rng.below(calls.size());
    SCOPED_TRACE("trial " + std::to_string(trial) + ": kill invocation " +
                 std::to_string(kill_invocation));

    TempDir dir("crash-trial");
    const std::string journal_path = dir.file("journal.jsonl");
    ASSERT_TRUE(run_child_killed_at(journal_path, {}, kill_invocation))
        << "child was expected to die at the kill point";

    expect_resumes_to_baseline(journal_path, {}, baseline, &torn_tails_seen);

    // Exactly-once: across every committed allocation record, each run
    // completes exactly once (and the exhausted run never does). Without
    // checkpoints the journal keeps the full alloc history, so the journal
    // itself is the witness.
    const auto final_replay =
        CampaignJournal::replay(journal_path);
    std::map<std::string, int> completions;
    for (const Json& record : final_replay.allocations) {
      for (const Json& id : record["completed"].as_array()) {
        ++completions[id.as_string()];
      }
    }
    for (const sim::TaskSpec& task : campaign_tasks()) {
      if (task.id == "t7") {
        EXPECT_EQ(completions.count(task.id), 0u);
      } else {
        EXPECT_EQ(completions[task.id], 1) << task.id;
      }
    }
  }
  // The fuzzer must actually exercise the torn-write path (deterministic
  // seed, so this is a stable property of the trial set, not flakiness).
  EXPECT_GT(torn_tails_seen, 0u);
}

TEST(CrashResume, CheckpointedCompactedKillPointsResumeByteIdentical) {
  // The scale configuration: checkpoint every 2 allocations, compact right
  // after, batch 3 records per fsync. Kills must now also land before,
  // inside, and after checkpoint writes and the compaction rename — and the
  // journal must still converge to the same bytes from every kill point.
  JournalPolicy policy;
  policy.checkpoint_every = 2;
  policy.compact_after_checkpoint = true;
  policy.group_commit = 3;

  TempDir baseline_dir("crash-ckpt-baseline");
  const CampaignOutcome baseline =
      drive_to_completion(baseline_dir.file("journal.jsonl"), policy);
  ASSERT_EQ(baseline.result.remaining_runs, 0u);
  {
    // The compacted baseline journal must itself be the compact shape:
    // header, compact marker, newest checkpoint, then only the tail.
    const auto replayed =
        CampaignJournal::replay(baseline_dir.file("journal.jsonl"));
    ASSERT_TRUE(replayed.has_checkpoint());
    ASSERT_GE(replayed.compactions, 1u);
  }

  const std::vector<HookCall> calls = record_hook_calls(policy);
  // The configuration must actually exercise the new write kinds.
  size_t checkpoint_calls = 0;
  size_t compact_calls = 0;
  std::vector<size_t> targeted;
  for (size_t i = 0; i < calls.size(); ++i) {
    if (calls[i].kind == CampaignJournal::WriteKind::Checkpoint) {
      if (checkpoint_calls++ == 0) {
        targeted.push_back(i);      // first checkpoint BeforeWrite
        targeted.push_back(i + 1);  // ... MidWrite (torn checkpoint line)
        targeted.push_back(i + 2);  // ... AfterSync
      }
    }
    if (calls[i].kind == CampaignJournal::WriteKind::Compact) {
      if (compact_calls++ == 0) {
        targeted.push_back(i);      // first compaction BeforeWrite
        targeted.push_back(i + 1);  // ... MidWrite (rename not reached)
        targeted.push_back(i + 2);  // ... AfterSync (compacted file live)
      }
    }
  }
  ASSERT_GT(checkpoint_calls, 0u);
  ASSERT_GT(compact_calls, 0u);

  Rng rng(0xC0FFEE42u);
  for (int trial = 0; trial < 20; ++trial) {
    targeted.push_back(rng.below(calls.size()));
  }
  for (size_t t = 0; t < targeted.size(); ++t) {
    const size_t kill_invocation = targeted[t];
    SCOPED_TRACE("trial " + std::to_string(t) + ": kill invocation " +
                 std::to_string(kill_invocation) + " kind " +
                 std::to_string(static_cast<int>(calls[kill_invocation].kind)) +
                 " phase " +
                 std::to_string(static_cast<int>(calls[kill_invocation].phase)));
    TempDir dir("crash-ckpt-trial");
    const std::string journal_path = dir.file("journal.jsonl");
    ASSERT_TRUE(run_child_killed_at(journal_path, policy, kill_invocation))
        << "child was expected to die at the kill point";
    expect_resumes_to_baseline(journal_path, policy, baseline, nullptr);

    // Exactly-once, witnessed by the provenance (the compacted journal no
    // longer keeps the full alloc history): every run has exactly one
    // terminal "done" event except the exhausted one.
    const Json provenance = Json::parse(
        drive_to_completion(journal_path, policy).provenance);
    for (const sim::TaskSpec& task : campaign_tasks()) {
      size_t done_events = 0;
      for (const Json& event : provenance[task.id]["events"].as_array()) {
        if (event["kind"].as_string() == "done") ++done_events;
      }
      EXPECT_EQ(done_events, task.id == "t7" ? 0u : 1u) << task.id;
    }
  }
}

// ---------------------------------------------------------------------------
// 100k-run scale: checkpoint + compaction keep resume O(live tail)
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__)
constexpr size_t kScaleRuns = 20000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr size_t kScaleRuns = 20000;
#else
constexpr size_t kScaleRuns = 100000;
#endif
#else
constexpr size_t kScaleRuns = 100000;
#endif

std::vector<sim::TaskSpec> scale_tasks() {
  std::vector<sim::TaskSpec> tasks;
  tasks.reserve(kScaleRuns);
  char id[16];
  for (size_t i = 0; i < kScaleRuns; ++i) {
    std::snprintf(id, sizeof(id), "r%06zu", i);
    sim::TaskSpec task;
    task.id = id;
    task.duration_s = 1.0;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

CampaignRunOptions scale_options(const RunTracker& tracker) {
  CampaignRunOptions options;
  options.execution.nodes = 512;
  // Roughly half the ensemble fits per allocation: several re-submissions.
  options.execution.walltime_s =
      static_cast<double>(kScaleRuns) / 512.0 / 2.0;
  options.retry.max_attempts = 2;
  options.journal.checkpoint_every = 1;
  options.journal.compact_after_checkpoint = true;
  options.journal.group_commit = 64;
  // Deterministic sparse failures keyed off durable state only.
  options.execution.fails = [&tracker](const sim::TaskSpec& task, int) {
    const size_t bucket =
        std::hash<std::string>{}(task.id) % 97;
    return bucket == 0 && tracker.has_run(task.id) &&
           tracker.attempts(task.id) == 0;
  };
  // Preflight-linting a multi-megabyte journal on every resume is the one
  // O(file) cost this test is *not* about; the journal_test lint cases
  // cover it.
  options.preflight_lint = false;
  return options;
}

struct ScaleOutcome {
  std::string provenance;
  std::string journal_bytes;
  size_t tail_allocations = 0;  // alloc records replayed after the checkpoint
  bool had_checkpoint = false;
};

ScaleOutcome drive_scale_to_completion(const std::string& journal_path) {
  sim::Simulation sim;
  RunTracker tracker;
  const auto tasks = scale_tasks();
  const auto options = scale_options(tracker);
  const auto before = CampaignJournal::replay(journal_path);
  ScaleOutcome outcome;
  outcome.tail_allocations = before.allocations.size();
  outcome.had_checkpoint = before.has_checkpoint();
  resume_campaign(sim, tasks, options, tracker, journal_path, "scale-test");
  outcome.provenance = tracker.to_json().dump();
  outcome.journal_bytes = read_file(journal_path);
  return outcome;
}

bool run_scale_child_killed_at(const std::string& journal_path,
                               CampaignJournal::WriteKind kill_kind,
                               CampaignJournal::WritePhase kill_phase,
                               size_t nth_match) {
  const pid_t pid = fork();
  if (pid == 0) {
    size_t matches = 0;
    CampaignJournal::set_test_write_hook(
        [&](CampaignJournal::WriteKind kind, CampaignJournal::WritePhase phase,
            size_t) {
          if (kind == kill_kind && phase == kill_phase &&
              matches++ == nth_match) {
            ::kill(::getpid(), SIGKILL);
          }
        });
    drive_scale_to_completion(journal_path);
    ::_exit(0);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

TEST(CrashResumeScale, KilledMidCheckpointAndMidCompactionAtScale) {
  TempDir baseline_dir("scale-baseline");
  const ScaleOutcome baseline =
      drive_scale_to_completion(baseline_dir.file("journal.jsonl"));

  struct KillPoint {
    CampaignJournal::WriteKind kind;
    CampaignJournal::WritePhase phase;
    size_t nth;
  };
  // Kill at the *second* checkpoint/compaction so the wreckage already
  // carries a committed earlier checkpoint — the case where O(live tail)
  // resume actually matters.
  const KillPoint kill_points[] = {
      // Torn checkpoint line: the multi-megabyte ckpt record is half
      // written when the process dies.
      {CampaignJournal::WriteKind::Checkpoint,
       CampaignJournal::WritePhase::MidWrite, 1},
      // Mid-compaction: the rename never happens, the old journal survives.
      {CampaignJournal::WriteKind::Compact,
       CampaignJournal::WritePhase::MidWrite, 1},
      // Just after compaction went live.
      {CampaignJournal::WriteKind::Compact,
       CampaignJournal::WritePhase::AfterSync, 1},
  };
  for (const KillPoint& kp : kill_points) {
    SCOPED_TRACE("kill kind " + std::to_string(static_cast<int>(kp.kind)) +
                 " phase " + std::to_string(static_cast<int>(kp.phase)));
    TempDir dir("scale-trial");
    const std::string journal_path = dir.file("journal.jsonl");
    ASSERT_TRUE(
        run_scale_child_killed_at(journal_path, kp.kind, kp.phase, kp.nth));

    const ScaleOutcome resumed = drive_scale_to_completion(journal_path);
    // O(live tail) resume: the wreckage replay restored a checkpoint and
    // carried at most a couple of alloc records past it — not the
    // campaign's whole allocation history.
    EXPECT_TRUE(resumed.had_checkpoint);
    EXPECT_LE(resumed.tail_allocations, 2u);
    EXPECT_EQ(resumed.provenance, baseline.provenance);
    EXPECT_EQ(resumed.journal_bytes, baseline.journal_bytes);
  }
}

}  // namespace
}  // namespace ff::savanna
