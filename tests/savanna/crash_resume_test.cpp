// Kill/resume fault harness: fork a child that runs a journaled campaign
// and SIGKILLs itself at a fuzzer-chosen journal write (before the write,
// mid-line with the partial bytes fsync'd, or after the commit fsync), then
// resume the campaign in the parent from whatever survived on disk.
//
// Invariants asserted for every kill point:
//   * the resumed campaign completes;
//   * no run is executed twice (each run appears in exactly one committed
//     "completed" record);
//   * the final RunTracker provenance is byte-identical to an
//     uninterrupted run's, and so is the journal file itself.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "savanna/campaign_runner.hpp"
#include "savanna/journal.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace ff::savanna {
namespace {

std::vector<sim::TaskSpec> campaign_tasks() {
  std::vector<sim::TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) {
    sim::TaskSpec task;
    task.id = "t" + std::to_string(i);
    task.duration_s = 10.0 + 10.0 * i;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

CampaignRunOptions campaign_options(const RunTracker& tracker) {
  CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 100;  // forces several re-submissions
  options.retry.max_attempts = 2;     // "t7" exhausts, the rest complete
  options.retry.base_backoff_s = 7;
  // Failure fates must be identical in the original and resumed processes,
  // so key them off durable state only: the task id and the attempt count
  // already committed to the journal (the tracker is rebuilt from it).
  options.execution.fails = [&tracker](const sim::TaskSpec& task, int) {
    if (task.id == "t7") return true;  // fails every attempt -> exhausted
    if (task.id == "t2") {
      // Fails its first attempt only.
      return tracker.has_run(task.id) && tracker.attempts(task.id) == 0;
    }
    return false;
  };
  return options;
}

struct CampaignOutcome {
  std::string provenance;  // RunTracker::to_json().dump()
  std::string journal_bytes;
  CampaignRunResult result;
};

/// Run (or resume) the campaign at `journal_path` to completion.
CampaignOutcome drive_to_completion(const std::string& journal_path) {
  sim::Simulation sim;
  RunTracker tracker;
  const auto tasks = campaign_tasks();
  const auto options = campaign_options(tracker);
  CampaignOutcome outcome;
  outcome.result =
      resume_campaign(sim, tasks, options, tracker, journal_path, "crash-test")
          .result;
  outcome.provenance = tracker.to_json().dump();
  outcome.journal_bytes = read_file(journal_path);
  return outcome;
}

/// Fork a child that runs the campaign and SIGKILLs itself at the given
/// write/phase. Returns true if the child died by SIGKILL (it always
/// should: every chosen write index is reached by the full campaign).
bool run_child_killed_at(const std::string& journal_path, size_t kill_write,
                         CampaignJournal::WritePhase kill_phase) {
  const pid_t pid = fork();
  if (pid == 0) {
    CampaignJournal::set_test_write_hook(
        [kill_write, kill_phase](CampaignJournal::WritePhase phase,
                                 size_t write_index) {
          if (write_index == kill_write && phase == kill_phase) {
            ::kill(::getpid(), SIGKILL);
          }
        });
    drive_to_completion(journal_path);
    ::_exit(0);  // only reached if the kill point was never hit
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

TEST(CrashResume, FiftyRandomizedKillPointsAllResumeExactlyOnce) {
  // Uninterrupted baseline: the ground truth every resumed campaign must
  // reproduce byte-for-byte.
  TempDir baseline_dir("crash-baseline");
  const CampaignOutcome baseline =
      drive_to_completion(baseline_dir.file("journal.jsonl"));
  ASSERT_EQ(baseline.result.remaining_runs, 0u);
  ASSERT_EQ(baseline.result.exhausted, std::vector<std::string>{"t7"});

  // Durable writes in a full campaign: header (#0) + one per allocation.
  const auto baseline_replay =
      CampaignJournal::replay(baseline_dir.file("journal.jsonl"));
  const size_t total_writes = 1 + baseline_replay.allocations.size();
  ASSERT_GE(total_writes, 4u) << "campaign too short to fuzz";

  constexpr CampaignJournal::WritePhase kPhases[] = {
      CampaignJournal::WritePhase::BeforeWrite,
      CampaignJournal::WritePhase::MidWrite,
      CampaignJournal::WritePhase::AfterSync,
  };
  Rng rng(0xFA17F10Eu);  // fixed seed: kill points are reproducible
  size_t torn_tails_seen = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const size_t kill_write = rng.below(total_writes);
    const auto kill_phase = kPhases[rng.below(3)];
    SCOPED_TRACE("trial " + std::to_string(trial) + ": kill write " +
                 std::to_string(kill_write) + " phase " +
                 std::to_string(static_cast<int>(kill_phase)));

    TempDir dir("crash-trial");
    const std::string journal_path = dir.file("journal.jsonl");
    ASSERT_TRUE(run_child_killed_at(journal_path, kill_write, kill_phase))
        << "child was expected to die at the kill point";

    // Whatever the child left behind must be resumable.
    const auto wreckage = CampaignJournal::replay(journal_path);
    torn_tails_seen += wreckage.torn_tail ? 1 : 0;

    const CampaignOutcome resumed = drive_to_completion(journal_path);
    EXPECT_EQ(resumed.result.remaining_runs, 0u);
    EXPECT_EQ(resumed.provenance, baseline.provenance);
    EXPECT_EQ(resumed.journal_bytes, baseline.journal_bytes);

    // Exactly-once: across every committed allocation record, each run
    // completes exactly once (and the exhausted run never does).
    const auto final_replay = CampaignJournal::replay(journal_path);
    std::map<std::string, int> completions;
    for (const Json& record : final_replay.allocations) {
      for (const Json& id : record["completed"].as_array()) {
        ++completions[id.as_string()];
      }
    }
    for (const sim::TaskSpec& task : campaign_tasks()) {
      if (task.id == "t7") {
        EXPECT_EQ(completions.count(task.id), 0u);
      } else {
        EXPECT_EQ(completions[task.id], 1) << task.id;
      }
    }
  }
  // The fuzzer must actually exercise the torn-write path (deterministic
  // seed, so this is a stable property of the trial set, not flakiness).
  EXPECT_GT(torn_tails_seen, 0u);
}

}  // namespace
}  // namespace ff::savanna
