#include "cluster/sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace ff::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, EqualTimesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, HandlersCanScheduleMoreEvents) {
  Simulation sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.schedule_after(1.5, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 1.5, 3.0, 4.5}));
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), Error);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), Error);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const uint64_t id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulation, CancelAfterFireReturnsFalse) {
  Simulation sim;
  const uint64_t id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(9999));  // unknown id
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Simulation, RunUntilFiresEventsAtExactDeadline) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, RunUntilAdvancesTimeWithEmptyQueue) {
  Simulation sim;
  sim.run_until(100.0);
  EXPECT_EQ(sim.now(), 100.0);
}

TEST(Simulation, RunUntilSkipsCancelledHead) {
  Simulation sim;
  const uint64_t id = sim.schedule_at(1.0, [] {});
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, StepFiresSingleEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulation, ManyEventsStressDeterminism) {
  auto run_once = [] {
    Simulation sim;
    std::vector<uint64_t> fired;
    for (uint64_t i = 0; i < 1000; ++i) {
      const double t = static_cast<double>((i * 7919) % 101);
      sim.schedule_at(t, [&fired, i] { fired.push_back(i); });
    }
    sim.run();
    return fired;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Calendar-queue behavior: the bucket structure must be invisible except for
// speed. These stress patterns force growth, shrinkage, and slot wraparound
// and compare against a reference stable sort on (time, schedule order).
// ---------------------------------------------------------------------------

TEST(Simulation, CalendarStressMatchesStableSortReference) {
  Simulation sim;
  std::vector<std::pair<double, uint64_t>> scheduled;
  std::vector<uint64_t> fired;
  uint64_t lcg = 0x5DEECE66Dull;
  for (uint64_t i = 0; i < 20000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Mix wide spreads with dense clusters so bucket widths get re-derived.
    const double t = (i % 3 == 0)
                         ? static_cast<double>(lcg % 1000000) / 10.0
                         : static_cast<double>(lcg % 97);
    scheduled.emplace_back(t, i);
    sim.schedule_at(t, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(fired.size(), scheduled.size());
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], scheduled[i].second) << "divergence at event " << i;
  }
  EXPECT_EQ(sim.events_processed(), 20000u);
}

TEST(Simulation, GrowShrinkChurnKeepsOrderAndExactlyOnce) {
  Simulation sim;
  std::vector<double> fired_times;
  size_t expected = 0;
  double horizon = 0.0;
  uint64_t lcg = 42;
  for (int round = 0; round < 12; ++round) {
    // Schedule a burst (forces growth), cancel a third of it (forces the
    // shrink path as run_until drains the rest).
    std::vector<std::pair<uint64_t, double>> scheduled;
    for (int i = 0; i < 500; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const double t = sim.now() + 1.0 + static_cast<double>(lcg % 1000) / 7.0;
      scheduled.emplace_back(sim.schedule_at(t, [&fired_times, &sim] {
        fired_times.push_back(sim.now());
      }), t);
    }
    for (size_t i = 0; i < scheduled.size(); ++i) {
      if (i % 3 == 0) {
        ASSERT_TRUE(sim.cancel(scheduled[i].first));
      } else {
        horizon = std::max(horizon, scheduled[i].second);
        ++expected;
      }
    }
    sim.run_until(sim.now() + 40.0);
  }
  sim.run();
  ASSERT_EQ(fired_times.size(), expected);
  EXPECT_TRUE(std::is_sorted(fired_times.begin(), fired_times.end()));
  EXPECT_EQ(sim.now(), horizon);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, InfiniteTimesFireAfterAllFiniteEvents) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(std::numeric_limits<double>::infinity(),
                  [&] { order.push_back(100); });
  sim.schedule_at(5.0, [&] { order.push_back(5); });
  sim.schedule_at(std::numeric_limits<double>::infinity(),
                  [&] { order.push_back(101); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5, 100, 101}));
  EXPECT_THROW(sim.schedule_at(std::numeric_limits<double>::quiet_NaN(), [] {}),
               Error);
}

TEST(Simulation, DuplicateHeavyBurstAfterSparsePrelude) {
  // Regression for the width re-derivation in cq_resize: a duplicate-heavy
  // population has median gap zero, and the old code skipped the width
  // update entirely — pinning whatever slot width an earlier (hour-sparse)
  // population derived. The width now falls back to the smallest *positive*
  // gap, so the microsecond-spaced instants below spread over many narrow
  // slots. Correctness contract checked here: (time, schedule-order)
  // delivery and exactly-once, across the sparse→burst churn.
  Simulation sim;
  std::vector<std::pair<double, uint64_t>> fired;
  uint64_t tag = 0;
  // Sparse prelude: hour-apart events force resizes that derive a wide slot.
  for (int i = 0; i < 64; ++i) {
    const double t = static_cast<double>(i) * 3600.0;
    sim.schedule_at(t, [&fired, t, tag] { fired.emplace_back(t, tag); });
    ++tag;
  }
  sim.run();
  // Burst: 4096 events over 16 distinct microsecond-spaced instants (256
  // duplicates each) — median gap 0, smallest positive gap 1 µs.
  const double base = sim.now() + 10.0;
  for (int i = 0; i < 4096; ++i) {
    const double t = base + static_cast<double>(i / 256) * 1e-6;
    sim.schedule_at(t, [&fired, t, tag] { fired.emplace_back(t, tag); });
    ++tag;
  }
  sim.run();
  ASSERT_EQ(fired.size(), 64u + 4096u);
  for (size_t i = 1; i < fired.size(); ++i) {
    ASSERT_TRUE(fired[i - 1].first < fired[i].first ||
                (fired[i - 1].first == fired[i].first &&
                 fired[i - 1].second < fired[i].second))
        << "events out of order at position " << i;
  }
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, IdenticalTimesAtScaleStayInScheduleOrder) {
  // Degenerate case for a calendar queue: every event lands in one bucket
  // and the median-gap width heuristic sees all-zero gaps.
  Simulation sim;
  std::vector<uint64_t> fired;
  for (uint64_t i = 0; i < 5000; ++i) {
    sim.schedule_at(7.25, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) EXPECT_EQ(fired[i], i);
  EXPECT_EQ(sim.now(), 7.25);
}

}  // namespace
}  // namespace ff::sim
