#include "cluster/sim.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, EqualTimesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, HandlersCanScheduleMoreEvents) {
  Simulation sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.schedule_after(1.5, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 1.5, 3.0, 4.5}));
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), Error);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), Error);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const uint64_t id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulation, CancelAfterFireReturnsFalse) {
  Simulation sim;
  const uint64_t id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(9999));  // unknown id
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Simulation, RunUntilFiresEventsAtExactDeadline) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, RunUntilAdvancesTimeWithEmptyQueue) {
  Simulation sim;
  sim.run_until(100.0);
  EXPECT_EQ(sim.now(), 100.0);
}

TEST(Simulation, RunUntilSkipsCancelledHead) {
  Simulation sim;
  const uint64_t id = sim.schedule_at(1.0, [] {});
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, StepFiresSingleEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulation, ManyEventsStressDeterminism) {
  auto run_once = [] {
    Simulation sim;
    std::vector<uint64_t> fired;
    for (uint64_t i = 0; i < 1000; ++i) {
      const double t = static_cast<double>((i * 7919) % 101);
      sim.schedule_at(t, [&fired, i] { fired.push_back(i); });
    }
    sim.run();
    return fired;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ff::sim
