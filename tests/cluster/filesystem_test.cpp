#include "cluster/filesystem.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::sim {
namespace {

TEST(SharedFilesystem, WriteTimeScalesWithSize) {
  SharedFilesystem fs(summit(), 1);
  const double small = fs.write_seconds(1e9, 0.0);
  const double large = fs.write_seconds(1e12, 0.0);
  EXPECT_GT(large, small);
  // At the same instant the load factor is identical, so the ratio is the
  // size ratio (after subtracting fixed latency).
  const double latency = summit().fs_latency_s;
  EXPECT_NEAR((large - latency) / (small - latency), 1000.0, 1e-6);
}

TEST(SharedFilesystem, DeterministicForSeed) {
  SharedFilesystem a(summit(), 42);
  SharedFilesystem b(summit(), 42);
  for (double t : {0.0, 100.0, 5000.0, 86400.0}) {
    EXPECT_EQ(a.write_seconds(1e12, t), b.write_seconds(1e12, t));
  }
}

TEST(SharedFilesystem, DifferentSeedsDifferentLoads) {
  SharedFilesystem a(summit(), 1);
  SharedFilesystem b(summit(), 2);
  bool any_different = false;
  for (double t = 0; t < 10000; t += 500) {
    if (a.load_factor(t) != b.load_factor(t)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(SharedFilesystem, LoadFactorVariesOverTime) {
  SharedFilesystem fs(summit(), 7);
  RunningStats stats;
  for (double t = 0; t < 864000; t += 600) stats.add(fs.load_factor(t));
  EXPECT_GT(stats.stddev(), 0.05);   // fluctuates
  EXPECT_GT(stats.min(), 0.19);      // floor respected
  EXPECT_NEAR(stats.mean(), 1.0, 0.35);  // mean-reverting around nominal
}

TEST(SharedFilesystem, LoadQueriesAreTimeConsistent) {
  // Querying t=5000 then t=100 must give the same answer as querying in
  // increasing order (the grid is materialized deterministically).
  SharedFilesystem forward(summit(), 9);
  SharedFilesystem backward(summit(), 9);
  const double late_f = forward.load_factor(100.0);
  const double early_f = forward.load_factor(5000.0);
  const double early_b = backward.load_factor(5000.0);
  const double late_b = backward.load_factor(100.0);
  EXPECT_EQ(late_f, late_b);
  EXPECT_EQ(early_f, early_b);
}

TEST(SharedFilesystem, CongestionWindowSlowsWrites) {
  SharedFilesystem fs(summit(), 3);
  const double before = fs.write_seconds(1e12, 1000.0);
  fs.add_congestion_window(900.0, 1100.0, 4.0);
  const double during = fs.write_seconds(1e12, 1000.0);
  EXPECT_GT(during, before * 2.0);
  const double outside = fs.write_seconds(1e12, 2000.0);
  fs.add_congestion_window(1900.0, 2100.0, 4.0);
  EXPECT_GT(fs.write_seconds(1e12, 2000.0), outside);
}

TEST(SharedFilesystem, InvalidInputsThrow) {
  SharedFilesystem fs(summit(), 3);
  EXPECT_THROW(fs.write_seconds(-1.0, 0.0), Error);
  EXPECT_THROW(fs.add_congestion_window(10, 5, 2.0), Error);
  EXPECT_THROW(fs.add_congestion_window(0, 5, -1.0), Error);
  MachineSpec broken = summit();
  broken.fs_bandwidth_gbps = 0;
  EXPECT_THROW(SharedFilesystem(broken, 1), Error);
}

TEST(SharedFilesystem, StatsAccumulate) {
  SharedFilesystem fs(summit(), 3);
  fs.write_seconds(1e9, 0.0);
  fs.write_seconds(1e9, 60.0);
  EXPECT_EQ(fs.write_stats().count(), 2u);
}

TEST(MachineSpec, JsonRoundTrip) {
  const MachineSpec spec = summit();
  const MachineSpec reparsed = MachineSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed.name, "summit");
  EXPECT_EQ(reparsed.nodes, 4608);
  EXPECT_DOUBLE_EQ(reparsed.fs_bandwidth_gbps, spec.fs_bandwidth_gbps);
  EXPECT_DOUBLE_EQ(reparsed.node_mttf_hours, spec.node_mttf_hours);
}

TEST(MachineSpec, PresetsAreOrdered) {
  EXPECT_GT(summit().nodes, institutional_cluster().nodes);
  EXPECT_GT(institutional_cluster().nodes, workstation().nodes);
  EXPECT_GT(summit().fs_bandwidth_gbps, institutional_cluster().fs_bandwidth_gbps);
}

}  // namespace
}  // namespace ff::sim
