#include "cluster/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ff::sim {
namespace {

TEST(DurationModel, SamplesArePositive) {
  DurationModel model;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(model.sample(rng), 0.0);
}

TEST(DurationModel, MedianApproximatelyHonored) {
  DurationModel model;
  model.median_s = 200;
  model.straggler_fraction = 0;  // pure lognormal: median is exact
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(model.sample(rng));
  EXPECT_NEAR(median(samples), 200.0, 6.0);
}

TEST(DurationModel, StragglersCreateHeavyTail) {
  DurationModel skewed;
  skewed.straggler_fraction = 0.10;
  DurationModel clean = skewed;
  clean.straggler_fraction = 0.0;
  Rng rng1(3);
  Rng rng2(3);
  std::vector<double> with_tail;
  std::vector<double> without_tail;
  for (int i = 0; i < 20000; ++i) {
    with_tail.push_back(skewed.sample(rng1));
    without_tail.push_back(clean.sample(rng2));
  }
  EXPECT_GT(percentile(with_tail, 99), percentile(without_tail, 99) * 1.3);
}

TEST(DurationModel, InvalidMedianThrows) {
  DurationModel model;
  model.median_s = 0;
  Rng rng(1);
  EXPECT_THROW(model.sample(rng), Error);
}

TEST(MakeEnsemble, DeterministicAndWellFormed) {
  DurationModel model;
  const auto a = make_ensemble(50, model, 42);
  const auto b = make_ensemble(50, model, 42);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a[0].id, "run-0000");
  EXPECT_EQ(a[49].id, "run-0049");
  EXPECT_EQ(a[7].feature_index, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].duration_s, b[i].duration_s);
    EXPECT_GT(a[i].duration_s, 0.0);
  }
  const auto c = make_ensemble(50, model, 43);
  EXPECT_NE(a[0].duration_s, c[0].duration_s);
}

TEST(MakeEnsemble, EmptyCount) {
  EXPECT_TRUE(make_ensemble(0, DurationModel{}, 1).empty());
}

TEST(SummarizeEnsemble, MatchesDirectComputation) {
  DurationModel model;
  const auto tasks = make_ensemble(200, model, 5);
  const EnsembleSummary summary = summarize_ensemble(tasks);
  double total = 0;
  double longest = 0;
  for (const auto& task : tasks) {
    total += task.duration_s;
    longest = std::max(longest, task.duration_s);
  }
  EXPECT_NEAR(summary.total_core_seconds, total, 1e-9);
  EXPECT_DOUBLE_EQ(summary.max_s, longest);
  EXPECT_LE(summary.min_s, summary.mean_s);
  EXPECT_LE(summary.mean_s, summary.max_s);
  EXPECT_LE(summary.p95_s, summary.max_s);
}

TEST(SummarizeEnsemble, EmptyIsZeros) {
  const EnsembleSummary summary = summarize_ensemble({});
  EXPECT_EQ(summary.total_core_seconds, 0.0);
  EXPECT_EQ(summary.max_s, 0.0);
}

}  // namespace
}  // namespace ff::sim
