#include "cluster/failure.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace ff::sim {
namespace {

TEST(FailureModel, NextFailureAlwaysAfterNow) {
  FailureModel model(summit(), 1);
  for (double now : {0.0, 100.0, 1e6}) {
    const auto failure = model.next_failure_after(now, 128);
    ASSERT_TRUE(failure.has_value());
    EXPECT_GT(*failure, now);
  }
}

TEST(FailureModel, MoreNodesFailSooner) {
  FailureModel model(summit(), 2);
  RunningStats few;
  RunningStats many;
  for (int i = 0; i < 3000; ++i) {
    few.add(*model.next_failure_after(0.0, 4));
    many.add(*model.next_failure_after(0.0, 4096));
  }
  EXPECT_GT(few.mean(), many.mean() * 100);
}

TEST(FailureModel, MeanMatchesMttfOverNodes) {
  MachineSpec spec = summit();
  spec.node_mttf_hours = 1.0;  // 3600 s
  FailureModel model(spec, 3);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(*model.next_failure_after(0.0, 10));
  EXPECT_NEAR(stats.mean(), 360.0, 10.0);
}

TEST(FailureModel, DisabledWhenMttfNonPositive) {
  MachineSpec spec = summit();
  spec.node_mttf_hours = 0;
  FailureModel model(spec, 4);
  EXPECT_FALSE(model.next_failure_after(0.0, 100).has_value());
  EXPECT_EQ(model.survival_probability(100, 1e9), 1.0);
}

TEST(FailureModel, ZeroNodesNeverFail) {
  FailureModel model(summit(), 5);
  EXPECT_FALSE(model.next_failure_after(0.0, 0).has_value());
}

TEST(FailureModel, SurvivalProbabilityAnalytic) {
  MachineSpec spec = summit();
  spec.node_mttf_hours = 1.0;
  FailureModel model(spec, 6);
  // 1 node for 3600 s: e^-1.
  EXPECT_NEAR(model.survival_probability(1, 3600.0), std::exp(-1.0), 1e-12);
  // Probability decreases with nodes and duration.
  EXPECT_GT(model.survival_probability(1, 100.0),
            model.survival_probability(2, 100.0));
  EXPECT_GT(model.survival_probability(1, 100.0),
            model.survival_probability(1, 200.0));
  EXPECT_EQ(model.survival_probability(1, 0.0), 1.0);
}

TEST(FailureModel, EmpiricalSurvivalMatchesAnalytic) {
  MachineSpec spec = summit();
  spec.node_mttf_hours = 2.0;
  FailureModel model(spec, 7);
  const double duration = 3600.0;
  const int nodes = 3;
  int survived = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (*model.next_failure_after(0.0, nodes) > duration) ++survived;
  }
  EXPECT_NEAR(static_cast<double>(survived) / trials,
              model.survival_probability(nodes, duration), 0.01);
}

}  // namespace
}  // namespace ff::sim
