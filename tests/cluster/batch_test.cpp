#include "cluster/batch.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::sim {
namespace {

MachineSpec no_queue_machine(int nodes) {
  MachineSpec spec = institutional_cluster();
  spec.nodes = nodes;
  spec.queue_wait_mean_s = 0;  // deterministic starts for unit tests
  return spec;
}

TEST(BatchSystem, StartsJobImmediatelyWhenFree) {
  Simulation sim;
  BatchSystem batch(sim, no_queue_machine(8), 1);
  bool started = false;
  BatchSystem::JobRequest request;
  request.name = "j";
  request.nodes = 4;
  request.walltime_s = 100;
  request.on_start = [&](const Allocation& allocation) {
    started = true;
    EXPECT_EQ(allocation.nodes, 4);
    EXPECT_EQ(allocation.start_time, 0.0);
    EXPECT_EQ(allocation.deadline(), 100.0);
  };
  batch.submit(std::move(request));
  sim.run();
  EXPECT_TRUE(started);
  EXPECT_EQ(batch.jobs_started(), 1u);
}

TEST(BatchSystem, RejectsImpossibleRequests) {
  Simulation sim;
  BatchSystem batch(sim, no_queue_machine(8), 1);
  BatchSystem::JobRequest too_big;
  too_big.name = "big";
  too_big.nodes = 16;
  EXPECT_THROW(batch.submit(std::move(too_big)), Error);
  BatchSystem::JobRequest zero;
  zero.nodes = 0;
  EXPECT_THROW(batch.submit(std::move(zero)), Error);
  BatchSystem::JobRequest bad_wall;
  bad_wall.nodes = 1;
  bad_wall.walltime_s = 0;
  EXPECT_THROW(batch.submit(std::move(bad_wall)), Error);
}

TEST(BatchSystem, SecondJobWaitsForNodes) {
  Simulation sim;
  BatchSystem batch(sim, no_queue_machine(8), 1);
  std::vector<double> starts;
  auto submit = [&](int nodes, double walltime) {
    BatchSystem::JobRequest request;
    request.name = "j";
    request.nodes = nodes;
    request.walltime_s = walltime;
    request.on_start = [&](const Allocation& allocation) {
      starts.push_back(allocation.start_time);
    };
    batch.submit(std::move(request));
  };
  submit(6, 50);   // holds 6 of 8 until walltime
  submit(6, 50);   // must wait for the first to end
  sim.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0.0);
  EXPECT_EQ(starts[1], 50.0);  // starts when walltime frees the nodes
}

TEST(BatchSystem, CompleteReleasesEarly) {
  Simulation sim;
  BatchSystem batch(sim, no_queue_machine(4), 1);
  std::vector<double> starts;
  Allocation first_allocation;
  BatchSystem::JobRequest first;
  first.name = "first";
  first.nodes = 4;
  first.walltime_s = 1000;
  first.on_start = [&](const Allocation& allocation) {
    starts.push_back(allocation.start_time);
    first_allocation = allocation;
    // Finish after 10 s of virtual work, well before walltime.
    sim.schedule_after(10.0, [&] { batch.complete(first_allocation); });
  };
  batch.submit(std::move(first));
  BatchSystem::JobRequest second;
  second.name = "second";
  second.nodes = 4;
  second.walltime_s = 100;
  second.on_start = [&](const Allocation& allocation) {
    starts.push_back(allocation.start_time);
  };
  batch.submit(std::move(second));
  sim.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1], 10.0);
  EXPECT_EQ(batch.free_nodes(), 4);  // all released once every walltime fires
}

TEST(BatchSystem, WalltimeCallbackFiresOnlyIfStillRunning) {
  Simulation sim;
  BatchSystem batch(sim, no_queue_machine(2), 1);
  int walltime_hits = 0;
  Allocation held;
  BatchSystem::JobRequest finishes_early;
  finishes_early.name = "early";
  finishes_early.nodes = 1;
  finishes_early.walltime_s = 100;
  finishes_early.on_start = [&](const Allocation& allocation) {
    held = allocation;
    sim.schedule_after(5.0, [&] { batch.complete(held); });
  };
  finishes_early.on_walltime = [&](const Allocation&) { ++walltime_hits; };
  batch.submit(std::move(finishes_early));

  BatchSystem::JobRequest runs_over;
  runs_over.name = "over";
  runs_over.nodes = 1;
  runs_over.walltime_s = 50;
  runs_over.on_walltime = [&](const Allocation&) { ++walltime_hits; };
  batch.submit(std::move(runs_over));
  sim.run();
  EXPECT_EQ(walltime_hits, 1);  // only the job that ran past its walltime
  EXPECT_EQ(batch.free_nodes(), 2);
}

TEST(BatchSystem, StochasticQueueDelayWhenConfigured) {
  Simulation sim;
  MachineSpec spec = no_queue_machine(64);
  spec.queue_wait_mean_s = 600;
  BatchSystem batch(sim, spec, 42);
  std::vector<double> starts;
  for (int i = 0; i < 20; ++i) {
    BatchSystem::JobRequest request;
    request.name = "j";
    request.nodes = 1;
    request.walltime_s = 1;
    request.on_start = [&](const Allocation& allocation) {
      starts.push_back(allocation.start_time);
    };
    batch.submit(std::move(request));
  }
  sim.run();
  ASSERT_EQ(starts.size(), 20u);
  double total = 0;
  for (double t : starts) total += t;
  EXPECT_GT(total, 0.0);  // some nonzero waits
}

TEST(BatchSystem, FifoHeadBlocksLaterJobs) {
  // No backfill: a large eligible head job blocks a small one behind it.
  Simulation sim;
  BatchSystem batch(sim, no_queue_machine(8), 1);
  std::vector<std::string> order;
  auto submit = [&](const std::string& name, int nodes, double walltime) {
    BatchSystem::JobRequest request;
    request.name = name;
    request.nodes = nodes;
    request.walltime_s = walltime;
    request.on_start = [&order, name](const Allocation&) { order.push_back(name); };
    batch.submit(std::move(request));
  };
  submit("holder", 8, 30);
  submit("big", 8, 10);
  submit("small", 1, 10);
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], "big");  // small did not jump the queue
}

}  // namespace
}  // namespace ff::sim
