// Cross-module integration tests: each test exercises a realistic path
// through several libraries at once, mirroring how a downstream user would
// wire them together.

#include <gtest/gtest.h>

#include <set>

#include "cheetah/endpoint.hpp"
#include "cheetah/manifest.hpp"
#include "cheetah/results.hpp"
#include "core/assessment.hpp"
#include "core/metadata_catalog.hpp"
#include "gwas/formats.hpp"
#include "gwas/genotype.hpp"
#include "gwas/workflow.hpp"
#include "irf/irf_loop.hpp"
#include "savanna/batch_runner.hpp"
#include "savanna/provenance.hpp"
#include "stream/codegen.hpp"
#include "stream/marshal.hpp"
#include "stream/scheduler.hpp"
#include "util/fs.hpp"

namespace ff {
namespace {

TEST(Integration, GwasCampaignEndToEnd) {
  // 1. Science inputs on disk.
  gwas::GwasConfig config;
  config.samples = 50;
  config.snps = 36;
  config.causal_snps = 2;
  config.effect_size = 1.5;
  const gwas::GwasData data = gwas::make_gwas_data(config, 7);
  TempDir dir("integration");
  const auto shards = gwas::write_genotype_shards(data.genotypes, dir.str(), 9);

  // 2. Model-driven generation of the workflow artifacts.
  const Json model_json =
      gwas::make_paste_model(dir.str(), shards.size(), 3, "ACC42", "1:00", 2);
  const skel::Model model(model_json, gwas::paste_model_schema());
  const auto artifacts = gwas::make_paste_generator().generate(model);
  skel::Generator::write_all(artifacts, dir.file("generated"));
  EXPECT_TRUE(std::filesystem::exists(dir.file("generated/manifest.json")));

  // 3. Compose the campaign whose runs are the generated sub-pastes, pass
  //    it through the manifest interop layer, materialize the endpoint.
  const gwas::PastePlan plan = gwas::plan_two_phase_paste(shards.size(), 3);
  cheetah::AppSpec app;
  app.name = "subpaste";
  app.executable = "bash";
  app.args_template = "generated/jobs/subpaste_{{group}}.sh";
  cheetah::Campaign campaign("gwas-paste-campaign", app);
  cheetah::Sweep sweep("groups");
  sweep.add(cheetah::Parameter::int_range("group", cheetah::ParamLayer::Application,
                                          0, static_cast<int64_t>(plan.groups.size()) - 1));
  cheetah::SweepGroup group("phase1");
  group.add(std::move(sweep)).set_nodes(2).set_walltime_s(600);
  campaign.add_group(std::move(group));
  const Json manifest = cheetah::to_manifest(campaign);
  const cheetah::Campaign restored = cheetah::campaign_from_manifest(manifest);
  cheetah::CampaignEndpoint endpoint =
      cheetah::CampaignEndpoint::create(restored, dir.file("campaigns"));

  // 4. Execute (simulated) through the batch system with provenance.
  std::vector<sim::TaskSpec> tasks;
  for (const auto& run : restored.group("phase1").generate()) {
    sim::TaskSpec task;
    task.id = run.id;
    task.duration_s = 60 + 20 * static_cast<double>(tasks.size() % 3);
    tasks.push_back(std::move(task));
  }
  sim::MachineSpec machine = sim::institutional_cluster();
  machine.queue_wait_mean_s = 120;
  sim::Simulation sim;
  sim::BatchSystem batch(sim, machine, 5);
  savanna::CampaignRunOptions options;
  options.execution.nodes = 2;
  options.execution.walltime_s = 600;
  savanna::RunTracker tracker;
  const auto report =
      savanna::run_campaign_through_batch(sim, batch, tasks, options, &tracker);
  EXPECT_EQ(report.inner.remaining_runs, 0u);

  // 5. States flow back into the endpoint; status is queryable.
  for (const auto& task : tasks) endpoint.mark(task.id, cheetah::RunState::Done);
  endpoint.save();
  EXPECT_EQ(endpoint.status().done, tasks.size());
  const auto reopened =
      cheetah::CampaignEndpoint::open(dir.file("campaigns"), "gwas-paste-campaign");
  EXPECT_EQ(reopened.status().done, tasks.size());

  // 6. Provenance exports under the public policy without site details.
  const Json exported =
      savanna::export_provenance(tracker, savanna::public_release_policy());
  EXPECT_EQ(exported.size(), tasks.size());
  for (const auto& [_, record] : exported.as_object()) {
    for (const Json& event : record["events"].as_array()) {
      EXPECT_FALSE(event.contains("node"));
    }
  }

  // 7. The real data path still works: execute the plan, scan, find causal.
  const std::string merged = gwas::execute_paste_plan(
      plan, shards, dir.str(), dir.file("merged.tsv"), 2);
  CsvOptions tsv;
  tsv.separator = '\t';
  const auto hits =
      gwas::association_scan(read_csv_file(merged, tsv), data.phenotypes);
  std::set<size_t> top;
  for (size_t i = 0; i < 6; ++i) top.insert(hits[i].index);
  for (size_t causal : data.causal) EXPECT_TRUE(top.count(causal));
}

TEST(Integration, GaugeCatalogGatesFormatConversion) {
  // The DataSchema metadata decides whether conversion is automatable; the
  // gwas converters are the mechanism it dispatches to.
  core::MetadataCatalog catalog;
  catalog.put_schema(core::SchemaDescriptor{
      "annotation_bed", 1, "bed", {{"interval", "string"}}});
  catalog.put_schema(core::SchemaDescriptor{
      "annotation_gff3", 1, "gff3", {{"interval", "string"}}});
  ASSERT_TRUE(catalog.convertible("annotation_bed:v1", "annotation_gff3:v1"));

  const std::vector<gwas::AnnotationRecord> records = {
      {"chr7", 10, 90, "g", 1.0, '+'}};
  const std::string converted =
      gwas::convert_annotation(gwas::write_bed(records), "bed", "gff3");
  EXPECT_EQ(gwas::parse_gff3(converted), records);
}

TEST(Integration, StreamSchemaSharedAcrossCatalogCodegenAndWire) {
  // One schema object drives catalog registration, code generation, and
  // the actual wire format — no drift possible between the three.
  stream::StreamSchema schema;
  schema.name = "diagnostic";
  schema.version = 2;
  schema.fields = {{"step", "int"}, {"residual", "double"}};

  core::MetadataCatalog catalog;
  catalog.put_schema(schema.to_descriptor());
  EXPECT_TRUE(catalog.has_schema("diagnostic:v2"));

  const auto artifacts = stream::generate_comm_code(schema);
  EXPECT_FALSE(artifacts.empty());

  stream::Encoder encoder(schema);
  stream::Record record;
  record.values = {stream::Value{int64_t{3}}, stream::Value{1e-6}};
  encoder.append(record);
  const auto decoded = stream::decode_stream(encoder.bytes());
  EXPECT_EQ(stream::StreamSchema::from_descriptor(
                catalog.schema("diagnostic:v2")),
            decoded.schema);
}

TEST(Integration, AssessmentReflectsActualGeneratorCapabilities) {
  // The refactored GWAS component claims Customizability=Model; verify the
  // claim is backed by a generator that actually regenerates everything
  // from the model (account change touches no template).
  const core::Component skel_component = gwas::skel_paste_component();
  ASSERT_GE(skel_component.profile().tier(core::Gauge::SoftwareCustomizability),
            static_cast<uint8_t>(core::CustomizabilityTier::Model));
  // And the debt model agrees a machine move is automated.
  core::ReuseContext context;
  context.new_machine = true;
  const auto interventions = core::interventions_for(skel_component, context);
  for (const auto& intervention : interventions) {
    if (intervention.gauge == core::Gauge::SoftwareCustomizability) {
      EXPECT_FALSE(intervention.manual);
    }
  }
  // The generator's surface indeed exposes the machine settings.
  const auto surface = gwas::make_paste_generator().customization_surface();
  EXPECT_NE(std::find(surface.begin(), surface.end(), "machine.account"),
            surface.end());
  EXPECT_NE(std::find(surface.begin(), surface.end(), "machine.walltime"),
            surface.end());
}

TEST(Integration, IrfNetworkIntoResultCatalog) {
  // iRF-LOOP per-target fits recorded as campaign results: the codesign
  // catalog then answers "which target was hardest to model".
  irf::CensusConfig config;
  config.samples = 80;
  config.features = 6;
  const irf::CensusDataset census = irf::make_census_dataset(config, 3);
  irf::IrfLoopParams params;
  params.irf.iterations = 2;
  params.irf.forest.n_trees = 10;
  const irf::IrfLoopResult network = irf::run_irf_loop(census.data, params, 9);

  cheetah::ResultCatalog results;
  for (size_t target = 0; target < 6; ++target) {
    cheetah::RunSpec run;
    run.id = "fit-" + std::to_string(target);
    run.params["feature"] = Json(static_cast<int64_t>(target));
    results.record(run, {{"oob_r2", network.per_target_r2[target]}});
  }
  const auto hardest = results.best("oob_r2", cheetah::Objective::None);
  ASSERT_TRUE(hardest.has_value());
  // The minimizer of R² is the hardest target; check consistency.
  double lowest = 1e9;
  size_t lowest_target = 0;
  for (size_t target = 0; target < 6; ++target) {
    if (network.per_target_r2[target] < lowest) {
      lowest = network.per_target_r2[target];
      lowest_target = target;
    }
  }
  EXPECT_EQ(hardest->param("feature").as_int(),
            static_cast<int64_t>(lowest_target));
}

}  // namespace
}  // namespace ff
