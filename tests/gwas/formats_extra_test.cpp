// GTF2 and PSL converters plus the full 4-format conversion matrix the
// paper names in Section II-A (BED, GTF2, GFF3, PSL).

#include <gtest/gtest.h>

#include "gwas/formats.hpp"
#include "util/error.hpp"

namespace ff::gwas {
namespace {

std::vector<AnnotationRecord> sample_records() {
  // Strands restricted to +/- because PSL cannot express '.'.
  return {
      {"chr1", 100, 200, "geneA", 5.5, '+'},
      {"chr2", 0, 50, "geneB", 3.0, '-'},
  };
}

TEST(Gtf2, RoundTrip) {
  EXPECT_EQ(parse_gtf2(write_gtf2(sample_records())), sample_records());
}

TEST(Gtf2, AttributeSyntaxAndCoordinates) {
  const std::string text = write_gtf2({{"chrX", 9, 20, "g1", 0, '+'}});
  EXPECT_NE(text.find("\t10\t20\t"), std::string::npos);  // 1-based closed
  EXPECT_NE(text.find("gene_id \"g1\";"), std::string::npos);
}

TEST(Gtf2, ParsesQuotedAttributesAmongOthers) {
  const auto records = parse_gtf2(
      "chr1\tsrc\texon\t11\t20\t2.5\t-\t.\t"
      "transcript_id \"t1\"; gene_id \"myGene\"; exon_number \"1\";\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "myGene");
  EXPECT_EQ(records[0].start, 10);
}

TEST(Gtf2, RejectsMalformed) {
  EXPECT_THROW(parse_gtf2("chr1\tsrc\texon\t11\t20\n"), ParseError);
  EXPECT_THROW(parse_gtf2("chr1\tsrc\texon\t0\t20\t.\t+\t.\tgene_id \"g\";\n"),
               ParseError);
}

TEST(Psl, RoundTrip) {
  EXPECT_EQ(parse_psl(write_psl(sample_records())), sample_records());
}

TEST(Psl, SkipsHeaderBlock) {
  const std::string with_header =
      "psLayout version 3\n\nmatch\tmis- \trep. ...\n---------\n" +
      write_psl(sample_records());
  EXPECT_EQ(parse_psl(with_header), sample_records());
}

TEST(Psl, RejectsShortLines) {
  EXPECT_THROW(parse_psl("1\t2\t3\n"), ParseError);
}

TEST(Psl, TwentyOneColumns) {
  const std::string text = write_psl(sample_records());
  const std::string first_line = text.substr(0, text.find('\n'));
  size_t tabs = 0;
  for (char c : first_line) tabs += (c == '\t');
  EXPECT_EQ(tabs, 20u);  // 21 columns
}

class ConversionMatrix
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(ConversionMatrix, AnyToAnyPreservesRecords) {
  const auto [from, to] = GetParam();
  // Express the sample in `from`, convert to `to`, read back, compare.
  std::string source;
  if (std::string(from) == "bed") source = write_bed(sample_records());
  if (std::string(from) == "gff3") source = write_gff3(sample_records());
  if (std::string(from) == "gtf2") source = write_gtf2(sample_records());
  if (std::string(from) == "psl") source = write_psl(sample_records());
  const std::string converted = convert_annotation(source, from, to);
  std::vector<AnnotationRecord> back;
  if (std::string(to) == "bed") back = parse_bed(converted);
  if (std::string(to) == "gff3") back = parse_gff3(converted);
  if (std::string(to) == "gtf2") back = parse_gtf2(converted);
  if (std::string(to) == "psl") back = parse_psl(converted);
  // Scores survive except via GFF3/GTF2 '.'-less paths (all formats here
  // carry a numeric score, so full equality holds).
  EXPECT_EQ(back, sample_records()) << from << " -> " << to;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ConversionMatrix,
    ::testing::Values(std::pair{"bed", "gff3"}, std::pair{"bed", "gtf2"},
                      std::pair{"bed", "psl"}, std::pair{"gff3", "bed"},
                      std::pair{"gff3", "gtf2"}, std::pair{"gff3", "psl"},
                      std::pair{"gtf2", "bed"}, std::pair{"gtf2", "gff3"},
                      std::pair{"gtf2", "psl"}, std::pair{"psl", "bed"},
                      std::pair{"psl", "gff3"}, std::pair{"psl", "gtf2"}),
    [](const ::testing::TestParamInfo<std::pair<const char*, const char*>>& info) {
      return std::string(info.param.first) + "_to_" + info.param.second;
    });

}  // namespace
}  // namespace ff::gwas
