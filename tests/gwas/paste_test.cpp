#include "gwas/paste.hpp"

#include <gtest/gtest.h>

#include "gwas/genotype.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::gwas {
namespace {

Table table_with(const std::string& column, const std::vector<std::string>& values) {
  Table table({"sample", column});
  for (size_t i = 0; i < values.size(); ++i) {
    table.add_row({"S" + std::to_string(i), values[i]});
  }
  return table;
}

TEST(PasteTables, MergesOnKeyColumn) {
  const Table merged = paste_tables(
      {table_with("a", {"1", "2"}), table_with("b", {"3", "4"})});
  EXPECT_EQ(merged.cols(), 3u);
  EXPECT_EQ(merged.column_names(), (std::vector<std::string>{"sample", "a", "b"}));
  EXPECT_EQ(merged.cell(1, "b"), "4");
}

TEST(PasteTables, RejectsMismatchedKeys) {
  Table odd({"sample", "x"});
  odd.add_row({"DIFFERENT", "1"});
  odd.add_row({"S1", "2"});
  EXPECT_THROW(paste_tables({table_with("a", {"1", "2"}), odd}), ValidationError);
  EXPECT_THROW(paste_tables({}), ValidationError);
  Table keyless({"x"});
  keyless.add_row({"1"});
  EXPECT_THROW(paste_tables({keyless}), ValidationError);
}

TEST(PlanTwoPhase, SinglePhaseWhenFewFiles) {
  const PastePlan plan = plan_two_phase_paste(10, 16);
  EXPECT_EQ(plan.groups.size(), 1u);
  EXPECT_FALSE(plan.needs_final_merge);
  EXPECT_EQ(plan.subjobs(), 1u);
  EXPECT_EQ(plan.groups[0].size(), 10u);
}

TEST(PlanTwoPhase, TwoPhaseCoversAllFilesOnce) {
  const PastePlan plan = plan_two_phase_paste(100, 16);
  EXPECT_TRUE(plan.needs_final_merge);
  EXPECT_EQ(plan.groups.size(), 7u);  // ceil(100/16)
  std::vector<bool> seen(100, false);
  for (const auto& group : plan.groups) {
    EXPECT_LE(group.size(), 16u);
    for (size_t index : group) {
      EXPECT_FALSE(seen[index]);
      seen[index] = true;
    }
  }
  for (bool covered : seen) EXPECT_TRUE(covered);
  EXPECT_EQ(plan.subjobs(), 8u);
}

TEST(PlanTwoPhase, Validation) {
  EXPECT_THROW(plan_two_phase_paste(0, 4), ValidationError);
  EXPECT_THROW(plan_two_phase_paste(10, 1), ValidationError);
  // fan_in too small for two phases: 100 files with fan_in 5 => 20 groups > 5.
  EXPECT_THROW(plan_two_phase_paste(100, 5), ValidationError);
}

TEST(ExecutePastePlan, EndToEndOnRealFiles) {
  GwasConfig config;
  config.samples = 40;
  config.snps = 30;
  config.causal_snps = 2;
  const GwasData data = make_gwas_data(config, 1);
  TempDir dir;
  const auto shards = write_genotype_shards(data.genotypes, dir.str(), 12);

  const PastePlan plan = plan_two_phase_paste(shards.size(), 4);
  EXPECT_TRUE(plan.needs_final_merge);
  const std::string output = execute_paste_plan(plan, shards, dir.str(),
                                                dir.file("merged.tsv"), 2);
  CsvOptions tsv;
  tsv.separator = '\t';
  const Table merged = read_csv_file(output, tsv);
  EXPECT_EQ(merged.rows(), 40u);
  EXPECT_EQ(merged.cols(), 31u);
  // Every original column present with identical content.
  for (const std::string& column : data.genotypes.column_names()) {
    EXPECT_EQ(merged.column(column), data.genotypes.column(column)) << column;
  }
}

TEST(ExecutePastePlan, SinglePhasePath) {
  GwasConfig config;
  config.samples = 10;
  config.snps = 8;
  config.causal_snps = 1;
  const GwasData data = make_gwas_data(config, 2);
  TempDir dir;
  const auto shards = write_genotype_shards(data.genotypes, dir.str(), 3);
  const PastePlan plan = plan_two_phase_paste(shards.size(), 8);
  const std::string output =
      execute_paste_plan(plan, shards, dir.str(), dir.file("merged.tsv"));
  CsvOptions tsv;
  tsv.separator = '\t';
  EXPECT_EQ(read_csv_file(output, tsv).cols(), 9u);
}

TEST(ExecutePastePlan, BadPlanReferencesThrow) {
  PastePlan plan;
  plan.groups = {{0, 5}};
  TempDir dir;
  EXPECT_THROW(execute_paste_plan(plan, {"only_one.tsv"}, dir.str(),
                                  dir.file("out.tsv")),
               ValidationError);
}

TEST(CostModel, SuperlinearInFileCount) {
  const double one = paste_cost_model(1, 10, 1000);
  const double hundred = paste_cost_model(100, 10, 1000);
  EXPECT_GT(hundred, one * 100);  // superlinear file-handling term
  EXPECT_EQ(paste_cost_model(0, 10, 1000), 0.0);
}

TEST(CostModel, TwoPhaseBeatsSinglePasteAtScale) {
  // The reason the workflow exists: pasting 1000 files at once is worse
  // than two-phase even on one worker.
  const double single = paste_cost_model(1000, 50, 100000);
  const PastePlan plan = plan_two_phase_paste(1000, 40);
  const double two_phase = plan_cost_model(plan, 50, 100000, 1);
  EXPECT_LT(two_phase, single);
}

TEST(CostModel, ParallelWorkersReduceMakespan) {
  const PastePlan plan = plan_two_phase_paste(256, 16);
  const double serial = plan_cost_model(plan, 50, 100000, 1);
  const double parallel = plan_cost_model(plan, 50, 100000, 8);
  EXPECT_LT(parallel, serial);
}

}  // namespace
}  // namespace ff::gwas
