// Golden-text regression tests for the Skel-generated paste workflow: the
// exact artifact bytes for a fixed model. These guard against silent
// template drift — a generated submit script is an interface to the batch
// system, and byte changes there are semantic changes.

#include <gtest/gtest.h>

#include "gwas/workflow.hpp"

namespace ff::gwas {
namespace {

std::vector<skel::Artifact> golden_artifacts() {
  const Json model_json =
      make_paste_model("/gpfs/proj/shards", 7, 3, "BIF101", "1:30", 2);
  const skel::Model model(model_json, paste_model_schema());
  return make_paste_generator().generate(model);
}

const skel::Artifact& find(const std::vector<skel::Artifact>& artifacts,
                           const std::string& path) {
  for (const auto& artifact : artifacts) {
    if (artifact.path == path) return artifact;
  }
  throw std::runtime_error("missing artifact " + path);
}

TEST(GoldenArtifacts, SubpasteScriptExactText) {
  const auto artifacts = golden_artifacts();
  EXPECT_EQ(find(artifacts, "jobs/subpaste_0.sh").content,
            "#!/bin/bash\n"
            "#BSUB -P BIF101\n"
            "#BSUB -W 1:30\n"
            "#BSUB -nnodes 2\n"
            "# sub-paste group 0: 3 shards\n"
            "paste_tool --key sample \\\n"
            "  /gpfs/proj/shards/shard_0000.tsv \\\n"
            "  /gpfs/proj/shards/shard_0001.tsv \\\n"
            "  /gpfs/proj/shards/shard_0002.tsv \\\n"
            "  --output scratch/subpaste_0.tsv\n");
}

TEST(GoldenArtifacts, LastGroupHoldsRemainder) {
  const auto artifacts = golden_artifacts();
  EXPECT_EQ(find(artifacts, "jobs/subpaste_2.sh").content,
            "#!/bin/bash\n"
            "#BSUB -P BIF101\n"
            "#BSUB -W 1:30\n"
            "#BSUB -nnodes 2\n"
            "# sub-paste group 2: 1 shards\n"
            "paste_tool --key sample \\\n"
            "  /gpfs/proj/shards/shard_0006.tsv \\\n"
            "  --output scratch/subpaste_2.tsv\n");
}

TEST(GoldenArtifacts, StatusScriptExactText) {
  const auto artifacts = golden_artifacts();
  EXPECT_EQ(find(artifacts, "status.sh").content,
            "#!/bin/bash\n"
            "# query progress of the paste campaign\n"
            "ls scratch/subpaste_*.tsv 2>/dev/null | wc -l\n");
}

TEST(GoldenArtifacts, ArtifactSetIsStable) {
  const auto artifacts = golden_artifacts();
  std::vector<std::string> paths;
  for (const auto& artifact : artifacts) paths.push_back(artifact.path);
  EXPECT_EQ(paths, (std::vector<std::string>{
                       "jobs/subpaste_0.sh", "jobs/subpaste_1.sh",
                       "jobs/subpaste_2.sh", "jobs/final_merge.sh",
                       "campaign.json", "status.sh", "manifest.json"}));
}

TEST(GoldenArtifacts, GenerationIsIdempotent) {
  const auto a = golden_artifacts();
  const auto b = golden_artifacts();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].content, b[i].content) << a[i].path;
  }
}

}  // namespace
}  // namespace ff::gwas
