#include "gwas/genotype.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::gwas {
namespace {

GwasConfig small_config() {
  GwasConfig config;
  config.samples = 100;
  config.snps = 60;
  config.causal_snps = 3;
  config.effect_size = 1.2;
  config.noise = 0.5;
  return config;
}

TEST(MakeGwasData, ShapesAndValues) {
  const GwasData data = make_gwas_data(small_config(), 1);
  EXPECT_EQ(data.genotypes.rows(), 100u);
  EXPECT_EQ(data.genotypes.cols(), 61u);  // sample + 60 SNPs
  EXPECT_EQ(data.phenotypes.rows(), 100u);
  EXPECT_EQ(data.causal.size(), 3u);
  // Dosages are 0/1/2.
  for (size_t row = 0; row < 20; ++row) {
    for (size_t col = 1; col < data.genotypes.cols(); ++col) {
      const std::string& cell = data.genotypes.cell(row, col);
      EXPECT_TRUE(cell == "0" || cell == "1" || cell == "2") << cell;
    }
  }
  // Sample keys align between tables.
  EXPECT_EQ(data.genotypes.column("sample"), data.phenotypes.column("sample"));
}

TEST(MakeGwasData, DeterministicAndSeedSensitive) {
  const GwasData a = make_gwas_data(small_config(), 7);
  const GwasData b = make_gwas_data(small_config(), 7);
  const GwasData c = make_gwas_data(small_config(), 8);
  EXPECT_EQ(a.genotypes, b.genotypes);
  EXPECT_EQ(a.causal, b.causal);
  EXPECT_NE(a.genotypes, c.genotypes);
}

TEST(MakeGwasData, Validation) {
  GwasConfig bad = small_config();
  bad.causal_snps = 1000;
  EXPECT_THROW(make_gwas_data(bad, 1), ValidationError);
  bad = small_config();
  bad.samples = 1;
  EXPECT_THROW(make_gwas_data(bad, 1), ValidationError);
}

TEST(Shards, CoverAllSnpColumnsExactlyOnce) {
  const GwasData data = make_gwas_data(small_config(), 2);
  TempDir dir;
  const auto paths = write_genotype_shards(data.genotypes, dir.str(), 7);
  ASSERT_EQ(paths.size(), 7u);
  CsvOptions tsv;
  tsv.separator = '\t';
  std::set<std::string> seen;
  for (const std::string& path : paths) {
    const Table shard = read_csv_file(path, tsv);
    EXPECT_EQ(shard.rows(), 100u);
    EXPECT_EQ(shard.column_names()[0], "sample");
    for (size_t col = 1; col < shard.cols(); ++col) {
      EXPECT_TRUE(seen.insert(shard.column_names()[col]).second);
    }
  }
  EXPECT_EQ(seen.size(), 60u);
}

TEST(Shards, Validation) {
  const GwasData data = make_gwas_data(small_config(), 3);
  TempDir dir;
  EXPECT_THROW(write_genotype_shards(data.genotypes, dir.str(), 0), ValidationError);
  EXPECT_THROW(write_genotype_shards(data.genotypes, dir.str(), 61), ValidationError);
}

TEST(AssociationScan, CausalSnpsRankTop) {
  const GwasData data = make_gwas_data(small_config(), 4);
  const auto associations = association_scan(data.genotypes, data.phenotypes);
  ASSERT_EQ(associations.size(), 60u);
  // Sorted by descending r².
  for (size_t i = 1; i < associations.size(); ++i) {
    EXPECT_GE(associations[i - 1].r2, associations[i].r2);
  }
  // All causal SNPs within the top 10 hits for this effect size.
  std::set<size_t> top;
  for (size_t i = 0; i < 10; ++i) top.insert(associations[i].index);
  for (size_t causal : data.causal) EXPECT_TRUE(top.count(causal)) << causal;
  // Effect direction is positive (causal alleles increase the trait).
  EXPECT_GT(associations[0].slope, 0);
}

TEST(AssociationScan, MismatchedSamplesThrow) {
  const GwasData data = make_gwas_data(small_config(), 5);
  const Table truncated = data.phenotypes.slice_rows(0, 50);
  EXPECT_THROW(association_scan(data.genotypes, truncated), ValidationError);
}

}  // namespace
}  // namespace ff::gwas
