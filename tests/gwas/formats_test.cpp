#include "gwas/formats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::gwas {
namespace {

std::vector<AnnotationRecord> sample_records() {
  return {
      {"chr1", 100, 200, "geneA", 5.5, '+'},
      {"chr2", 0, 50, "geneB", 0.0, '-'},
      {"chrX", 999, 1000, "geneC", 12.0, '.'},
  };
}

TEST(Bed, RoundTrip) {
  const auto records = sample_records();
  EXPECT_EQ(parse_bed(write_bed(records)), records);
}

TEST(Bed, ParsesTypicalContent) {
  const auto records =
      parse_bed("# comment line\nchr1\t10\t20\tfeat\t3.5\t+\n\nchr2\t0\t5\tf2\t.\t-\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].chrom, "chr1");
  EXPECT_EQ(records[0].start, 10);
  EXPECT_EQ(records[1].score, 0.0);  // '.' score
}

TEST(Bed, RejectsMalformedLines) {
  EXPECT_THROW(parse_bed("chr1\t10\t20\n"), ParseError);           // too few fields
  EXPECT_THROW(parse_bed("chr1\tten\t20\tf\t1\t+\n"), ParseError); // non-numeric
  EXPECT_THROW(parse_bed("chr1\t30\t20\tf\t1\t+\n"), ParseError);  // end < start
  EXPECT_THROW(parse_bed("chr1\t10\t20\tf\t1\t?\n"), ParseError);  // bad strand
}

TEST(Gff3, RoundTrip) {
  const auto records = sample_records();
  EXPECT_EQ(parse_gff3(write_gff3(records)), records);
}

TEST(Gff3, CoordinateConventionIsOneBasedClosed) {
  // Internal record [100, 200) must appear as 101..200 in GFF3 text.
  const std::string text = write_gff3({{"chr1", 100, 200, "g", 0, '+'}});
  EXPECT_NE(text.find("\t101\t200\t"), std::string::npos);
  EXPECT_NE(text.find("##gff-version 3"), std::string::npos);
  EXPECT_NE(text.find("ID=g"), std::string::npos);
}

TEST(Gff3, ParsesAttributesForName) {
  const auto records = parse_gff3(
      "##gff-version 3\n"
      "chr1\tsrc\tgene\t11\t20\t2.5\t+\t.\tNote=x; ID=myGene ;Other=y\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "myGene");
  EXPECT_EQ(records[0].start, 10);  // converted to 0-based
  EXPECT_EQ(records[0].end, 20);
}

TEST(Gff3, RejectsMalformed) {
  EXPECT_THROW(parse_gff3("chr1\tsrc\tgene\t11\t20\n"), ParseError);
  EXPECT_THROW(parse_gff3("chr1\tsrc\tgene\t0\t20\t.\t+\t.\tID=x\n"), ParseError);
}

TEST(Convert, BedToGff3AndBack) {
  const std::string bed = write_bed(sample_records());
  const std::string gff3 = convert_annotation(bed, "bed", "gff3");
  const std::string back = convert_annotation(gff3, "gff3", "bed");
  EXPECT_EQ(parse_bed(back), sample_records());
}

TEST(Convert, IdentityConversions) {
  const std::string bed = write_bed(sample_records());
  EXPECT_EQ(convert_annotation(bed, "bed", "bed"), bed);
}

TEST(Convert, UnknownFormatsThrow) {
  EXPECT_THROW(convert_annotation("", "sam", "bed"), ValidationError);
  EXPECT_THROW(convert_annotation("", "bed", "gtf9"), ValidationError);
}

}  // namespace
}  // namespace ff::gwas
