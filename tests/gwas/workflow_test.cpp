#include "gwas/workflow.hpp"

#include <gtest/gtest.h>

#include "core/assessment.hpp"

namespace ff::gwas {
namespace {

TEST(PasteModel, SchemaValidatesGeneratedModel) {
  const Json model = make_paste_model("/data/shards", 100, 16, "BIF101", "2:00", 4);
  EXPECT_TRUE(paste_model_schema().validate(model).empty());
  EXPECT_EQ(model.at_path("strategy.fan_in").as_int(), 16);
  EXPECT_EQ(model["groups"].size(), 7u);  // ceil(100/16)
  EXPECT_EQ(model["groups"][size_t{0}]["files"].size(), 16u);
}

TEST(PasteModel, SchemaCatchesMissingFields) {
  Json broken = make_paste_model("/d", 10, 4, "A", "1:00", 1);
  broken.as_object().erase("dataset");
  EXPECT_FALSE(paste_model_schema().validate(broken).empty());
}

TEST(PasteGenerator, EmitsSubjobPerGroupPlusSupportFiles) {
  const Json model_json = make_paste_model("/gpfs/proj/shards", 50, 10, "BIF101",
                                           "1:30", 2);
  const skel::Model model(model_json, paste_model_schema());
  const auto artifacts = make_paste_generator().generate(model);
  // 5 subjobs + final merge + campaign.json + status.sh + manifest.json
  EXPECT_EQ(artifacts.size(), 9u);
  EXPECT_EQ(artifacts[0].path, "jobs/subpaste_0.sh");
  EXPECT_TRUE(artifacts[0].executable);
  EXPECT_NE(artifacts[0].content.find("#BSUB -P BIF101"), std::string::npos);
  EXPECT_NE(artifacts[0].content.find("/gpfs/proj/shards/shard_0000.tsv"),
            std::string::npos);
  EXPECT_NE(artifacts[0].content.find("#BSUB -W 1:30"), std::string::npos);
}

TEST(PasteGenerator, NewConfigurationIsOneModelEdit) {
  // The Fig. 2 claim: a new machine/dataset touches the model only; the
  // regenerated artifacts pick it up everywhere.
  Json model_json = make_paste_model("/gpfs/a", 50, 10, "OLD_ACCT", "1:00", 2);
  model_json["machine"]["account"] = "NEW_ACCT";
  const skel::Model model(model_json, paste_model_schema());
  const auto artifacts = make_paste_generator().generate(model);
  size_t scripts_with_account = 0;
  for (const auto& artifact : artifacts) {
    if (artifact.content.find("NEW_ACCT") != std::string::npos) {
      ++scripts_with_account;
    }
    EXPECT_EQ(artifact.content.find("OLD_ACCT"), std::string::npos);
  }
  EXPECT_GE(scripts_with_account, 6u);  // every job script
}

TEST(Interventions, ManualGrowsWithPlanSkelDoesNot) {
  const PastePlan small = plan_two_phase_paste(32, 16);
  const PastePlan large = plan_two_phase_paste(512, 32);
  const InterventionCount manual_small = manual_interventions(small);
  const InterventionCount manual_large = manual_interventions(large);
  const InterventionCount skel_small = skel_interventions(small);
  const InterventionCount skel_large = skel_interventions(large);
  EXPECT_GT(manual_large.total(), manual_small.total());
  EXPECT_EQ(skel_small.total(), skel_large.total());
  EXPECT_EQ(skel_small.total(), 3u);
  EXPECT_GT(manual_large.total(), 10 * skel_large.total());
}

TEST(Components, SkelComponentDominatesManual) {
  const core::Component manual = manual_paste_component();
  const core::Component skel = skel_paste_component();
  EXPECT_TRUE(skel.profile().dominates(manual.profile()));
  EXPECT_GT(skel.exposed_config_count(), manual.exposed_config_count());
  // Refactored component reaches the Model tier of customizability.
  EXPECT_GE(skel.profile().tier(core::Gauge::SoftwareCustomizability), 3);
}

TEST(Workflows, RefactoredReducesAssessedDebt) {
  core::ReuseContext machine;
  machine.new_machine = true;
  core::ReuseContext dataset;
  dataset.new_dataset = true;
  dataset.new_data_format = true;
  const std::vector<core::ReuseContext> contexts = {machine, dataset};
  const auto legacy = core::assess(legacy_gwas_workflow(), contexts);
  const auto refactored = core::assess(refactored_gwas_workflow(), contexts);
  EXPECT_LT(refactored.total_debt.manual_minutes, legacy.total_debt.manual_minutes);
  EXPECT_GT(refactored.total_debt.automated_count, legacy.total_debt.automated_count);
}

TEST(Workflows, GraphsAreWellFormedPipelines) {
  const core::WorkflowGraph legacy = legacy_gwas_workflow();
  EXPECT_EQ(legacy.component_count(), 3u);
  EXPECT_FALSE(legacy.has_cycle());
  EXPECT_EQ(legacy.sources().size(), 1u);
  EXPECT_EQ(legacy.sinks().size(), 1u);
  const core::WorkflowGraph refactored = refactored_gwas_workflow();
  EXPECT_EQ(refactored.topological_order().size(), 3u);
}

}  // namespace
}  // namespace ff::gwas
