// Parameterized properties of the two-phase paste planner: for every legal
// (files, fan_in) pair, the plan must partition the inputs exactly, respect
// the fan-in on both phases, and its modeled cost must beat (or match) the
// single-paste cost whenever two phases are used.

#include <gtest/gtest.h>

#include <set>

#include "gwas/paste.hpp"
#include "util/error.hpp"

namespace ff::gwas {
namespace {

struct PlanCase {
  size_t files;
  size_t fan_in;
};

class PastePlanSweep : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PastePlanSweep, PartitionsInputsExactly) {
  const auto [files, fan_in] = GetParam();
  const PastePlan plan = plan_two_phase_paste(files, fan_in);
  std::set<size_t> seen;
  for (const auto& group : plan.groups) {
    EXPECT_FALSE(group.empty());
    EXPECT_LE(group.size(), fan_in);
    for (size_t index : group) {
      EXPECT_LT(index, files);
      EXPECT_TRUE(seen.insert(index).second) << "duplicate input " << index;
    }
  }
  EXPECT_EQ(seen.size(), files);
}

TEST_P(PastePlanSweep, PhaseTwoRespectsFanIn) {
  const auto [files, fan_in] = GetParam();
  const PastePlan plan = plan_two_phase_paste(files, fan_in);
  if (plan.needs_final_merge) {
    EXPECT_LE(plan.groups.size(), fan_in);
    EXPECT_GT(plan.groups.size(), 1u);
  } else {
    EXPECT_EQ(plan.groups.size(), 1u);
    EXPECT_LE(files, fan_in);
  }
}

TEST_P(PastePlanSweep, ModeledCostNotWorseThanSinglePaste) {
  const auto [files, fan_in] = GetParam();
  const PastePlan plan = plan_two_phase_paste(files, fan_in);
  const double single = paste_cost_model(files, 20, 10000);
  const double planned = plan_cost_model(plan, 20, 10000, 1);
  if (plan.needs_final_merge) {
    // At scale the two-phase plan is the whole point; near the crossover
    // (files barely above fan_in) a small constant overhead is acceptable.
    EXPECT_LE(planned, single * 1.5);
    if (files >= 100) {
      EXPECT_LT(planned, single);
    }
  } else {
    EXPECT_NEAR(planned, single, single * 0.01);
  }
}

TEST_P(PastePlanSweep, MoreWorkersNeverSlower) {
  const auto [files, fan_in] = GetParam();
  const PastePlan plan = plan_two_phase_paste(files, fan_in);
  double previous = plan_cost_model(plan, 20, 10000, 1);
  for (size_t workers : {2u, 4u, 8u, 32u}) {
    const double cost = plan_cost_model(plan, 20, 10000, workers);
    EXPECT_LE(cost, previous + 1e-9) << workers;
    previous = cost;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PastePlanSweep,
    ::testing::Values(PlanCase{1, 2}, PlanCase{2, 2}, PlanCase{4, 2},
                      PlanCase{10, 16}, PlanCase{16, 16}, PlanCase{17, 16},
                      PlanCase{100, 16}, PlanCase{255, 16}, PlanCase{256, 16},
                      PlanCase{1000, 40}, PlanCase{1606, 48},
                      PlanCase{2500, 50}),
    [](const ::testing::TestParamInfo<PlanCase>& info) {
      return "f" + std::to_string(info.param.files) + "_k" +
             std::to_string(info.param.fan_in);
    });

}  // namespace
}  // namespace ff::gwas
