#include "core/gauge.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::core {
namespace {

TEST(Gauge, SixGaugesThreeDataThreeSoftware) {
  EXPECT_EQ(kAllGauges.size(), 6u);
  int data = 0;
  for (Gauge gauge : kAllGauges) {
    if (is_data_gauge(gauge)) ++data;
  }
  EXPECT_EQ(data, 3);
}

TEST(Gauge, EveryLadderHasFiveTiersStartingUnknown) {
  for (Gauge gauge : kAllGauges) {
    EXPECT_EQ(tier_count(gauge), 5u) << gauge_name(gauge);
    EXPECT_EQ(tier_name(gauge, 0), "Unknown") << gauge_name(gauge);
  }
}

TEST(Gauge, TierNamesMatchPaperLadders) {
  EXPECT_EQ(tier_name(Gauge::DataAccess, 1), "Protocol");
  EXPECT_EQ(tier_name(Gauge::DataAccess, 2), "Interface");
  EXPECT_EQ(tier_name(Gauge::DataSchema, 2), "Format");
  EXPECT_EQ(tier_name(Gauge::DataSchema, 4), "SelfDescribing");
  EXPECT_EQ(tier_name(Gauge::DataSemantics, 2), "DataFusion");
  EXPECT_EQ(tier_name(Gauge::DataSemantics, 3), "FormatEvolution");
  EXPECT_EQ(tier_name(Gauge::SoftwareGranularity, 1), "BlackBox");
  EXPECT_EQ(tier_name(Gauge::SoftwareGranularity, 3), "IoSemantics");
  EXPECT_EQ(tier_name(Gauge::SoftwareCustomizability, 3), "Model");
  EXPECT_EQ(tier_name(Gauge::SoftwareProvenance, 3), "CampaignKnowledge");
  EXPECT_EQ(tier_name(Gauge::SoftwareProvenance, 4), "Exportable");
}

TEST(Gauge, TierOutOfRangeThrows) {
  EXPECT_THROW(tier_name(Gauge::DataAccess, 5), NotFoundError);
  EXPECT_THROW(tier_description(Gauge::DataSchema, 99), NotFoundError);
}

TEST(Gauge, TierFromNameIsCaseInsensitiveInverse) {
  for (Gauge gauge : kAllGauges) {
    for (uint8_t tier = 0; tier < tier_count(gauge); ++tier) {
      const std::string name{tier_name(gauge, tier)};
      EXPECT_EQ(tier_from_name(gauge, name), tier);
      std::string lower;
      for (char c : name) lower += static_cast<char>(std::tolower(c));
      EXPECT_EQ(tier_from_name(gauge, lower), tier);
    }
  }
  EXPECT_THROW(tier_from_name(Gauge::DataAccess, "NoSuchTier"), NotFoundError);
}

TEST(Gauge, GaugeFromKeyAcceptsKeysAndNames) {
  EXPECT_EQ(gauge_from_key("access"), Gauge::DataAccess);
  EXPECT_EQ(gauge_from_key("schema"), Gauge::DataSchema);
  EXPECT_EQ(gauge_from_key("semantics"), Gauge::DataSemantics);
  EXPECT_EQ(gauge_from_key("granularity"), Gauge::SoftwareGranularity);
  EXPECT_EQ(gauge_from_key("customizability"), Gauge::SoftwareCustomizability);
  EXPECT_EQ(gauge_from_key("provenance"), Gauge::SoftwareProvenance);
  EXPECT_EQ(gauge_from_key("Data Access"), Gauge::DataAccess);
  EXPECT_THROW(gauge_from_key("velocity"), NotFoundError);
}

TEST(Gauge, DescriptionsAreNonEmpty) {
  for (Gauge gauge : kAllGauges) {
    for (uint8_t tier = 0; tier < tier_count(gauge); ++tier) {
      EXPECT_FALSE(tier_description(gauge, tier).empty());
    }
  }
}

}  // namespace
}  // namespace ff::core
