#include "core/gauge_profile.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::core {
namespace {

TEST(GaugeProfile, DefaultIsAllUnknown) {
  const GaugeProfile profile;
  for (Gauge gauge : kAllGauges) EXPECT_EQ(profile.tier(gauge), 0);
  EXPECT_EQ(profile.min_tier(), 0);
  EXPECT_EQ(profile.total_progress(), 0);
}

TEST(GaugeProfile, SetAndRaise) {
  GaugeProfile profile;
  profile.set_tier(Gauge::DataSchema, 3);
  EXPECT_EQ(profile.tier(Gauge::DataSchema), 3);
  profile.raise_to(Gauge::DataSchema, 2);  // no-op, already above
  EXPECT_EQ(profile.tier(Gauge::DataSchema), 3);
  profile.raise_to(Gauge::DataSchema, 4);
  EXPECT_EQ(profile.tier(Gauge::DataSchema), 4);
  EXPECT_THROW(profile.set_tier(Gauge::DataSchema, 5), ValidationError);
}

TEST(GaugeProfile, DominatesIsElementWise) {
  const GaugeProfile high = make_profile(2, 2, 2, 2, 2, 2);
  const GaugeProfile low = make_profile(1, 1, 1, 1, 1, 1);
  GaugeProfile mixed = make_profile(3, 0, 2, 2, 2, 2);
  EXPECT_TRUE(high.dominates(low));
  EXPECT_FALSE(low.dominates(high));
  EXPECT_TRUE(high.dominates(high));
  EXPECT_FALSE(mixed.dominates(low));  // schema 0 < 1
  EXPECT_FALSE(low.dominates(mixed));  // access 1 < 3
}

TEST(GaugeProfile, MeetsTreatsUnknownAsUnconstrained) {
  GaugeProfile required;
  required.set_tier(Gauge::DataSchema, 2);  // only schema constrained
  const GaugeProfile candidate = make_profile(0, 2, 0, 0, 0, 0);
  EXPECT_TRUE(candidate.meets(required));
  const GaugeProfile weak = make_profile(4, 1, 4, 4, 4, 4);
  EXPECT_FALSE(weak.meets(required));
}

TEST(GaugeProfile, MinTiersByFamily) {
  const GaugeProfile profile = make_profile(3, 2, 4, 1, 2, 0);
  EXPECT_EQ(profile.min_data_tier(), 2);
  EXPECT_EQ(profile.min_software_tier(), 0);
  EXPECT_EQ(profile.min_tier(), 0);
  EXPECT_EQ(profile.total_progress(), 12);
}

TEST(GaugeProfile, JsonRoundTripWithEvidence) {
  GaugeProfile profile = make_profile(1, 2, 3, 4, 0, 2);
  profile.set_evidence(Gauge::DataSchema, "columns documented in README");
  const GaugeProfile reparsed = GaugeProfile::from_json(profile.to_json());
  EXPECT_EQ(reparsed, profile);
  EXPECT_EQ(reparsed.evidence(Gauge::DataSchema), "columns documented in README");
}

TEST(GaugeProfile, FromJsonAcceptsShorthands) {
  // Integers and tier names are both accepted per gauge.
  const Json doc = Json::parse(
      R"({"access": 2, "schema": "Format", "granularity": {"tier": 1}})");
  const GaugeProfile profile = GaugeProfile::from_json(doc);
  EXPECT_EQ(profile.tier(Gauge::DataAccess), 2);
  EXPECT_EQ(profile.tier(Gauge::DataSchema), 2);
  EXPECT_EQ(profile.tier(Gauge::SoftwareGranularity), 1);
  EXPECT_EQ(profile.tier(Gauge::DataSemantics), 0);  // absent stays Unknown
}

TEST(GaugeProfile, SelfProfileReachesExportableProvenance) {
  // Dog-fooding: the repo's own profile. The trace layer (src/obs/) is what
  // lifts Provenance to the top of its ladder, and every gauge carries
  // evidence naming the artifact that justifies its tier.
  const GaugeProfile self = fairflow_self_profile();
  EXPECT_EQ(self.tier(Gauge::SoftwareProvenance),
            static_cast<uint8_t>(ProvenanceTier::Exportable));
  EXPECT_NE(self.evidence(Gauge::SoftwareProvenance).find("trace"),
            std::string::npos);
  for (Gauge gauge : kAllGauges) {
    EXPECT_GE(self.tier(gauge), 2) << gauge_name(gauge);
    EXPECT_FALSE(self.evidence(gauge).empty()) << gauge_name(gauge);
  }
  // Round-trips through JSON like any other profile.
  EXPECT_EQ(GaugeProfile::from_json(self.to_json()), self);
}

TEST(GaugeProfile, RenderMentionsEveryGauge) {
  const std::string text = make_profile(1, 1, 1, 1, 1, 1).render();
  for (Gauge gauge : kAllGauges) {
    EXPECT_NE(text.find(std::string(gauge_name(gauge))), std::string::npos);
  }
}

}  // namespace
}  // namespace ff::core
