#include "core/assessment.hpp"

#include <gtest/gtest.h>

namespace ff::core {
namespace {

WorkflowGraph legacy_gwas_workflow() {
  // Mirrors Section V-A before refactoring: everything hand-run, hard-coded.
  WorkflowGraph graph("gwas-legacy");
  Component paste("paste", ComponentKind::Executable);
  paste.profile() = make_profile(1, 1, 0, 1, 1, 1);
  paste.add_config(ConfigVariable{"walltime", "string", Json("2:00"), false, ""});
  paste.add_config(ConfigVariable{"account", "string", Json("BIF101"), false, ""});
  graph.add_component(std::move(paste));
  Component assoc("assoc", ComponentKind::Executable);
  assoc.profile() = make_profile(1, 2, 0, 1, 1, 1);
  graph.add_component(std::move(assoc));
  return graph;
}

std::vector<ReuseContext> typical_contexts() {
  ReuseContext machine;
  machine.new_machine = true;
  ReuseContext dataset;
  dataset.new_dataset = true;
  dataset.new_data_format = true;
  return {machine, dataset};
}

TEST(Assessment, ReportsDebtAndRecommendations) {
  const AssessmentReport report =
      assess(legacy_gwas_workflow(), typical_contexts());
  EXPECT_EQ(report.workflow_name, "gwas-legacy");
  EXPECT_GT(report.total_debt.manual_count, 0u);
  EXPECT_GT(report.total_debt.manual_minutes, 0.0);
  ASSERT_FALSE(report.recommendations.empty());
  // Recommendations sorted by savings, descending.
  for (size_t i = 1; i < report.recommendations.size(); ++i) {
    EXPECT_GE(report.recommendations[i - 1].manual_minutes_saved,
              report.recommendations[i].manual_minutes_saved);
  }
  // Each recommendation is exactly one tier up.
  for (const auto& recommendation : report.recommendations) {
    EXPECT_EQ(recommendation.recommended_tier, recommendation.current_tier + 1);
    EXPECT_GT(recommendation.manual_minutes_saved, 0.0);
    EXPECT_FALSE(recommendation.rationale.empty());
  }
}

TEST(Assessment, AggregateIsWeakestLink) {
  const AssessmentReport report =
      assess(legacy_gwas_workflow(), typical_contexts());
  EXPECT_EQ(report.aggregate.tier(Gauge::DataSemantics), 0);
  EXPECT_EQ(report.aggregate.tier(Gauge::DataSchema), 1);
}

TEST(Assessment, FullyUpgradedWorkflowHasNoManualDebt) {
  WorkflowGraph graph("modern");
  Component component("model-driven", ComponentKind::Executable);
  component.profile() = make_profile(4, 4, 4, 4, 4, 4);
  graph.add_component(std::move(component));
  const AssessmentReport report = assess(graph, typical_contexts());
  EXPECT_EQ(report.total_debt.manual_count, 0u);
  EXPECT_TRUE(report.recommendations.empty());
  EXPECT_GT(report.total_debt.automated_count, 0u);
}

TEST(Assessment, NoContextsMeansNoDebt) {
  const AssessmentReport report = assess(legacy_gwas_workflow(), {});
  EXPECT_EQ(report.total_debt.manual_count, 0u);
  EXPECT_TRUE(report.recommendations.empty());
}

TEST(Assessment, RenderIncludesKeySections) {
  const std::string text =
      assess(legacy_gwas_workflow(), typical_contexts()).render();
  EXPECT_NE(text.find("Assessment of workflow 'gwas-legacy'"), std::string::npos);
  EXPECT_NE(text.find("Technical debt"), std::string::npos);
  EXPECT_NE(text.find("Upgrade plan"), std::string::npos);
}

TEST(Assessment, JsonExportCarriesWholeReport) {
  const AssessmentReport report =
      assess(legacy_gwas_workflow(), typical_contexts());
  const Json json = report.to_json();
  EXPECT_EQ(json["workflow"].as_string(), "gwas-legacy");
  EXPECT_EQ(json["debt"]["manual_steps"].as_int(),
            static_cast<int64_t>(report.total_debt.manual_count));
  EXPECT_DOUBLE_EQ(json["debt"]["manual_minutes"].as_double(),
                   report.total_debt.manual_minutes);
  ASSERT_EQ(json["upgrade_plan"].size(), report.recommendations.size());
  const Json& top = json["upgrade_plan"][size_t{0}];
  EXPECT_EQ(top["component"].as_string(),
            report.recommendations[0].component_id);
  EXPECT_EQ(top["to_tier"].as_int(), top["from_tier"].as_int() + 1);
  // Aggregate profile round-trips through its own serialization.
  EXPECT_EQ(GaugeProfile::from_json(json["aggregate"]), report.aggregate);
  // The whole document survives dump/parse.
  EXPECT_EQ(Json::parse(json.dump()), json);
}

TEST(Assessment, RecommendationActuallyReducesDebtWhenApplied) {
  // Apply the top recommendation and re-assess: total manual minutes must
  // drop by at least the promised savings for that component.
  WorkflowGraph graph = legacy_gwas_workflow();
  const auto contexts = typical_contexts();
  const AssessmentReport before = assess(graph, contexts);
  ASSERT_FALSE(before.recommendations.empty());
  const Recommendation& top = before.recommendations.front();
  graph.component(top.component_id)
      .profile()
      .set_tier(top.gauge, top.recommended_tier);
  const AssessmentReport after = assess(graph, contexts);
  EXPECT_NEAR(before.total_debt.manual_minutes - after.total_debt.manual_minutes,
              top.manual_minutes_saved, 1e-9);
}

}  // namespace
}  // namespace ff::core
