#include "core/component.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::core {
namespace {

Component sample_component() {
  Component component("paste-step", ComponentKind::Executable);
  component.set_description("column-wise paste of genotype shards");
  component.add_port(Port{"shards", PortDirection::Input, "csv:genotype:v1",
                          "posix-file", ConsumptionSemantics::WholeDataset});
  component.add_port(Port{"merged", PortDirection::Output, "csv:genotype:v1",
                          "posix-file", ConsumptionSemantics::Unknown});
  component.add_config(ConfigVariable{"fan_in", "int", Json(16), true,
                                      "files merged per sub-paste"});
  component.add_config(ConfigVariable{"scratch_dir", "path", Json("/tmp"), false, ""});
  return component;
}

TEST(ComponentKind, NameRoundTrip) {
  for (ComponentKind kind : {ComponentKind::CodeFragment, ComponentKind::Executable,
                             ComponentKind::BundledWorkflow,
                             ComponentKind::InternalService}) {
    EXPECT_EQ(component_kind_from_name(component_kind_name(kind)), kind);
  }
  EXPECT_THROW(component_kind_from_name("mystery"), NotFoundError);
}

TEST(ConsumptionSemantics, NameRoundTrip) {
  for (ConsumptionSemantics semantics :
       {ConsumptionSemantics::Unknown, ConsumptionSemantics::ElementWise,
        ConsumptionSemantics::Windowed, ConsumptionSemantics::WholeDataset,
        ConsumptionSemantics::FirstPrecious}) {
    EXPECT_EQ(consumption_from_name(consumption_name(semantics)), semantics);
  }
  EXPECT_THROW(consumption_from_name("psychic"), NotFoundError);
}

TEST(Component, PortLookup) {
  const Component component = sample_component();
  EXPECT_TRUE(component.has_port("shards"));
  EXPECT_EQ(component.port("merged").direction, PortDirection::Output);
  EXPECT_THROW(component.port("nope"), NotFoundError);
  EXPECT_EQ(component.input_ports().size(), 1u);
  EXPECT_EQ(component.output_ports().size(), 1u);
}

TEST(Component, DuplicatePortRejected) {
  Component component = sample_component();
  EXPECT_THROW(component.add_port(Port{"shards", PortDirection::Input, "", "",
                                       ConsumptionSemantics::Unknown}),
               ValidationError);
}

TEST(Component, ConfigVariables) {
  const Component component = sample_component();
  EXPECT_EQ(component.config().size(), 2u);
  EXPECT_EQ(component.exposed_config_count(), 1u);
  EXPECT_EQ(component.config_variable("fan_in").default_value.as_int(), 16);
  EXPECT_THROW(component.config_variable("missing"), NotFoundError);
}

TEST(Component, DuplicateConfigRejected) {
  Component component = sample_component();
  EXPECT_THROW(
      component.add_config(ConfigVariable{"fan_in", "int", Json(1), true, ""}),
      ValidationError);
}

TEST(Component, JsonRoundTrip) {
  Component component = sample_component();
  component.profile().set_tier(Gauge::SoftwareCustomizability, 2);
  const Component reparsed = Component::from_json(component.to_json());
  EXPECT_EQ(reparsed.id(), component.id());
  EXPECT_EQ(reparsed.kind(), component.kind());
  EXPECT_EQ(reparsed.description(), component.description());
  EXPECT_EQ(reparsed.ports(), component.ports());
  EXPECT_EQ(reparsed.config(), component.config());
  EXPECT_EQ(reparsed.profile(), component.profile());
}

TEST(Component, FirstPreciousSemanticsSurviveSerialization) {
  // The paper's "first precious" example: the first element seeds deltas for
  // all later elements, so the semantics annotation must not be lost.
  Component component("delta-calc", ComponentKind::CodeFragment);
  component.add_port(Port{"in", PortDirection::Input, "", "channel",
                          ConsumptionSemantics::FirstPrecious});
  const Component reparsed = Component::from_json(component.to_json());
  EXPECT_EQ(reparsed.port("in").semantics, ConsumptionSemantics::FirstPrecious);
}

}  // namespace
}  // namespace ff::core
