// The Composable-tier operation: re-partitioning workflow granularity by
// collapsing subgraphs into BundledWorkflow components.

#include <gtest/gtest.h>

#include "core/workflow_graph.hpp"
#include "util/error.hpp"

namespace ff::core {
namespace {

Port in(const std::string& name, const std::string& schema = "") {
  return Port{name, PortDirection::Input, schema, "", ConsumptionSemantics::Unknown};
}
Port out(const std::string& name, const std::string& schema = "") {
  return Port{name, PortDirection::Output, schema, "", ConsumptionSemantics::Unknown};
}

Component node(const std::string& id, std::initializer_list<Port> ports,
               const GaugeProfile& profile = {}) {
  Component component(id, ComponentKind::Executable);
  for (const Port& port : ports) component.add_port(port);
  component.profile() = profile;
  return component;
}

/// a -> b -> c -> d, with b,c the collapse candidates.
WorkflowGraph chain() {
  WorkflowGraph graph("chain");
  graph.add_component(node("a", {out("o", "s1")}, make_profile(3, 3, 3, 3, 3, 3)));
  graph.add_component(node("b", {in("i", "s1"), out("o", "s2")},
                           make_profile(2, 2, 2, 2, 2, 2)));
  graph.add_component(node("c", {in("i", "s2"), out("o", "s3")},
                           make_profile(1, 2, 3, 1, 2, 3)));
  graph.add_component(node("d", {in("i", "s3")}, make_profile(4, 4, 4, 4, 4, 4)));
  graph.connect("a", "o", "b", "i");
  graph.connect("b", "o", "c", "i");
  graph.connect("c", "o", "d", "i");
  return graph;
}

TEST(Collapse, MergesChainMiddleIntoBundle) {
  const WorkflowGraph collapsed = chain().collapse({"b", "c"}, "bc");
  EXPECT_EQ(collapsed.component_count(), 3u);  // a, bc, d
  EXPECT_TRUE(collapsed.has_component("bc"));
  EXPECT_FALSE(collapsed.has_component("b"));
  const Component& bundle = collapsed.component("bc");
  EXPECT_EQ(bundle.kind(), ComponentKind::BundledWorkflow);
  // Boundary ports: b.i (input) and c.o (output); the internal b->c edge
  // is absorbed.
  EXPECT_TRUE(bundle.has_port("b.i"));
  EXPECT_TRUE(bundle.has_port("c.o"));
  EXPECT_EQ(bundle.ports().size(), 2u);
  EXPECT_EQ(collapsed.edges().size(), 2u);
  EXPECT_FALSE(collapsed.has_cycle());
  // Data still flows a -> bc -> d in topological order.
  const auto order = collapsed.topological_order();
  EXPECT_EQ(order.front(), "a");
  EXPECT_EQ(order.back(), "d");
}

TEST(Collapse, BundleProfileIsWeakestLinkOfMembers) {
  const WorkflowGraph collapsed = chain().collapse({"b", "c"}, "bc");
  const GaugeProfile& profile = collapsed.component("bc").profile();
  EXPECT_EQ(profile, make_profile(1, 2, 2, 1, 2, 2));
}

TEST(Collapse, PortSchemasSurviveAtTheBoundary) {
  const WorkflowGraph collapsed = chain().collapse({"b", "c"}, "bc");
  EXPECT_EQ(collapsed.component("bc").port("b.i").schema, "s1");
  EXPECT_EQ(collapsed.component("bc").port("c.o").schema, "s3");
}

TEST(Collapse, WholeGraphCollapsesToSingleComponent) {
  const WorkflowGraph collapsed = chain().collapse({"a", "b", "c", "d"}, "all");
  EXPECT_EQ(collapsed.component_count(), 1u);
  EXPECT_TRUE(collapsed.edges().empty());
  EXPECT_TRUE(collapsed.component("all").ports().empty());
}

TEST(Collapse, FanOutSharedBoundaryPortDeduplicated) {
  WorkflowGraph graph("fan");
  graph.add_component(node("src", {out("o")}));
  graph.add_component(node("w1", {in("i")}));
  graph.add_component(node("w2", {in("i")}));
  graph.connect("src", "o", "w1", "i");
  graph.connect("src", "o", "w2", "i");
  const WorkflowGraph collapsed = graph.collapse({"w1", "w2"}, "workers");
  // Two incoming edges, two distinct boundary ports (w1.i, w2.i).
  EXPECT_EQ(collapsed.component("workers").ports().size(), 2u);
  EXPECT_EQ(collapsed.edges_from("src").size(), 2u);
}

TEST(Collapse, NonConvexMemberSetRejected) {
  // Collapsing {a, c} in a->b->c creates a cycle through the bundle.
  const WorkflowGraph graph = chain();
  EXPECT_THROW(graph.collapse({"a", "c"}, "ac"), ValidationError);
}

TEST(Collapse, Validation) {
  const WorkflowGraph graph = chain();
  EXPECT_THROW(graph.collapse({}, "x"), ValidationError);
  EXPECT_THROW(graph.collapse({"ghost"}, "x"), ValidationError);
  EXPECT_THROW(graph.collapse({"b"}, "a"), ValidationError);  // id collision
  // Reusing a member's id for the bundle is allowed (it disappears).
  EXPECT_NO_THROW(graph.collapse({"b", "c"}, "b"));
}

TEST(Collapse, RepeatedRolesFeedCollapse) {
  // The intended pipeline: detect repeated roles, then bundle them.
  WorkflowGraph graph("fan");
  graph.add_component(node("src", {out("o", "s")}));
  for (const std::string id : {"w1", "w2", "w3"}) {
    graph.add_component(node(id, {in("i", "s")}));
    graph.connect("src", "o", id, "i");
  }
  const auto groups = graph.repeated_roles(2);
  ASSERT_EQ(groups.size(), 1u);
  const WorkflowGraph collapsed = graph.collapse(groups[0], "worker-pool");
  EXPECT_EQ(collapsed.component_count(), 2u);
  EXPECT_EQ(collapsed.component("worker-pool").kind(),
            ComponentKind::BundledWorkflow);
}

}  // namespace
}  // namespace ff::core
