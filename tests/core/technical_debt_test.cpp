#include "core/technical_debt.hpp"

#include <gtest/gtest.h>

namespace ff::core {
namespace {

Component with_profile(const GaugeProfile& profile) {
  Component component("c", ComponentKind::Executable);
  component.profile() = profile;
  return component;
}

TEST(TechnicalDebt, NoContextChangesNoInterventions) {
  const auto interventions =
      interventions_for(with_profile(GaugeProfile{}), ReuseContext{});
  EXPECT_TRUE(interventions.empty());
}

TEST(TechnicalDebt, NewMachineManualWhenUnknown) {
  ReuseContext context;
  context.new_machine = true;
  const auto interventions =
      interventions_for(with_profile(GaugeProfile{}), context);
  const DebtSummary summary = summarize(interventions);
  EXPECT_GE(summary.manual_count, 2u);  // hand edits + undocumented launch
  EXPECT_EQ(summary.automated_count, 0u);
  EXPECT_GT(summary.manual_minutes, 0.0);
}

TEST(TechnicalDebt, NewMachineAutomatedAtModelTier) {
  ReuseContext context;
  context.new_machine = true;
  GaugeProfile profile = make_profile(0, 0, 0, 2, 3, 0);  // Configured + Model
  const DebtSummary summary =
      summarize(interventions_for(with_profile(profile), context));
  EXPECT_EQ(summary.manual_count, 0u);
  EXPECT_GE(summary.automated_count, 1u);
  EXPECT_EQ(summary.manual_minutes, 0.0);
}

TEST(TechnicalDebt, HiddenConfigVariablesMultiplyEditCost) {
  ReuseContext context;
  context.new_machine = true;
  Component few("few", ComponentKind::Executable);
  few.profile() = make_profile(0, 0, 0, 2, 1, 0);
  few.add_config(ConfigVariable{"a", "int", Json(1), false, ""});
  Component many = few;
  for (const std::string name : {"b", "c", "d", "e"}) {
    many.add_config(ConfigVariable{name, "int", Json(1), false, ""});
  }
  const double few_minutes =
      summarize(interventions_for(few, context)).manual_minutes;
  const double many_minutes =
      summarize(interventions_for(many, context)).manual_minutes;
  EXPECT_GT(many_minutes, few_minutes);
}

TEST(TechnicalDebt, NewFormatWorstCaseRequiresReverseEngineering) {
  ReuseContext context;
  context.new_data_format = true;
  const auto interventions =
      interventions_for(with_profile(GaugeProfile{}), context);
  bool mentions_reverse_engineering = false;
  for (const auto& intervention : interventions) {
    if (intervention.description.find("reverse-engineer") != std::string::npos) {
      mentions_reverse_engineering = true;
      EXPECT_TRUE(intervention.manual);
    }
  }
  EXPECT_TRUE(mentions_reverse_engineering);
}

TEST(TechnicalDebt, TypedSchemaAutomatesConversion) {
  ReuseContext context;
  context.new_data_format = true;
  GaugeProfile profile = make_profile(0, 3, 1, 0, 0, 0);
  const auto interventions = interventions_for(with_profile(profile), context);
  for (const auto& intervention : interventions) {
    if (intervention.gauge == Gauge::DataSchema) {
      EXPECT_FALSE(intervention.manual);
    }
  }
}

TEST(TechnicalDebt, MonotoneNonIncreasingInEveryGauge) {
  // Property: raising any single gauge tier never increases manual minutes,
  // for every context toggle. This is the core invariant the model must
  // keep for assessments to be meaningful.
  std::vector<ReuseContext> contexts;
  for (int bit = 0; bit < 6; ++bit) {
    ReuseContext context;
    context.new_machine = bit == 0;
    context.new_dataset = bit == 1;
    context.new_data_format = bit == 2;
    context.new_team = bit == 3;
    context.new_scale = bit == 4;
    context.new_policy = bit == 5;
    contexts.push_back(context);
  }
  for (const auto& context : contexts) {
    for (Gauge gauge : kAllGauges) {
      for (uint8_t tier = 0; static_cast<size_t>(tier) + 1 < tier_count(gauge);
           ++tier) {
        GaugeProfile lower;
        lower.set_tier(gauge, tier);
        GaugeProfile upper;
        upper.set_tier(gauge, static_cast<uint8_t>(tier + 1));
        const double lower_minutes =
            summarize(interventions_for(with_profile(lower), context)).manual_minutes;
        const double upper_minutes =
            summarize(interventions_for(with_profile(upper), context)).manual_minutes;
        EXPECT_LE(upper_minutes, lower_minutes)
            << gauge_name(gauge) << " tier " << int(tier) << " -> " << int(tier + 1);
      }
    }
  }
}

TEST(TechnicalDebt, DebtForSumsComponents) {
  ReuseContext context;
  context.new_dataset = true;
  std::vector<Component> components = {with_profile(GaugeProfile{}),
                                       with_profile(GaugeProfile{})};
  const DebtSummary total = debt_for(components, context);
  const DebtSummary single =
      summarize(interventions_for(components[0], context));
  EXPECT_EQ(total.manual_count, 2 * single.manual_count);
  EXPECT_DOUBLE_EQ(total.manual_minutes, 2 * single.manual_minutes);
}

TEST(TechnicalDebt, RenderShowsManualAndAutoMarkers) {
  ReuseContext context;
  context.new_machine = true;
  context.new_policy = true;
  GaugeProfile profile = make_profile(0, 0, 0, 4, 3, 0);
  const std::string text =
      render_interventions(interventions_for(with_profile(profile), context));
  EXPECT_NE(text.find("[auto"), std::string::npos);
}

}  // namespace
}  // namespace ff::core
