#include "core/workflow_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace ff::core {
namespace {

Component node(const std::string& id, ComponentKind kind,
               std::initializer_list<Port> ports) {
  Component component(id, kind);
  for (const Port& port : ports) component.add_port(port);
  return component;
}

Port in(const std::string& name, const std::string& schema = "") {
  return Port{name, PortDirection::Input, schema, "", ConsumptionSemantics::Unknown};
}
Port out(const std::string& name, const std::string& schema = "") {
  return Port{name, PortDirection::Output, schema, "", ConsumptionSemantics::Unknown};
}

WorkflowGraph linear_graph() {
  WorkflowGraph graph("linear");
  graph.add_component(node("a", ComponentKind::Executable, {out("o")}));
  graph.add_component(node("b", ComponentKind::Executable, {in("i"), out("o")}));
  graph.add_component(node("c", ComponentKind::Executable, {in("i")}));
  graph.connect("a", "o", "b", "i");
  graph.connect("b", "o", "c", "i");
  return graph;
}

TEST(WorkflowGraph, AddAndLookup) {
  WorkflowGraph graph;
  graph.add_component(node("x", ComponentKind::Executable, {}));
  EXPECT_TRUE(graph.has_component("x"));
  EXPECT_THROW(graph.component("y"), NotFoundError);
  EXPECT_THROW(graph.add_component(node("x", ComponentKind::Executable, {})),
               ValidationError);
  EXPECT_THROW(graph.add_component(Component("", ComponentKind::Executable)),
               ValidationError);
}

TEST(WorkflowGraph, ConnectValidatesDirections) {
  WorkflowGraph graph;
  graph.add_component(node("a", ComponentKind::Executable, {out("o"), in("i")}));
  graph.add_component(node("b", ComponentKind::Executable, {in("i"), out("o")}));
  EXPECT_THROW(graph.connect("a", "i", "b", "i"), ValidationError);  // input as source
  EXPECT_THROW(graph.connect("a", "o", "b", "o"), ValidationError);  // output as target
  EXPECT_THROW(graph.connect("missing", "o", "b", "i"), NotFoundError);
}

TEST(WorkflowGraph, ConnectReportsSchemaMismatch) {
  WorkflowGraph graph;
  graph.add_component(node("a", ComponentKind::Executable, {out("o", "csv:x:v1")}));
  graph.add_component(node("b", ComponentKind::Executable,
                           {in("i", "csv:y:v1"), in("j", ""), in("k", "csv:x:v1")}));
  EXPECT_FALSE(graph.connect("a", "o", "b", "i"));  // mismatch
  EXPECT_TRUE(graph.connect("a", "o", "b", "j"));   // unknown schema: advisory ok
  EXPECT_TRUE(graph.connect("a", "o", "b", "k"));   // exact match
}

TEST(WorkflowGraph, TopologicalOrderRespectsEdges) {
  const WorkflowGraph graph = linear_graph();
  const auto order = graph.topological_order();
  const auto pos = [&](const std::string& id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos("a"), pos("b"));
  EXPECT_LT(pos("b"), pos("c"));
  EXPECT_FALSE(graph.has_cycle());
}

TEST(WorkflowGraph, CycleDetected) {
  WorkflowGraph graph;
  graph.add_component(node("a", ComponentKind::Executable, {in("i"), out("o")}));
  graph.add_component(node("b", ComponentKind::Executable, {in("i"), out("o")}));
  graph.connect("a", "o", "b", "i");
  graph.connect("b", "o", "a", "i");
  EXPECT_TRUE(graph.has_cycle());
  EXPECT_THROW(graph.topological_order(), StateError);
}

TEST(WorkflowGraph, SourcesAndSinks) {
  const WorkflowGraph graph = linear_graph();
  EXPECT_EQ(graph.sources(), std::vector<std::string>{"a"});
  EXPECT_EQ(graph.sinks(), std::vector<std::string>{"c"});
}

TEST(WorkflowGraph, RepeatedRolesGroupsBySignature) {
  WorkflowGraph graph("fan-out");
  graph.add_component(node("src", ComponentKind::Executable, {out("o", "s")}));
  for (const std::string id : {"w1", "w2", "w3"}) {
    graph.add_component(node(id, ComponentKind::Executable, {in("i", "s")}));
    graph.connect("src", "o", id, "i");
  }
  const auto groups = graph.repeated_roles(2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(WorkflowGraph, FindPatternLocatesSubgraph) {
  // Build: instrument -> scheduler -> {consumer1, consumer2}
  WorkflowGraph graph("streaming");
  graph.add_component(node("instrument", ComponentKind::Executable, {out("o")}));
  graph.add_component(
      node("sched", ComponentKind::InternalService, {in("i"), out("o")}));
  graph.add_component(node("consumer1", ComponentKind::Executable, {in("i")}));
  graph.add_component(node("consumer2", ComponentKind::Executable, {in("i")}));
  graph.connect("instrument", "o", "sched", "i");
  graph.connect("sched", "o", "consumer1", "i");
  graph.connect("sched", "o", "consumer2", "i");

  const auto matches = graph.find_pattern(collection_selection_forwarding_pattern());
  // Two occurrences: one per consumer; source may also bind to a consumer
  // with no edges... it cannot, edges must exist. The scheduler is unique.
  ASSERT_EQ(matches.size(), 2u);
  for (const auto& match : matches) {
    EXPECT_EQ(match.at("scheduler"), "sched");
    EXPECT_EQ(match.at("source"), "instrument");
  }
}

TEST(WorkflowGraph, FindPatternNoMatchWhenKindDiffers) {
  WorkflowGraph graph("no-service");
  graph.add_component(node("a", ComponentKind::Executable, {out("o")}));
  graph.add_component(node("b", ComponentKind::Executable, {in("i"), out("o")}));
  graph.add_component(node("c", ComponentKind::Executable, {in("i")}));
  graph.connect("a", "o", "b", "i");
  graph.connect("b", "o", "c", "i");
  EXPECT_TRUE(graph.find_pattern(collection_selection_forwarding_pattern()).empty());
}

TEST(WorkflowGraph, AggregateProfileIsWeakestLink) {
  WorkflowGraph graph;
  Component strong("strong", ComponentKind::Executable);
  strong.profile() = make_profile(4, 4, 4, 4, 4, 4);
  Component weak("weak", ComponentKind::Executable);
  weak.profile() = make_profile(1, 2, 3, 0, 2, 1);
  graph.add_component(std::move(strong));
  graph.add_component(std::move(weak));
  EXPECT_EQ(graph.aggregate_profile(), make_profile(1, 2, 3, 0, 2, 1));
}

TEST(WorkflowGraph, AggregateProfileOfEmptyGraphIsUnknown) {
  EXPECT_EQ(WorkflowGraph{}.aggregate_profile(), GaugeProfile{});
}

TEST(WorkflowGraph, JsonRoundTrip) {
  const WorkflowGraph graph = linear_graph();
  const WorkflowGraph reparsed = WorkflowGraph::from_json(graph.to_json());
  EXPECT_EQ(reparsed.name(), "linear");
  EXPECT_EQ(reparsed.component_count(), 3u);
  EXPECT_EQ(reparsed.edges(), graph.edges());
}

TEST(Edge, EndpointParsing) {
  const Edge edge = Edge::from_json(Json::parse(R"({"from":"a.o","to":"b.i"})"));
  EXPECT_EQ(edge.from_component, "a");
  EXPECT_EQ(edge.to_port, "i");
  EXPECT_THROW(Edge::from_json(Json::parse(R"({"from":"nodot","to":"b.i"})")),
               ParseError);
}

}  // namespace
}  // namespace ff::core
