#include "core/metadata_catalog.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::core {
namespace {

MetadataCatalog sample_catalog() {
  MetadataCatalog catalog;
  Component paste("paste", ComponentKind::Executable);
  paste.profile() = make_profile(2, 2, 0, 2, 3, 1);
  catalog.put_component(std::move(paste));
  Component irf("irf-loop", ComponentKind::BundledWorkflow);
  irf.profile() = make_profile(1, 2, 1, 1, 1, 1);
  catalog.put_component(std::move(irf));
  Component sched("data-scheduler", ComponentKind::InternalService);
  sched.profile() = make_profile(3, 4, 2, 4, 3, 2);
  catalog.put_component(std::move(sched));
  return catalog;
}

TEST(Catalog, PutAndLookup) {
  MetadataCatalog catalog = sample_catalog();
  EXPECT_EQ(catalog.component_count(), 3u);
  EXPECT_TRUE(catalog.has_component("paste"));
  EXPECT_THROW(catalog.component("nope"), NotFoundError);
  // put replaces.
  Component replacement("paste", ComponentKind::CodeFragment);
  catalog.put_component(std::move(replacement));
  EXPECT_EQ(catalog.component("paste").kind(), ComponentKind::CodeFragment);
  EXPECT_EQ(catalog.component_count(), 3u);
}

TEST(Catalog, QueryByGaugeTierNumber) {
  const MetadataCatalog catalog = sample_catalog();
  EXPECT_EQ(catalog.query("customizability >= 3"),
            (std::vector<std::string>{"data-scheduler", "paste"}));
  EXPECT_EQ(catalog.query("schema > 3"), std::vector<std::string>{"data-scheduler"});
}

TEST(Catalog, QueryByTierName) {
  const MetadataCatalog catalog = sample_catalog();
  EXPECT_EQ(catalog.query("customizability >= Model"),
            (std::vector<std::string>{"data-scheduler", "paste"}));
  EXPECT_EQ(catalog.query("granularity == BlackBox"),
            std::vector<std::string>{"irf-loop"});
}

TEST(Catalog, QueryBooleanOperators) {
  const MetadataCatalog catalog = sample_catalog();
  EXPECT_EQ(catalog.query("schema >= 2 and granularity >= 2"),
            (std::vector<std::string>{"data-scheduler", "paste"}));
  EXPECT_EQ(catalog.query("kind == internal-service or kind == bundled-workflow"),
            (std::vector<std::string>{"data-scheduler", "irf-loop"}));
  EXPECT_EQ(catalog.query("not (customizability >= 3)"),
            std::vector<std::string>{"irf-loop"});
  EXPECT_EQ(catalog.query("id == 'paste'"), std::vector<std::string>{"paste"});
  EXPECT_EQ(catalog.query("id != 'paste' and access >= 1"),
            (std::vector<std::string>{"data-scheduler", "irf-loop"}));
}

TEST(Catalog, QueryPrecedenceAndOverOr) {
  const MetadataCatalog catalog = sample_catalog();
  // a or b and c  ==  a or (b and c)
  EXPECT_EQ(
      catalog.query("id == 'paste' or kind == internal-service and schema >= 4"),
      (std::vector<std::string>{"data-scheduler", "paste"}));
}

TEST(Catalog, QueryParseErrors) {
  EXPECT_THROW(CatalogQuery::parse(""), ParseError);
  EXPECT_THROW(CatalogQuery::parse("schema >="), ParseError);
  EXPECT_THROW(CatalogQuery::parse("schema ~ 2"), ParseError);
  EXPECT_THROW(CatalogQuery::parse("(schema >= 2"), ParseError);
  EXPECT_THROW(CatalogQuery::parse("schema >= 2 junk"), ParseError);
  EXPECT_THROW(CatalogQuery::parse("'unterminated"), ParseError);
}

TEST(Catalog, QueryBadFieldOrTierThrowsOnParseOrMatch) {
  const MetadataCatalog catalog = sample_catalog();
  EXPECT_THROW(catalog.query("velocity >= 2"), NotFoundError);
  EXPECT_THROW(catalog.query("schema >= NoSuchTier"), NotFoundError);
  EXPECT_THROW(catalog.query("kind >= executable"), ParseError);  // ordering on string
}

TEST(Catalog, SchemaRegistryAndConflicts) {
  MetadataCatalog catalog;
  SchemaDescriptor schema;
  schema.name = "genotype";
  schema.version = 1;
  schema.container = "csv";
  schema.fields = {{"snp", "string"}, {"dose", "double"}};
  catalog.put_schema(schema);
  EXPECT_TRUE(catalog.has_schema("genotype:v1"));
  EXPECT_EQ(catalog.schema("genotype:v1").container, "csv");
  catalog.put_schema(schema);  // idempotent re-register is fine
  SchemaDescriptor conflicting = schema;
  conflicting.container = "tsv";
  EXPECT_THROW(catalog.put_schema(conflicting), ValidationError);
  EXPECT_THROW(catalog.schema("genotype:v9"), NotFoundError);
}

TEST(Catalog, ConvertiblePaths) {
  MetadataCatalog catalog;
  SchemaDescriptor v1{"genotype", 1, "csv", {{"snp", "string"}, {"dose", "double"}}};
  SchemaDescriptor v2{"genotype", 2, "csv", {{"snp", "string"}, {"dose", "double"}, {"qc", "int"}}};
  SchemaDescriptor json_twin{"genotype_json", 1, "json", {{"dose", "double"}, {"snp", "string"}}};
  SchemaDescriptor unrelated{"phenotype", 1, "csv", {{"trait", "double"}}};
  catalog.put_schema(v1);
  catalog.put_schema(v2);
  catalog.put_schema(json_twin);
  catalog.put_schema(unrelated);
  EXPECT_TRUE(catalog.convertible("genotype:v1", "genotype:v2"));  // version path
  EXPECT_TRUE(catalog.convertible("genotype:v1", "genotype_json:v1"));  // transcoding
  EXPECT_FALSE(catalog.convertible("genotype:v1", "phenotype:v1"));
}

TEST(Catalog, Annotations) {
  MetadataCatalog catalog = sample_catalog();
  catalog.annotate("paste", "campaign", Json::parse(R"({"id":"gwas-2021"})"));
  ASSERT_NE(catalog.annotation("paste", "campaign"), nullptr);
  EXPECT_EQ((*catalog.annotation("paste", "campaign"))["id"].as_string(),
            "gwas-2021");
  EXPECT_EQ(catalog.annotation("paste", "missing"), nullptr);
  EXPECT_THROW(catalog.annotate("ghost", "k", Json(1)), NotFoundError);
}

TEST(Catalog, JsonRoundTrip) {
  MetadataCatalog catalog = sample_catalog();
  SchemaDescriptor schema{"genotype", 1, "csv", {{"snp", "string"}}};
  catalog.put_schema(schema);
  catalog.annotate("paste", "note", Json("kept"));
  const MetadataCatalog reparsed = MetadataCatalog::from_json(catalog.to_json());
  EXPECT_EQ(reparsed.component_count(), 3u);
  EXPECT_TRUE(reparsed.has_schema("genotype:v1"));
  ASSERT_NE(reparsed.annotation("paste", "note"), nullptr);
  EXPECT_EQ(reparsed.annotation("paste", "note")->as_string(), "kept");
  EXPECT_EQ(reparsed.component("data-scheduler").profile(),
            catalog.component("data-scheduler").profile());
}

}  // namespace
}  // namespace ff::core
