#include <gtest/gtest.h>

#include "cheetah/campaign.hpp"
#include "util/error.hpp"

namespace ff::cheetah {
namespace {

TEST(DerivedParameters, RenderAgainstSweptValues) {
  Sweep sweep("s");
  sweep.add(Parameter::int_range("feature", ParamLayer::Application, 0, 2))
      .add_derived("output", "out_{{feature}}.bp");
  const auto runs = sweep.generate();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].param("output").as_string(), "out_0.bp");
  EXPECT_EQ(runs[2].param("output").as_string(), "out_2.bp");
}

TEST(DerivedParameters, IntegerResultsBecomeInts) {
  Sweep sweep("s");
  sweep.add(Parameter::values("nodes", ParamLayer::System, {Json(2), Json(4)}))
      .add_derived("ranks", "{{nodes}}2");  // textual relation: nodes*10+2 style
  const auto runs = sweep.generate();
  EXPECT_TRUE(runs[0].param("ranks").is_int());
  EXPECT_EQ(runs[0].param("ranks").as_int(), 22);
  EXPECT_EQ(runs[1].param("ranks").as_int(), 42);
}

TEST(DerivedParameters, ChainedDerivedSeeEarlierOnes) {
  Sweep sweep("s");
  sweep.add(Parameter::values("base", ParamLayer::Application, {Json("x")}))
      .add_derived("dir", "runs/{{base}}")
      .add_derived("file", "{{dir}}/out.dat");
  const auto runs = sweep.generate();
  EXPECT_EQ(runs[0].param("file").as_string(), "runs/x/out.dat");
}

TEST(DerivedParameters, CollisionsAndBadTemplatesRejected) {
  Sweep sweep("s");
  sweep.add(Parameter::int_range("a", ParamLayer::Application, 0, 1));
  EXPECT_THROW(sweep.add_derived("a", "{{a}}"), ValidationError);
  sweep.add_derived("b", "{{a}}");
  EXPECT_THROW(sweep.add_derived("b", "other"), ValidationError);
  EXPECT_THROW(sweep.add_derived("c", "{{unclosed"), ParseError);
}

TEST(DerivedParameters, UnknownVariableFailsAtGenerate) {
  Sweep sweep("s");
  sweep.add(Parameter::int_range("a", ParamLayer::Application, 0, 1));
  sweep.add_derived("bad", "{{missing}}");
  EXPECT_THROW(sweep.generate(), ValidationError);
}

TEST(DerivedParameters, SurviveJsonRoundTrip) {
  Sweep sweep("s");
  sweep.add(Parameter::int_range("n", ParamLayer::System, 1, 2))
      .add_derived("label", "cfg-{{n}}");
  const Sweep reparsed = Sweep::from_json(sweep.to_json());
  const auto runs = reparsed.generate();
  EXPECT_EQ(runs[1].param("label").as_string(), "cfg-2");
}

TEST(DerivedParameters, CountedInCampaignCommands) {
  // Derived parameters are usable in the app args template like any other.
  Sweep sweep("s");
  sweep.add(Parameter::int_range("nodes", ParamLayer::System, 2, 2))
      .add_derived("ranks", "{{nodes}}0");
  AppSpec app;
  app.name = "sim";
  app.executable = "sim";
  app.args_template = "-n {{ranks}}";
  Campaign campaign("c", app);
  SweepGroup group("g");
  group.add(std::move(sweep));
  campaign.add_group(std::move(group));
  const auto runs = campaign.group("g").generate();
  EXPECT_EQ(campaign.command_for(runs[0]), "sim -n 20");
}

}  // namespace
}  // namespace ff::cheetah
