#include "cheetah/campaign.hpp"

#include <gtest/gtest.h>

#include "cheetah/manifest.hpp"
#include "util/error.hpp"

namespace ff::cheetah {
namespace {

Campaign irf_campaign() {
  AppSpec app;
  app.name = "irf";
  app.executable = "irf_fit";
  app.args_template = "--feature {{feature}} --trees {{trees}}";
  Campaign campaign("irf-loop-census", app);
  campaign.set_machine("summit").set_objective(Objective::MaximizeThroughput);
  Sweep sweep("features");
  sweep.add(Parameter::int_range("feature", ParamLayer::Application, 0, 4))
      .add(Parameter::values("trees", ParamLayer::Application, {Json(100)}));
  SweepGroup group("all-features");
  group.add(std::move(sweep)).set_nodes(20).set_walltime_s(7200);
  campaign.add_group(std::move(group));
  return campaign;
}

TEST(Campaign, BasicComposition) {
  const Campaign campaign = irf_campaign();
  EXPECT_EQ(campaign.total_runs(), 5u);
  EXPECT_EQ(campaign.machine(), "summit");
  EXPECT_EQ(campaign.objective(), Objective::MaximizeThroughput);
  EXPECT_EQ(campaign.group("all-features").nodes(), 20);
  EXPECT_THROW(campaign.group("nope"), NotFoundError);
}

TEST(Campaign, ConstructionValidates) {
  AppSpec app;
  app.name = "x";
  app.executable = "";
  EXPECT_THROW(Campaign("c", app), ValidationError);
  app.executable = "exe";
  EXPECT_THROW(Campaign("", app), ValidationError);
  Campaign campaign("c", app);
  campaign.add_group(SweepGroup("g"));
  EXPECT_THROW(campaign.add_group(SweepGroup("g")), ValidationError);
}

TEST(Campaign, CommandForInstantiatesArgsTemplate) {
  const Campaign campaign = irf_campaign();
  const auto runs = campaign.group("all-features").generate();
  EXPECT_EQ(campaign.command_for(runs[3]), "irf_fit --feature 3 --trees 100");
}

TEST(Campaign, CommandForWithoutTemplateIsExecutable) {
  AppSpec app;
  app.name = "x";
  app.executable = "justrun";
  Campaign campaign("c", app);
  EXPECT_EQ(campaign.command_for(RunSpec{}), "justrun");
}

TEST(Campaign, JsonRoundTrip) {
  const Campaign campaign = irf_campaign();
  const Campaign reparsed = Campaign::from_json(campaign.to_json());
  EXPECT_EQ(reparsed.name(), campaign.name());
  EXPECT_EQ(reparsed.total_runs(), campaign.total_runs());
  EXPECT_EQ(reparsed.machine(), "summit");
  EXPECT_EQ(reparsed.objective(), Objective::MaximizeThroughput);
  EXPECT_EQ(reparsed.app().args_template, campaign.app().args_template);
}

TEST(Objective, NamesRoundTrip) {
  for (Objective objective :
       {Objective::None, Objective::MinimizeRuntime, Objective::MinimizeStorage,
        Objective::MinimizeCommunication, Objective::MaximizeThroughput}) {
    EXPECT_EQ(objective_from_name(objective_name(objective)), objective);
  }
  EXPECT_THROW(objective_from_name("maximize-fun"), NotFoundError);
}

TEST(Manifest, ValidCampaignPassesSchema) {
  EXPECT_NO_THROW(validate_manifest(to_manifest(irf_campaign())));
}

TEST(Manifest, RoundTripThroughManifest) {
  const Json manifest = to_manifest(irf_campaign());
  const Campaign back = campaign_from_manifest(manifest);
  EXPECT_EQ(back.total_runs(), 5u);
  EXPECT_EQ(back.group("all-features").walltime_s(), 7200);
}

TEST(Manifest, RejectsMalformedDocuments) {
  EXPECT_THROW(validate_manifest(Json::parse("{}")), ValidationError);
  // Missing group name.
  Json manifest = to_manifest(irf_campaign());
  manifest["groups"].as_array()[0].as_object().erase("name");
  EXPECT_THROW(validate_manifest(manifest), ValidationError);
}

TEST(Manifest, RejectsEmptyParameterValues) {
  Json manifest = to_manifest(irf_campaign());
  manifest["groups"][size_t{0}]["sweeps"][size_t{0}]["parameters"][size_t{0}]
          ["values"] = Json::array();
  EXPECT_THROW(validate_manifest(manifest), ValidationError);
}

TEST(Manifest, HandEditedManifestStillExecutable) {
  // The interop layer's promise: a manifest edited by another tool (or a
  // human) revalidates on the way into Savanna.
  Json manifest = to_manifest(irf_campaign());
  manifest["machine"] = "institutional";
  const Campaign campaign = campaign_from_manifest(manifest);
  EXPECT_EQ(campaign.machine(), "institutional");
}

}  // namespace
}  // namespace ff::cheetah
