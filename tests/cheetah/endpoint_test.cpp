#include "cheetah/endpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::cheetah {
namespace {

Campaign small_campaign() {
  AppSpec app;
  app.name = "toy";
  app.executable = "toy_exe";
  app.args_template = "--x {{x}}";
  Campaign campaign("toy-campaign", app);
  Sweep sweep("xs");
  sweep.add(Parameter::int_range("x", ParamLayer::Application, 0, 3));
  SweepGroup group("g1");
  group.add(std::move(sweep));
  campaign.add_group(std::move(group));
  return campaign;
}

TEST(CampaignEndpoint, CreateBuildsDirectorySchema) {
  TempDir dir;
  const CampaignEndpoint endpoint =
      CampaignEndpoint::create(small_campaign(), dir.str());
  namespace fs = std::filesystem;
  EXPECT_TRUE(fs::exists(dir.file("toy-campaign/.campaign/manifest.json")));
  EXPECT_TRUE(fs::exists(dir.file("toy-campaign/.campaign/status.json")));
  EXPECT_TRUE(fs::exists(dir.file("toy-campaign/g1/xs/run-0000/params.json")));
  EXPECT_TRUE(fs::exists(dir.file("toy-campaign/g1/xs/run-0003/run.sh")));
  const std::string script = read_file(dir.file("toy-campaign/g1/xs/run-0002/run.sh"));
  EXPECT_NE(script.find("toy_exe --x 2"), std::string::npos);
}

TEST(CampaignEndpoint, CreateRefusesExistingEndpoint) {
  TempDir dir;
  CampaignEndpoint::create(small_campaign(), dir.str());
  EXPECT_THROW(CampaignEndpoint::create(small_campaign(), dir.str()), StateError);
}

TEST(CampaignEndpoint, OpenRestoresState) {
  TempDir dir;
  {
    CampaignEndpoint endpoint = CampaignEndpoint::create(small_campaign(), dir.str());
    endpoint.mark("g1/xs/run-0001", RunState::Done);
    endpoint.mark("g1/xs/run-0002", RunState::Failed);
    endpoint.save();
  }
  const CampaignEndpoint reopened = CampaignEndpoint::open(dir.str(), "toy-campaign");
  EXPECT_EQ(reopened.state("g1/xs/run-0001"), RunState::Done);
  EXPECT_EQ(reopened.state("g1/xs/run-0002"), RunState::Failed);
  EXPECT_EQ(reopened.state("g1/xs/run-0000"), RunState::Pending);
  EXPECT_EQ(reopened.campaign().total_runs(), 4u);
}

TEST(CampaignEndpoint, OpenMissingThrows) {
  TempDir dir;
  EXPECT_THROW(CampaignEndpoint::open(dir.str(), "ghost"), NotFoundError);
}

TEST(CampaignEndpoint, PendingRunsImplementResubmission) {
  TempDir dir;
  CampaignEndpoint endpoint = CampaignEndpoint::create(small_campaign(), dir.str());
  endpoint.mark("g1/xs/run-0000", RunState::Done);
  endpoint.mark("g1/xs/run-0001", RunState::Failed);
  endpoint.mark("g1/xs/run-0002", RunState::Killed);
  // run-0003 stays Pending.
  const auto pending = endpoint.pending_runs("g1");
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_EQ(pending[0].id, "g1/xs/run-0001");
  EXPECT_EQ(pending[1].id, "g1/xs/run-0002");
  EXPECT_EQ(pending[2].id, "g1/xs/run-0003");
}

TEST(CampaignEndpoint, StatusSummaryCounts) {
  TempDir dir;
  CampaignEndpoint endpoint = CampaignEndpoint::create(small_campaign(), dir.str());
  endpoint.mark("g1/xs/run-0000", RunState::Done);
  endpoint.mark("g1/xs/run-0001", RunState::Running);
  const auto summary = endpoint.status();
  EXPECT_EQ(summary.total(), 4u);
  EXPECT_EQ(summary.done, 1u);
  EXPECT_EQ(summary.running, 1u);
  EXPECT_EQ(summary.pending, 2u);
}

TEST(CampaignEndpoint, MarkUnknownRunThrows) {
  TempDir dir;
  CampaignEndpoint endpoint = CampaignEndpoint::create(small_campaign(), dir.str());
  EXPECT_THROW(endpoint.mark("nope", RunState::Done), NotFoundError);
  EXPECT_THROW(endpoint.state("nope"), NotFoundError);
}

TEST(RunStateNames, RoundTrip) {
  for (RunState state : {RunState::Pending, RunState::Running, RunState::Done,
                         RunState::Failed, RunState::Killed}) {
    EXPECT_EQ(run_state_from_name(run_state_name(state)), state);
  }
  EXPECT_THROW(run_state_from_name("paused"), NotFoundError);
}

TEST(CampaignEndpoint, ParamsJsonMatchesRunSpec) {
  TempDir dir;
  CampaignEndpoint endpoint = CampaignEndpoint::create(small_campaign(), dir.str());
  const Json params =
      Json::parse_file(dir.file("toy-campaign/g1/xs/run-0003/params.json"));
  EXPECT_EQ(params["id"].as_string(), "g1/xs/run-0003");
  EXPECT_EQ(params["params"]["x"].as_int(), 3);
}

}  // namespace
}  // namespace ff::cheetah
