#include "cheetah/sweep.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::cheetah {
namespace {

TEST(Parameter, IntRange) {
  const Parameter p = Parameter::int_range("nodes", ParamLayer::System, 2, 8, 2);
  ASSERT_EQ(p.cardinality(), 4u);
  EXPECT_EQ(p.value_list()[0].as_int(), 2);
  EXPECT_EQ(p.value_list()[3].as_int(), 8);
  EXPECT_THROW(Parameter::int_range("x", ParamLayer::System, 5, 1), ValidationError);
  EXPECT_THROW(Parameter::int_range("x", ParamLayer::System, 1, 5, 0),
               ValidationError);
}

TEST(Parameter, Linspace) {
  const Parameter p = Parameter::linspace("alpha", ParamLayer::Application, 0, 1, 5);
  ASSERT_EQ(p.cardinality(), 5u);
  EXPECT_DOUBLE_EQ(p.value_list()[0].as_double(), 0.0);
  EXPECT_DOUBLE_EQ(p.value_list()[2].as_double(), 0.5);
  EXPECT_DOUBLE_EQ(p.value_list()[4].as_double(), 1.0);
  EXPECT_EQ(Parameter::linspace("a", ParamLayer::Application, 3, 9, 1).cardinality(),
            1u);
  EXPECT_THROW(Parameter::linspace("a", ParamLayer::Application, 0, 1, 0),
               ValidationError);
}

TEST(Parameter, ValuesAndValidation) {
  EXPECT_THROW(Parameter::values("x", ParamLayer::Middleware, {}), ValidationError);
  EXPECT_THROW(Parameter::values("", ParamLayer::Middleware, {Json(1)}),
               ValidationError);
  const Parameter p =
      Parameter::values("agg", ParamLayer::Middleware, {Json("sst"), Json("bp4")});
  EXPECT_EQ(p.cardinality(), 2u);
}

TEST(Parameter, LayerNamesRoundTrip) {
  for (ParamLayer layer :
       {ParamLayer::Application, ParamLayer::Middleware, ParamLayer::System}) {
    EXPECT_EQ(param_layer_from_name(param_layer_name(layer)), layer);
  }
  EXPECT_THROW(param_layer_from_name("firmware"), NotFoundError);
}

TEST(Parameter, JsonRoundTrip) {
  const Parameter p = Parameter::int_range("ranks", ParamLayer::System, 1, 3);
  const Parameter reparsed = Parameter::from_json(p.to_json());
  EXPECT_EQ(reparsed.name(), "ranks");
  EXPECT_EQ(reparsed.layer(), ParamLayer::System);
  EXPECT_EQ(reparsed.cardinality(), 3u);
}

TEST(Sweep, CrossProductCountAndOrder) {
  Sweep sweep("s");
  sweep.add(Parameter::values("a", ParamLayer::Application, {Json(1), Json(2)}))
      .add(Parameter::values("b", ParamLayer::Application,
                             {Json("x"), Json("y"), Json("z")}));
  EXPECT_EQ(sweep.run_count(), 6u);
  const auto runs = sweep.generate();
  ASSERT_EQ(runs.size(), 6u);
  // Last parameter varies fastest.
  EXPECT_EQ(runs[0].param("a").as_int(), 1);
  EXPECT_EQ(runs[0].param("b").as_string(), "x");
  EXPECT_EQ(runs[1].param("b").as_string(), "y");
  EXPECT_EQ(runs[3].param("a").as_int(), 2);
  EXPECT_EQ(runs[3].param("b").as_string(), "x");
  EXPECT_EQ(runs[0].id, "run-0000");
  EXPECT_EQ(runs[5].id, "run-0005");
}

TEST(Sweep, EmptySweepIsOneRun) {
  EXPECT_EQ(Sweep{}.run_count(), 1u);
  EXPECT_EQ(Sweep{}.generate().size(), 1u);
}

TEST(Sweep, DuplicateParameterRejected) {
  Sweep sweep;
  sweep.add(Parameter::values("a", ParamLayer::Application, {Json(1)}));
  EXPECT_THROW(sweep.add(Parameter::values("a", ParamLayer::System, {Json(2)})),
               ValidationError);
}

TEST(RunSpec, MissingParamThrows) {
  Sweep sweep;
  sweep.add(Parameter::values("a", ParamLayer::Application, {Json(1)}));
  const auto runs = sweep.generate();
  EXPECT_THROW(runs[0].param("zzz"), NotFoundError);
  const Json json = runs[0].to_json();
  EXPECT_EQ(json["params"]["a"].as_int(), 1);
}

TEST(SweepGroup, AggregatesSweeps) {
  SweepGroup group("g");
  Sweep s1("one");
  s1.add(Parameter::int_range("x", ParamLayer::Application, 1, 2));
  Sweep s2("two");
  s2.add(Parameter::int_range("y", ParamLayer::Application, 1, 3));
  group.add(std::move(s1)).add(std::move(s2)).set_nodes(20).set_walltime_s(7200);
  EXPECT_EQ(group.run_count(), 5u);
  const auto runs = group.generate();
  ASSERT_EQ(runs.size(), 5u);
  EXPECT_EQ(runs[0].id, "g/one/run-0000");
  EXPECT_EQ(runs[2].id, "g/two/run-0000");
}

TEST(SweepGroup, SettersValidate) {
  SweepGroup group("g");
  EXPECT_THROW(group.set_nodes(0), ValidationError);
  EXPECT_THROW(group.set_walltime_s(0), ValidationError);
  EXPECT_THROW(group.set_max_concurrent(-1), ValidationError);
  Sweep s("dup");
  group.add(s);
  EXPECT_THROW(group.add(s), ValidationError);
}

TEST(SweepGroup, JsonRoundTrip) {
  SweepGroup group("g");
  Sweep sweep("s");
  sweep.add(Parameter::int_range("f", ParamLayer::Application, 0, 9));
  group.add(std::move(sweep)).set_nodes(20).set_walltime_s(7200).set_max_concurrent(3);
  const SweepGroup reparsed = SweepGroup::from_json(group.to_json());
  EXPECT_EQ(reparsed.name(), "g");
  EXPECT_EQ(reparsed.nodes(), 20);
  EXPECT_DOUBLE_EQ(reparsed.walltime_s(), 7200);
  EXPECT_EQ(reparsed.max_concurrent(), 3);
  EXPECT_EQ(reparsed.run_count(), 10u);
}

TEST(Sweep, RunAtDecodesAnyIndexIndependently) {
  Sweep sweep("s");
  sweep.add(Parameter::values("a", ParamLayer::Application, {Json(1), Json(2)}))
      .add(Parameter::values("b", ParamLayer::Application,
                             {Json("x"), Json("y"), Json("z")}))
      .add_derived("label", "a{{a}}-{{b}}");
  const auto runs = sweep.generate();
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunSpec decoded = sweep.run_at(i);
    EXPECT_EQ(decoded.id, runs[i].id);
    EXPECT_EQ(decoded.to_json().dump(), runs[i].to_json().dump())
        << "run_at(" << i << ") diverges from generate()";
  }
  EXPECT_THROW(sweep.run_at(runs.size()), ValidationError);
}

TEST(Sweep, LazyRunRangeMatchesGenerate) {
  Sweep sweep("s");
  sweep.add(Parameter::int_range("a", ParamLayer::Application, 0, 4))
      .add(Parameter::int_range("b", ParamLayer::System, 0, 3));
  const auto eager = sweep.generate();
  size_t i = 0;
  for (const RunSpec& run : sweep.runs()) {
    ASSERT_LT(i, eager.size());
    EXPECT_EQ(run.to_json().dump(), eager[i].to_json().dump());
    ++i;
  }
  EXPECT_EQ(i, eager.size());
}

TEST(SweepGroup, LazyIteratorMatchesGenerateAcrossSweepBoundaries) {
  SweepGroup group("g");
  Sweep s1("one");
  s1.add(Parameter::int_range("x", ParamLayer::Application, 1, 2));
  Sweep s2("two");
  s2.add(Parameter::int_range("y", ParamLayer::Application, 1, 3));
  group.add(std::move(s1)).add(std::move(s2));
  const auto eager = group.generate();
  std::vector<std::string> lazy_ids;
  group.for_each_run([&](const RunSpec& run) { lazy_ids.push_back(run.id); });
  ASSERT_EQ(lazy_ids.size(), eager.size());
  for (size_t i = 0; i < eager.size(); ++i) EXPECT_EQ(lazy_ids[i], eager[i].id);
}

TEST(SweepGroup, MillionRunGroupIteratesWithoutMaterializing) {
  // 10^6 runs: the submission path must stream run ids from the decoder —
  // generate() would hold a million RunSpec maps in memory. Only the
  // iterator is exercised here; nothing proportional to run_count() is
  // allocated.
  SweepGroup group("mega");
  Sweep sweep("s");
  sweep.add(Parameter::int_range("a", ParamLayer::Application, 0, 99))
      .add(Parameter::int_range("b", ParamLayer::Middleware, 0, 99))
      .add(Parameter::int_range("c", ParamLayer::System, 0, 99));
  group.add(std::move(sweep));
  ASSERT_EQ(group.run_count(), 1000000u);

  size_t seen = 0;
  std::string first_id, last_id;
  int64_t checksum = 0;
  group.for_each_run([&](const RunSpec& run) {
    if (seen == 0) first_id = run.id;
    last_id = run.id;
    checksum += run.param("c").as_int();
    ++seen;
  });
  EXPECT_EQ(seen, 1000000u);
  EXPECT_EQ(first_id, "mega/s/run-0000");
  EXPECT_EQ(last_id, "mega/s/run-999999");
  // Sum of the fastest-varying parameter over the full product.
  EXPECT_EQ(checksum, static_cast<int64_t>(99 * 100 / 2) * 10000);

  // Random access at scale: decode a single deep index without iterating.
  const RunSpec probe = group.sweeps()[0].run_at(123456, "mega/s/run-");
  EXPECT_EQ(probe.id, "mega/s/run-123456");
  EXPECT_EQ(probe.param("a").as_int(), 12);
  EXPECT_EQ(probe.param("b").as_int(), 34);
  EXPECT_EQ(probe.param("c").as_int(), 56);
}

TEST(Sweep, LargeCrossProductEnumeratesAllCombinations) {
  Sweep sweep;
  sweep.add(Parameter::int_range("a", ParamLayer::Application, 0, 9))
      .add(Parameter::int_range("b", ParamLayer::Middleware, 0, 9))
      .add(Parameter::int_range("c", ParamLayer::System, 0, 9));
  const auto runs = sweep.generate();
  ASSERT_EQ(runs.size(), 1000u);
  std::set<std::string> distinct;
  for (const auto& run : runs) {
    distinct.insert(std::to_string(run.param("a").as_int()) + "," +
                    std::to_string(run.param("b").as_int()) + "," +
                    std::to_string(run.param("c").as_int()));
  }
  EXPECT_EQ(distinct.size(), 1000u);
}

TEST(Sweep, RejectsCrossProductOverflowAtConstruction) {
  // Nine 128-value parameters are 2^63 runs — the largest power-of-two
  // product size_t still holds. A tenth 128-value parameter wraps; add()
  // must refuse at construction rather than let run_count() silently shrink
  // and run_at() decode garbage assignments. (The linter flags the same
  // manifest as FF210 before create() hits this throw.)
  std::vector<Json> values;
  for (int64_t i = 0; i < 128; ++i) values.push_back(Json(i));
  Sweep sweep("huge");
  for (int p = 0; p < 9; ++p) {
    sweep.add(Parameter::values("p" + std::to_string(p),
                                ParamLayer::Application, values));
  }
  EXPECT_EQ(sweep.run_count(), size_t{1} << 63);
  EXPECT_THROW(
      sweep.add(Parameter::values("p9", ParamLayer::Application, values)),
      ValidationError);
  // Boundary: ×1 keeps the product at 2^63 (fits), ×2 would be 2^64 (wraps).
  sweep.add(Parameter::values("one", ParamLayer::Application, {Json(0)}));
  EXPECT_EQ(sweep.run_count(), size_t{1} << 63);
  EXPECT_THROW(
      sweep.add(Parameter::values("two", ParamLayer::Application,
                                  {Json(0), Json(1)})),
      ValidationError);
  // A failed add leaves the sweep untouched.
  EXPECT_EQ(sweep.parameters().size(), 10u);
  EXPECT_EQ(sweep.run_count(), size_t{1} << 63);
}

TEST(SweepGroup, RejectsTotalRunCountOverflow) {
  // Two 2^63-run sweeps sum to 2^64 — past size_t. The group add() must
  // refuse the second sweep and leave the group untouched.
  std::vector<Json> values;
  for (int64_t i = 0; i < 128; ++i) values.push_back(Json(i));
  const auto huge_sweep = [&values](const std::string& name) {
    Sweep sweep(name);
    for (int p = 0; p < 9; ++p) {
      sweep.add(Parameter::values("p" + std::to_string(p),
                                  ParamLayer::Application, values));
    }
    return sweep;
  };
  SweepGroup group("g");
  group.add(huge_sweep("a"));
  EXPECT_EQ(group.run_count(), size_t{1} << 63);
  EXPECT_THROW(group.add(huge_sweep("b")), ValidationError);
  EXPECT_EQ(group.sweeps().size(), 1u);
  EXPECT_EQ(group.run_count(), size_t{1} << 63);
  // Small sweeps still join fine next to a huge one.
  Sweep small("small");
  small.add(Parameter::values("x", ParamLayer::Application, {Json(1), Json(2)}));
  group.add(std::move(small));
  EXPECT_EQ(group.run_count(), (size_t{1} << 63) + 2);
}

}  // namespace
}  // namespace ff::cheetah
