#include "cheetah/results.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::cheetah {
namespace {

RunSpec run_with(const std::string& id, int nodes, const std::string& aggregator) {
  RunSpec run;
  run.id = id;
  run.params["nodes"] = Json(nodes);
  run.params["aggregator"] = Json(aggregator);
  return run;
}

ResultCatalog codesign_catalog() {
  // A small codesign study: runtime improves with nodes; storage depends
  // on the aggregation method.
  ResultCatalog catalog;
  catalog.record(run_with("r0", 2, "sst"), {{"runtime_s", 100}, {"storage_gb", 10}});
  catalog.record(run_with("r1", 4, "sst"), {{"runtime_s", 60}, {"storage_gb", 10}});
  catalog.record(run_with("r2", 8, "sst"), {{"runtime_s", 40}, {"storage_gb", 10}});
  catalog.record(run_with("r3", 2, "bp4"), {{"runtime_s", 110}, {"storage_gb", 4}});
  catalog.record(run_with("r4", 4, "bp4"), {{"runtime_s", 70}, {"storage_gb", 4}});
  catalog.record(run_with("r5", 8, "bp4"), {{"runtime_s", 50}, {"storage_gb", 4}});
  return catalog;
}

TEST(ResultCatalog, RecordAndLookup) {
  const ResultCatalog catalog = codesign_catalog();
  EXPECT_EQ(catalog.run_count(), 6u);
  EXPECT_TRUE(catalog.has_run("r3"));
  EXPECT_DOUBLE_EQ(catalog.metrics("r3").at("storage_gb"), 4);
  EXPECT_THROW(catalog.metrics("ghost"), NotFoundError);
  EXPECT_EQ(catalog.metric_names(),
            (std::vector<std::string>{"runtime_s", "storage_gb"}));
}

TEST(ResultCatalog, RerecordReplaces) {
  ResultCatalog catalog;
  catalog.record(run_with("r0", 2, "sst"), {{"runtime_s", 100}});
  catalog.record(run_with("r0", 2, "sst"), {{"runtime_s", 80}});
  EXPECT_EQ(catalog.run_count(), 1u);
  EXPECT_DOUBLE_EQ(catalog.metrics("r0").at("runtime_s"), 80);
  RunSpec nameless;
  EXPECT_THROW(catalog.record(nameless, {}), ValidationError);
}

TEST(ResultCatalog, BestRespectsObjectiveDirection) {
  const ResultCatalog catalog = codesign_catalog();
  const auto fastest = catalog.best("runtime_s", Objective::MinimizeRuntime);
  ASSERT_TRUE(fastest.has_value());
  EXPECT_EQ(fastest->id, "r2");
  const auto smallest = catalog.best("storage_gb", Objective::MinimizeStorage);
  ASSERT_TRUE(smallest.has_value());
  EXPECT_EQ(smallest->param("aggregator").as_string(), "bp4");
  const auto slowest_is_max = catalog.best("runtime_s", Objective::MaximizeThroughput);
  ASSERT_TRUE(slowest_is_max.has_value());
  EXPECT_EQ(slowest_is_max->id, "r3");  // maximize picks the largest value
  EXPECT_FALSE(catalog.best("missing_metric", Objective::None).has_value());
}

TEST(ResultCatalog, MainEffectAveragesPerValue) {
  const ResultCatalog catalog = codesign_catalog();
  const auto by_nodes = catalog.main_effect("nodes", "runtime_s");
  ASSERT_EQ(by_nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(by_nodes.at("2"), 105);  // (100+110)/2
  EXPECT_DOUBLE_EQ(by_nodes.at("8"), 45);
  const auto by_aggregator = catalog.main_effect("aggregator", "storage_gb");
  EXPECT_DOUBLE_EQ(by_aggregator.at("\"sst\""), 10);
  EXPECT_DOUBLE_EQ(by_aggregator.at("\"bp4\""), 4);
  EXPECT_TRUE(catalog.main_effect("ghost_param", "runtime_s").empty());
}

TEST(ResultCatalog, EffectRangeAndRanking) {
  const ResultCatalog catalog = codesign_catalog();
  EXPECT_DOUBLE_EQ(catalog.effect_range("nodes", "runtime_s"), 60);  // 105-45
  EXPECT_DOUBLE_EQ(catalog.effect_range("aggregator", "storage_gb"), 6);
  EXPECT_EQ(catalog.effect_range("ghost", "runtime_s"), 0);
  // nodes dominates runtime; aggregator dominates storage.
  const auto runtime_ranking = catalog.rank_parameters("runtime_s");
  ASSERT_EQ(runtime_ranking.size(), 2u);
  EXPECT_EQ(runtime_ranking[0].first, "nodes");
  const auto storage_ranking = catalog.rank_parameters("storage_gb");
  EXPECT_EQ(storage_ranking[0].first, "aggregator");
}

TEST(ResultCatalog, JsonRoundTrip) {
  const ResultCatalog catalog = codesign_catalog();
  const ResultCatalog reparsed = ResultCatalog::from_json(catalog.to_json());
  EXPECT_EQ(reparsed.run_count(), 6u);
  EXPECT_DOUBLE_EQ(reparsed.metrics("r4").at("runtime_s"), 70);
  EXPECT_DOUBLE_EQ(reparsed.effect_range("nodes", "runtime_s"), 60);
  const auto best = reparsed.best("runtime_s", Objective::MinimizeRuntime);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->param("nodes").as_int(), 8);
}

}  // namespace
}  // namespace ff::cheetah
