#include "ckpt/policy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::ckpt {
namespace {

CheckpointContext context_at(int step, double now, double cumulative_io,
                             double estimate) {
  CheckpointContext context;
  context.step = step;
  context.now_s = now;
  context.cumulative_io_s = cumulative_io;
  context.estimated_write_s = estimate;
  return context;
}

TEST(FixedIntervalPolicy, FiresEveryNSteps) {
  FixedIntervalPolicy policy(5);
  int fired = 0;
  for (int step = 0; step < 50; ++step) {
    if (policy.should_checkpoint(context_at(step, step * 10.0, 0, 1))) ++fired;
  }
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(policy.should_checkpoint(context_at(4, 0, 0, 0)));   // step 5
  EXPECT_FALSE(policy.should_checkpoint(context_at(5, 0, 0, 0)));
  EXPECT_THROW(FixedIntervalPolicy(0), ValidationError);
}

TEST(OverheadBoundedPolicy, RespectsBudget) {
  OverheadBoundedPolicy policy(0.10);
  // 100 s elapsed, no I/O yet, 5 s write => 5/105 < 10%: write.
  EXPECT_TRUE(policy.should_checkpoint(context_at(0, 100, 0, 5)));
  // 100 s elapsed, 9 s I/O already, 5 s write => 14/105 > 10%: skip.
  EXPECT_FALSE(policy.should_checkpoint(context_at(1, 100, 9, 5)));
  // Expensive write early in the run is refused...
  EXPECT_FALSE(policy.should_checkpoint(context_at(0, 10, 0, 5)));
  // ...but affordable later.
  EXPECT_TRUE(policy.should_checkpoint(context_at(0, 1000, 0, 5)));
  EXPECT_THROW(OverheadBoundedPolicy(0.0), ValidationError);
  EXPECT_THROW(OverheadBoundedPolicy(1.0), ValidationError);
}

TEST(OverheadBoundedPolicy, HigherBudgetNeverWritesLess) {
  // Property: for identical contexts, a larger budget is at least as
  // permissive (monotonicity Fig. 3 depends on).
  OverheadBoundedPolicy tight(0.05);
  OverheadBoundedPolicy loose(0.20);
  for (double now : {10.0, 100.0, 1000.0}) {
    for (double io : {0.0, 5.0, 50.0}) {
      for (double estimate : {1.0, 10.0, 100.0}) {
        const CheckpointContext context = context_at(0, now, io, estimate);
        if (tight.should_checkpoint(context)) {
          EXPECT_TRUE(loose.should_checkpoint(context));
        }
      }
    }
  }
}

TEST(MinimumFrequencyPolicy, ForcesAfterGap) {
  MinimumFrequencyPolicy policy(60.0);
  CheckpointContext context = context_at(3, 100, 0, 1);
  context.last_checkpoint_s = 50;   // 50 s ago
  EXPECT_FALSE(policy.should_checkpoint(context));
  context.last_checkpoint_s = 30;   // 70 s ago
  EXPECT_TRUE(policy.should_checkpoint(context));
  EXPECT_THROW(MinimumFrequencyPolicy(0), ValidationError);
}

TEST(ForcedOnHighCostPolicy, TriggersOnAbnormalCost) {
  ForcedOnHighCostPolicy policy(10.0, 3.0);
  CheckpointContext context = context_at(2, 100, 0, 10);
  context.recent_write_s = 20;  // 2x nominal: not abnormal enough
  EXPECT_FALSE(policy.should_checkpoint(context));
  context.recent_write_s = 35;  // 3.5x nominal: system looks sick
  EXPECT_TRUE(policy.should_checkpoint(context));
  EXPECT_THROW(ForcedOnHighCostPolicy(0, 2), ValidationError);
  EXPECT_THROW(ForcedOnHighCostPolicy(10, 1.0), ValidationError);
}

TEST(Combinators, AnyAndAll) {
  auto always = std::make_shared<FixedIntervalPolicy>(1);
  auto never_now = std::make_shared<MinimumFrequencyPolicy>(1e9);
  const CheckpointContext context = context_at(0, 100, 0, 1);
  AnyPolicy any({always, never_now});
  AllPolicy all({always, never_now});
  EXPECT_TRUE(any.should_checkpoint(context));
  EXPECT_FALSE(all.should_checkpoint(context));
  EXPECT_THROW(AnyPolicy({}), ValidationError);
  EXPECT_THROW(AllPolicy({}), ValidationError);
}

TEST(Policies, NamesAreDescriptive) {
  EXPECT_EQ(FixedIntervalPolicy(7).name(), "fixed-interval(7)");
  EXPECT_EQ(OverheadBoundedPolicy(0.10).name(), "overhead-bounded(10%)");
  auto a = std::make_shared<FixedIntervalPolicy>(1);
  auto b = std::make_shared<OverheadBoundedPolicy>(0.05);
  EXPECT_EQ(AnyPolicy({a, b}).name(),
            "any(fixed-interval(1), overhead-bounded(5%))");
}

TEST(Combinators, PaperCompositePolicy) {
  // The composite the paper sketches: overhead-bounded, but force a write
  // if the gap grows too large OR the last write looked pathological.
  auto overhead = std::make_shared<OverheadBoundedPolicy>(0.10);
  auto min_frequency = std::make_shared<MinimumFrequencyPolicy>(600.0);
  auto forced = std::make_shared<ForcedOnHighCostPolicy>(5.0, 4.0);
  AnyPolicy composite({overhead, min_frequency, forced});

  CheckpointContext quiet = context_at(1, 100, 9, 5);
  quiet.last_checkpoint_s = 50;
  EXPECT_FALSE(composite.should_checkpoint(quiet));  // over budget, gap small

  CheckpointContext long_gap = quiet;
  long_gap.now_s = 1000;
  long_gap.last_checkpoint_s = 100;
  EXPECT_TRUE(composite.should_checkpoint(long_gap));  // min frequency kicks in
}

}  // namespace
}  // namespace ff::ckpt
