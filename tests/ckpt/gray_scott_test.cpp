#include "ckpt/gray_scott.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "util/error.hpp"

namespace ff::ckpt {
namespace {

TEST(GrayScott, InitialConditionsSeeded) {
  GrayScott app(GrayScott::Params{});
  EXPECT_EQ(app.current_step(), 0);
  EXPECT_GT(app.v_mass(), 0.0);  // seeded square of reactant
}

TEST(GrayScott, RejectsTinyGrids) {
  GrayScott::Params params;
  params.width = 2;
  EXPECT_THROW(GrayScott{params}, ValidationError);
}

TEST(GrayScott, StepsAdvanceAndStayFinite) {
  GrayScott app(GrayScott::Params{});
  app.steps(100);
  EXPECT_EQ(app.current_step(), 100);
  for (double value : app.u()) {
    EXPECT_TRUE(std::isfinite(value));
    EXPECT_GE(value, -0.5);
    EXPECT_LE(value, 1.5);
  }
  for (double value : app.v()) EXPECT_TRUE(std::isfinite(value));
}

TEST(GrayScott, PatternEvolves) {
  GrayScott app(GrayScott::Params{});
  const double before = app.v_mass();
  app.steps(200);
  EXPECT_NE(app.v_mass(), before);
}

TEST(GrayScott, DeterministicForSeed) {
  GrayScott a(GrayScott::Params{}, 7);
  GrayScott b(GrayScott::Params{}, 7);
  a.steps(50);
  b.steps(50);
  EXPECT_EQ(a.u(), b.u());
  EXPECT_EQ(a.v(), b.v());
}

TEST(GrayScott, CheckpointRestartResumesExactly) {
  GrayScott original(GrayScott::Params{}, 9);
  original.steps(30);
  const std::vector<uint8_t> blob = original.checkpoint();
  EXPECT_EQ(blob.size(), original.checkpoint_bytes());

  GrayScott restored = GrayScott::restore(blob);
  EXPECT_EQ(restored.current_step(), 30);
  EXPECT_EQ(restored.u(), original.u());

  // Continuing both produces identical trajectories (restart correctness).
  original.steps(20);
  restored.steps(20);
  EXPECT_EQ(restored.u(), original.u());
  EXPECT_EQ(restored.v(), original.v());
  EXPECT_EQ(restored.current_step(), 50);
}

TEST(GrayScott, RestoreRejectsCorruptBlobs) {
  GrayScott app(GrayScott::Params{}, 1);
  std::vector<uint8_t> blob = app.checkpoint();
  std::vector<uint8_t> truncated(blob.begin(), blob.begin() + 10);
  EXPECT_THROW(GrayScott::restore(truncated), ParseError);
  std::vector<uint8_t> extended = blob;
  extended.push_back(0);
  EXPECT_THROW(GrayScott::restore(extended), ParseError);
}

TEST(GrayScott, CheckpointSizeScalesWithGrid) {
  GrayScott::Params small;
  small.width = 16;
  small.height = 16;
  GrayScott::Params large;
  large.width = 64;
  large.height = 64;
  EXPECT_GT(GrayScott(large).checkpoint_bytes(), GrayScott(small).checkpoint_bytes());
}

}  // namespace
}  // namespace ff::ckpt
