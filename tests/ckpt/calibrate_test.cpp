#include "ckpt/calibrate.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::ckpt {
namespace {

TEST(Calibrate, MeasuresRealKernelSteps) {
  GrayScott::Params params;
  params.width = 48;
  params.height = 48;
  GrayScott app(params, 1);
  const KernelCalibration calibration = calibrate_gray_scott(app, 20);
  EXPECT_EQ(calibration.steps_measured, 20);
  EXPECT_GT(calibration.mean_step_s, 0.0);
  EXPECT_GE(calibration.variability, 0.0);
  EXPECT_EQ(app.current_step(), 20);  // the steps really ran
}

TEST(Calibrate, LargerGridsTakeLonger) {
  GrayScott::Params small;
  small.width = 32;
  small.height = 32;
  GrayScott::Params large;
  large.width = 256;
  large.height = 256;
  GrayScott small_app(small, 1);
  GrayScott large_app(large, 1);
  const double small_time = calibrate_gray_scott(small_app, 8).mean_step_s;
  const double large_time = calibrate_gray_scott(large_app, 8).mean_step_s;
  EXPECT_GT(large_time, small_time * 4);  // 64x the cells; allow slack
}

TEST(Calibrate, Validation) {
  GrayScott app(GrayScott::Params{}, 1);
  EXPECT_THROW(calibrate_gray_scott(app, 1), ValidationError);
  EXPECT_THROW(scaled_app_config(KernelCalibration{}, 120, 50, 128, 4096, 1e12),
               ValidationError);
  KernelCalibration calibration;
  calibration.steps_measured = 10;
  calibration.mean_step_s = 0.001;
  EXPECT_THROW(scaled_app_config(calibration, 0, 50, 128, 4096, 1e12),
               ValidationError);
}

TEST(Calibrate, ScaledConfigInheritsVariabilityWithFloor) {
  KernelCalibration calibration;
  calibration.steps_measured = 30;
  calibration.mean_step_s = 0.002;
  calibration.variability = 0.22;
  const AppConfig config =
      scaled_app_config(calibration, 120, 50, 128, 4096, 1e12);
  EXPECT_DOUBLE_EQ(config.compute_per_step_s, 120);
  EXPECT_DOUBLE_EQ(config.compute_variability, 0.22);
  calibration.variability = 0.001;  // dedicated-host smoothness
  EXPECT_DOUBLE_EQ(
      scaled_app_config(calibration, 120, 50, 128, 4096, 1e12).compute_variability,
      0.05);  // floored for a shared machine
}

TEST(Calibrate, ScaledConfigDrivesHarnessEndToEnd) {
  GrayScott::Params params;
  params.width = 48;
  params.height = 48;
  GrayScott app(params, 2);
  const KernelCalibration calibration = calibrate_gray_scott(app, 10);
  const AppConfig config =
      scaled_app_config(calibration, 120, 50, 128, 4096, 1e12);
  const OverheadBoundedPolicy policy(0.10);
  const RunResult result = run_simulated_app(config, policy, sim::summit(), 3);
  EXPECT_EQ(result.steps.size(), 50u);
  EXPECT_GT(result.checkpoints_written, 0);
  EXPECT_LE(result.overhead_fraction(), 0.12);
}

}  // namespace
}  // namespace ff::ckpt
