#include "ckpt/harness.hpp"

#include <gtest/gtest.h>
#include <set>

#include "util/error.hpp"

namespace ff::ckpt {
namespace {

AppConfig paper_config() {
  AppConfig config;
  config.steps = 50;
  config.nodes = 128;
  config.ranks = 4096;
  config.bytes_per_step = 1e12;
  config.compute_per_step_s = 120;
  return config;
}

TEST(Harness, FixedIntervalWritesExpectedCount) {
  const FixedIntervalPolicy policy(10);
  const RunResult result = run_simulated_app(paper_config(), policy, sim::summit(), 1);
  EXPECT_EQ(result.checkpoints_written, 5);  // 50 steps / 10
  EXPECT_EQ(result.steps.size(), 50u);
  EXPECT_GT(result.total_runtime_s, 0);
  EXPECT_GT(result.total_io_s, 0);
}

TEST(Harness, OverheadPolicyRespectsCapApproximately) {
  for (double cap : {0.05, 0.10, 0.20}) {
    const OverheadBoundedPolicy policy(cap);
    const RunResult result =
        run_simulated_app(paper_config(), policy, sim::summit(), 7);
    // The policy checks before each write, so the final overhead can only
    // exceed the cap by at most one write's contribution.
    EXPECT_LE(result.overhead_fraction(), cap + 0.02) << cap;
  }
}

TEST(Harness, MoreOverheadBudgetMoreCheckpoints) {
  // The monotone shape of Fig. 3.
  int previous = -1;
  for (double cap : {0.01, 0.05, 0.10, 0.20, 0.30}) {
    const OverheadBoundedPolicy policy(cap);
    const RunResult result =
        run_simulated_app(paper_config(), policy, sim::summit(), 3);
    EXPECT_GE(result.checkpoints_written, previous) << cap;
    previous = result.checkpoints_written;
  }
}

TEST(Harness, CheckpointCountBoundedBySteps) {
  const OverheadBoundedPolicy policy(0.45);
  const RunResult result = run_simulated_app(paper_config(), policy, sim::summit(), 2);
  EXPECT_LE(result.checkpoints_written, 50);
}

TEST(Harness, RunToRunVariationAtFixedCap) {
  // The phenomenon of Fig. 4: same policy, different seeds (FS load and
  // app behaviour) => different checkpoint counts.
  const OverheadBoundedPolicy policy(0.10);
  std::set<int> distinct;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    AppConfig config = paper_config();
    config.comm_fraction = 0.1 + 0.05 * static_cast<double>(seed % 4);
    distinct.insert(
        run_simulated_app(config, policy, sim::summit(), seed).checkpoints_written);
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Harness, DeterministicForSeed) {
  const OverheadBoundedPolicy policy(0.10);
  const RunResult a = run_simulated_app(paper_config(), policy, sim::summit(), 5);
  const RunResult b = run_simulated_app(paper_config(), policy, sim::summit(), 5);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_DOUBLE_EQ(a.total_runtime_s, b.total_runtime_s);
}

TEST(Harness, BadConfigThrows) {
  const FixedIntervalPolicy policy(1);
  AppConfig config = paper_config();
  config.steps = 0;
  EXPECT_THROW(run_simulated_app(config, policy, sim::summit(), 1), ValidationError);
  config = paper_config();
  config.bytes_per_step = 0;
  EXPECT_THROW(run_simulated_app(config, policy, sim::summit(), 1), ValidationError);
}

TEST(Harness, StepRecordsAreConsistent) {
  const FixedIntervalPolicy policy(10);
  const RunResult result = run_simulated_app(paper_config(), policy, sim::summit(), 4);
  double io = 0;
  double runtime = 0;
  int checkpoints = 0;
  for (const StepRecord& record : result.steps) {
    runtime += record.compute_s + record.write_s;
    io += record.write_s;
    if (record.checkpointed) {
      ++checkpoints;
      EXPECT_GT(record.write_s, 0);
    } else {
      EXPECT_EQ(record.write_s, 0);
    }
  }
  EXPECT_EQ(checkpoints, result.checkpoints_written);
  EXPECT_NEAR(io, result.total_io_s, 1e-9);
  EXPECT_NEAR(runtime, result.total_runtime_s, 1e-9);
}

TEST(LostWork, ComputedAgainstLastCheckpoint) {
  RunResult result;
  result.total_runtime_s = 100;
  result.checkpoint_times_s = {20, 60};
  EXPECT_DOUBLE_EQ(lost_work_at(result, 10), 10);   // before first ckpt
  EXPECT_DOUBLE_EQ(lost_work_at(result, 20), 0);    // exactly at ckpt
  EXPECT_DOUBLE_EQ(lost_work_at(result, 50), 30);
  EXPECT_DOUBLE_EQ(lost_work_at(result, 90), 30);
  EXPECT_DOUBLE_EQ(lost_work_at(result, 500), 40);  // clamped to run end
  EXPECT_THROW(lost_work_at(result, -1), ValidationError);
}

TEST(LostWork, ExpectedValueMatchesClosedForm) {
  RunResult result;
  result.total_runtime_s = 100;
  result.checkpoint_times_s = {50};
  // Two intervals of 50: E = (50^2/2 + 50^2/2)/100 = 25.
  EXPECT_DOUBLE_EQ(expected_lost_work(result), 25.0);
  RunResult no_checkpoints;
  no_checkpoints.total_runtime_s = 100;
  EXPECT_DOUBLE_EQ(expected_lost_work(no_checkpoints), 50.0);
}

TEST(LostWork, MoreCheckpointsLessExpectedLoss) {
  const RunResult few = run_simulated_app(paper_config(),
                                          FixedIntervalPolicy(25), sim::summit(), 6);
  const RunResult many = run_simulated_app(paper_config(),
                                           FixedIntervalPolicy(5), sim::summit(), 6);
  EXPECT_LT(expected_lost_work(many), expected_lost_work(few));
}

}  // namespace
}  // namespace ff::ckpt
