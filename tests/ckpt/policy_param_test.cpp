// Parameterized sweeps over the overhead-bounded checkpoint policy: for
// every cap and machine, the achieved overhead must respect the cap (up to
// one write's slack), the run must be deterministic, and larger caps must
// never reduce the checkpoint count (the Fig. 3 monotonicity).

#include <gtest/gtest.h>

#include "ckpt/harness.hpp"

namespace ff::ckpt {
namespace {

struct CapCase {
  double cap;
  const char* machine;
  uint64_t seed;
};

class OverheadCapSweep : public ::testing::TestWithParam<CapCase> {
 protected:
  static sim::MachineSpec machine_for(const std::string& name) {
    if (name == "summit") return sim::summit();
    return sim::institutional_cluster();
  }

  static AppConfig app_config() {
    AppConfig config;
    config.steps = 50;
    config.nodes = 128;
    config.ranks = 4096;
    config.bytes_per_step = 1e12;
    config.compute_per_step_s = 120;
    return config;
  }
};

TEST_P(OverheadCapSweep, AchievedOverheadWithinCapPlusOneWrite) {
  const auto& param = GetParam();
  AppConfig config = app_config();
  if (std::string(param.machine) == "institutional") {
    config.nodes = 32;  // the whole cluster has 64; keep the request legal
    config.ranks = 1024;
  }
  const OverheadBoundedPolicy policy(param.cap);
  const RunResult result =
      run_simulated_app(config, policy, machine_for(param.machine), param.seed);
  // Slack: the policy admits a write that *then* tips the ratio; bounded by
  // the largest single write's contribution.
  double largest_write = 0;
  for (const StepRecord& record : result.steps) {
    largest_write = std::max(largest_write, record.write_s);
  }
  const double slack =
      result.total_runtime_s > 0 ? largest_write / result.total_runtime_s : 0;
  EXPECT_LE(result.overhead_fraction(), param.cap + slack + 1e-9);
  EXPECT_GE(result.checkpoints_written, 0);
  EXPECT_LE(result.checkpoints_written, config.steps);
}

TEST_P(OverheadCapSweep, DeterministicForSeed) {
  const auto& param = GetParam();
  const OverheadBoundedPolicy policy(param.cap);
  const AppConfig config = app_config();
  const sim::MachineSpec machine = machine_for(param.machine);
  const RunResult a = run_simulated_app(config, policy, machine, param.seed);
  const RunResult b = run_simulated_app(config, policy, machine, param.seed);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_DOUBLE_EQ(a.total_io_s, b.total_io_s);
}

TEST_P(OverheadCapSweep, TighterCapNeverWritesMore) {
  const auto& param = GetParam();
  if (param.cap <= 0.011) return;  // nothing meaningfully tighter to compare
  const AppConfig config = app_config();
  const sim::MachineSpec machine = machine_for(param.machine);
  const OverheadBoundedPolicy loose(param.cap);
  const OverheadBoundedPolicy tight(param.cap / 2);
  const int loose_count =
      run_simulated_app(config, loose, machine, param.seed).checkpoints_written;
  const int tight_count =
      run_simulated_app(config, tight, machine, param.seed).checkpoints_written;
  EXPECT_LE(tight_count, loose_count);
}

INSTANTIATE_TEST_SUITE_P(
    Caps, OverheadCapSweep,
    ::testing::Values(CapCase{0.01, "summit", 1}, CapCase{0.02, "summit", 2},
                      CapCase{0.05, "summit", 3}, CapCase{0.10, "summit", 4},
                      CapCase{0.20, "summit", 5}, CapCase{0.30, "summit", 6},
                      CapCase{0.05, "institutional", 7},
                      CapCase{0.10, "institutional", 8},
                      CapCase{0.20, "institutional", 9}),
    [](const ::testing::TestParamInfo<CapCase>& info) {
      return std::string(info.param.machine) + "_cap" +
             std::to_string(static_cast<int>(info.param.cap * 100)) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace ff::ckpt
