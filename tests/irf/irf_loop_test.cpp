#include "irf/irf_loop.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ff::irf {
namespace {

IrfLoopParams fast_params() {
  IrfLoopParams params;
  params.irf.iterations = 2;
  params.irf.forest.n_trees = 15;
  params.irf.forest.tree.max_depth = 6;
  return params;
}

TEST(Dataset, LeaveOneOutShapes) {
  CensusConfig config;
  config.samples = 50;
  config.features = 6;
  const CensusDataset census = make_census_dataset(config, 1);
  const Dataset::LooView view = census.data.leave_one_out(2);
  EXPECT_EQ(view.predictors.cols(), 5u);
  EXPECT_EQ(view.y.size(), 50u);
  EXPECT_EQ(view.predictor_names.size(), 5u);
  EXPECT_EQ(view.y, census.data.x.column(2));
  EXPECT_THROW(census.data.leave_one_out(6), Error);
}

TEST(Dataset, TableRoundTrip) {
  CensusConfig config;
  config.samples = 20;
  config.features = 5;
  const CensusDataset census = make_census_dataset(config, 2);
  const Dataset reparsed = Dataset::from_table(census.data.to_table());
  EXPECT_EQ(reparsed.feature_names, census.data.feature_names);
  ASSERT_EQ(reparsed.samples(), census.data.samples());
  for (size_t s = 0; s < reparsed.samples(); ++s) {
    for (size_t f = 0; f < reparsed.features(); ++f) {
      EXPECT_DOUBLE_EQ(reparsed.x.at(s, f), census.data.x.at(s, f));
    }
  }
}

TEST(Census, GeneratorShapeAndDeterminism) {
  CensusConfig config;
  config.samples = 100;
  config.features = 16;
  const CensusDataset a = make_census_dataset(config, 5);
  const CensusDataset b = make_census_dataset(config, 5);
  EXPECT_EQ(a.data.samples(), 100u);
  EXPECT_EQ(a.data.features(), 16u);
  EXPECT_FALSE(a.true_edges.empty());
  EXPECT_DOUBLE_EQ(a.data.x.at(3, 7), b.data.x.at(3, 7));
  EXPECT_EQ(a.true_edges, b.true_edges);
  const CensusDataset c = make_census_dataset(config, 6);
  EXPECT_NE(a.data.x.at(3, 7), c.data.x.at(3, 7));
  CensusConfig bad;
  bad.features = 2;
  EXPECT_THROW(make_census_dataset(bad, 1), ValidationError);
}

TEST(Census, PlantedChildrenCorrelateWithParents) {
  CensusConfig config;
  config.samples = 300;
  config.features = 12;
  const CensusDataset census = make_census_dataset(config, 7);
  ASSERT_FALSE(census.true_edges.empty());
  const auto [parent, child] = census.true_edges[0];
  const double r = pearson(census.data.x.column(parent), census.data.x.column(child));
  EXPECT_GT(std::abs(r), 0.4);
}

TEST(IrfLoop, AdjacencyShapeAndDiagonal) {
  CensusConfig config;
  config.samples = 120;
  config.features = 8;
  const CensusDataset census = make_census_dataset(config, 3);
  const IrfLoopResult result = run_irf_loop(census.data, fast_params(), 17);
  EXPECT_EQ(result.adjacency.rows(), 8u);
  EXPECT_EQ(result.adjacency.cols(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(result.adjacency.at(i, i), 0.0);
  // Row normalization: each target column's incoming weights sum to ~1
  // (or 0 when a target had no splits at all).
  for (size_t target = 0; target < 8; ++target) {
    double total = 0;
    for (size_t source = 0; source < 8; ++source) {
      total += result.adjacency.at(source, target);
    }
    EXPECT_TRUE(std::abs(total - 1.0) < 1e-9 || total == 0.0) << target;
  }
}

TEST(IrfLoop, RecoversPlantedEdges) {
  CensusConfig config;
  config.samples = 250;
  config.features = 10;
  config.planted_fraction = 0.2;
  const CensusDataset census = make_census_dataset(config, 11);
  // Recovery needs a real fit: more trees and a third sharpening iteration
  // than the smoke-test params elsewhere in this file.
  IrfLoopParams params = fast_params();
  params.irf.iterations = 3;
  params.irf.forest.n_trees = 30;
  const IrfLoopResult result = run_irf_loop(census.data, params, 23);
  EXPECT_GE(edge_recovery(result, census.true_edges), 0.5);
}

/// Bitwise equality, so NaNs (e.g. undefined OOB R²) compare equal too.
void expect_bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i]), std::bit_cast<uint64_t>(b[i]))
        << "index " << i << ": " << a[i] << " vs " << b[i];
  }
}

// The engine's determinism guarantee: the worker count is not allowed to
// leak into the numbers. Serial, single-worker, and oversubscribed pools
// must produce bit-identical adjacency matrices and per-target OOB R².
TEST(IrfLoop, PoolSizeInvariance) {
  CensusConfig config;
  config.samples = 80;
  config.features = 6;
  const CensusDataset census = make_census_dataset(config, 41);
  const IrfLoopResult serial = run_irf_loop(census.data, fast_params(), 43);
  ThreadPool one(1);
  const IrfLoopResult with_one = run_irf_loop(census.data, fast_params(), 43, &one);
  ThreadPool eight(8);
  const IrfLoopResult with_eight =
      run_irf_loop(census.data, fast_params(), 43, &eight);
  for (const IrfLoopResult* result : {&with_one, &with_eight}) {
    for (size_t i = 0; i < 6; ++i) {
      for (size_t j = 0; j < 6; ++j) {
        EXPECT_EQ(std::bit_cast<uint64_t>(result->adjacency.at(i, j)),
                  std::bit_cast<uint64_t>(serial.adjacency.at(i, j)))
            << i << "," << j;
      }
    }
    expect_bits_equal(result->per_target_r2, serial.per_target_r2);
  }
}

TEST(IrfLoop, ParallelMatchesSerial) {
  CensusConfig config;
  config.samples = 80;
  config.features = 6;
  const CensusDataset census = make_census_dataset(config, 13);
  const IrfLoopResult serial = run_irf_loop(census.data, fast_params(), 29);
  ThreadPool pool(3);
  const IrfLoopResult parallel = run_irf_loop(census.data, fast_params(), 29, &pool);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(parallel.adjacency.at(i, j), serial.adjacency.at(i, j));
    }
  }
}

TEST(IrfLoop, MaxNormalization) {
  CensusConfig config;
  config.samples = 80;
  config.features = 6;
  const CensusDataset census = make_census_dataset(config, 19);
  IrfLoopParams params = fast_params();
  params.normalize = IrfLoopParams::Normalize::Max;
  const IrfLoopResult result = run_irf_loop(census.data, params, 31);
  double peak = 0;
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      peak = std::max(peak, result.adjacency.at(i, j));
    }
  }
  EXPECT_NEAR(peak, 1.0, 1e-9);
}

TEST(IrfLoop, TopEdgesSortedAndBounded) {
  CensusConfig config;
  config.samples = 80;
  config.features = 6;
  const CensusDataset census = make_census_dataset(config, 23);
  const IrfLoopResult result = run_irf_loop(census.data, fast_params(), 37);
  const auto edges = result.top_edges(5);
  EXPECT_LE(edges.size(), 5u);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i - 1].weight, edges[i].weight);
  }
  for (const auto& edge : edges) EXPECT_NE(edge.from, edge.to);
}

TEST(IrfLoop, RejectsSingleFeature) {
  Dataset tiny;
  tiny.x = DenseMatrix(10, 1);
  tiny.feature_names = {"only"};
  EXPECT_THROW(run_irf_loop(tiny, fast_params(), 1), Error);
}

}  // namespace
}  // namespace ff::irf
