#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "irf/forest.hpp"
#include "util/error.hpp"

namespace ff::irf {
namespace {

/// y = 3*x0 + noise; x1, x2 pure noise.
struct Toy {
  DenseMatrix x;
  std::vector<double> y;
};

Toy make_toy(size_t samples, uint64_t seed) {
  Rng rng(seed);
  Toy toy;
  toy.x = DenseMatrix(samples, 3);
  for (size_t i = 0; i < samples; ++i) {
    toy.x.at(i, 0) = rng.uniform(-1, 1);
    toy.x.at(i, 1) = rng.uniform(-1, 1);
    toy.x.at(i, 2) = rng.uniform(-1, 1);
    toy.y.push_back(3.0 * toy.x.at(i, 0) + 0.1 * rng.normal());
  }
  return toy;
}

TEST(DenseMatrix, AccessAndBounds) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = 7;
  EXPECT_EQ(m.column(1), (std::vector<double>{7, 1.5}));
  EXPECT_EQ(m.row(0), (std::vector<double>{1.5, 7, 1.5}));
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 3), Error);
}

TEST(DenseMatrix, DropColumn) {
  DenseMatrix m(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.at(r, c) = static_cast<double>(10 * r + c);
  }
  const DenseMatrix dropped = m.drop_column(1);
  EXPECT_EQ(dropped.cols(), 2u);
  EXPECT_EQ(dropped.at(1, 0), 10);
  EXPECT_EQ(dropped.at(1, 1), 12);
  EXPECT_THROW(m.drop_column(3), Error);
}

TEST(MatrixView, DropColumnRemapsWithoutCopy) {
  DenseMatrix m(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.at(r, c) = static_cast<double>(10 * r + c);
  }
  const MatrixView view = MatrixView::drop_column(m, 1);
  EXPECT_EQ(view.rows(), 2u);
  EXPECT_EQ(view.cols(), 2u);
  // Visible column 1 is storage column 2: same values as the copying drop.
  EXPECT_EQ(view.storage_column(0), 0u);
  EXPECT_EQ(view.storage_column(1), 2u);
  const DenseMatrix copied = m.drop_column(1);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(view.at(r, c), copied.at(r, c));
    }
  }
  EXPECT_EQ(view.column(1), copied.column(1));
  EXPECT_EQ(view.row(1), copied.row(1));
}

TEST(MatrixView, FitOnViewMatchesFitOnCopy) {
  const Toy toy = make_toy(150, 21);
  // Widen to 4 columns with a junk column 2 so dropping it is meaningful.
  DenseMatrix wide(150, 4);
  Rng noise(22);
  std::vector<double> y;
  for (size_t i = 0; i < 150; ++i) {
    wide.at(i, 0) = toy.x.at(i, 0);
    wide.at(i, 1) = toy.x.at(i, 1);
    wide.at(i, 2) = noise.uniform(-1, 1);
    wide.at(i, 3) = toy.x.at(i, 2);
    y.push_back(toy.y[i]);
  }
  ForestParams params;
  params.n_trees = 12;
  RandomForest on_view;
  on_view.fit(MatrixView::drop_column(wide, 2), y, params, 33);
  RandomForest on_copy;
  on_copy.fit(wide.drop_column(2), y, params, 33);
  EXPECT_EQ(on_view.importance(), on_copy.importance());
  EXPECT_EQ(on_view.oob_r2(), on_copy.oob_r2());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(on_view.predict_at(MatrixView::drop_column(wide, 2), i),
              on_copy.predict_at(wide.drop_column(2), i));
  }
}

TEST(RegressionTree, FitsSimpleSignal) {
  const Toy toy = make_toy(200, 1);
  std::vector<size_t> indices(200);
  std::iota(indices.begin(), indices.end(), 0);
  RegressionTree tree;
  Rng rng(2);
  TreeParams params;
  params.max_depth = 6;
  params.mtry = 3;
  tree.fit(toy.x, toy.y, indices, {}, params, rng);
  EXPECT_TRUE(tree.fitted());
  EXPECT_GT(tree.node_count(), 5u);
  // Prediction tracks the signal reasonably.
  double sse = 0;
  for (size_t i = 0; i < 200; ++i) {
    const double prediction = tree.predict(toy.x.row(i));
    sse += (prediction - toy.y[i]) * (prediction - toy.y[i]);
  }
  EXPECT_LT(sse / 200.0, 1.0);
  // The informative feature dominates importance.
  EXPECT_GT(tree.importance()[0], tree.importance()[1] * 5);
  EXPECT_GT(tree.importance()[0], tree.importance()[2] * 5);
}

TEST(RegressionTree, InputValidation) {
  RegressionTree tree;
  Rng rng(1);
  DenseMatrix x(3, 1);
  std::vector<double> wrong_y = {1.0};
  std::vector<size_t> indices = {0, 1, 2};
  EXPECT_THROW(tree.fit(x, wrong_y, indices, {}, {}, rng), Error);
  std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(tree.fit(x, y, {}, {}, {}, rng), Error);
  std::vector<double> bad_weights = {1.0, 2.0};
  EXPECT_THROW(tree.fit(x, y, indices, bad_weights, {}, rng), Error);
  EXPECT_THROW(tree.predict({0.0}), Error);  // not fitted
}

TEST(RegressionTree, ConstantTargetIsSingleLeaf) {
  DenseMatrix x(10, 2);
  std::vector<double> y(10, 5.0);
  std::vector<size_t> indices(10);
  std::iota(indices.begin(), indices.end(), 0);
  RegressionTree tree;
  Rng rng(3);
  tree.fit(x, y, indices, {}, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({0, 0}), 5.0);
}

TEST(RandomForest, BeatsSingleTreeOnNoise) {
  const Toy toy = make_toy(300, 4);
  ForestParams params;
  params.n_trees = 40;
  RandomForest forest;
  forest.fit(toy.x, toy.y, params, 5);
  EXPECT_EQ(forest.tree_count(), 40u);
  // OOB R² should be high for this easy signal.
  EXPECT_GT(forest.oob_r2(), 0.7);
  // Importance concentrates on feature 0 and is normalized.
  const auto& importance = forest.importance();
  EXPECT_GT(importance[0], 0.6);
  EXPECT_NEAR(importance[0] + importance[1] + importance[2], 1.0, 1e-9);
}

TEST(RandomForest, DeterministicForSeed) {
  const Toy toy = make_toy(100, 6);
  ForestParams params;
  params.n_trees = 10;
  RandomForest a;
  RandomForest b;
  a.fit(toy.x, toy.y, params, 9);
  b.fit(toy.x, toy.y, params, 9);
  EXPECT_EQ(a.importance(), b.importance());
  EXPECT_EQ(a.predict(toy.x.row(0)), b.predict(toy.x.row(0)));
}

TEST(RandomForest, SpanPredictMatchesVectorPredict) {
  const Toy toy = make_toy(120, 17);
  ForestParams params;
  params.n_trees = 10;
  RandomForest forest;
  forest.fit(toy.x, toy.y, params, 19);
  for (size_t i = 0; i < 20; ++i) {
    const std::vector<double> row = toy.x.row(i);
    EXPECT_EQ(forest.predict(row.data(), row.size()), forest.predict(row));
    EXPECT_EQ(forest.predict_at(toy.x, i), forest.predict(row));
  }
  const std::vector<double> all = forest.predict_all(toy.x);
  ASSERT_EQ(all.size(), 120u);
  EXPECT_EQ(all[7], forest.predict(toy.x.row(7)));
}

TEST(RandomForest, ParallelFitBitIdenticalToSerial) {
  const Toy toy = make_toy(200, 14);
  ForestParams params;
  params.n_trees = 16;
  RandomForest serial;
  serial.fit(toy.x, toy.y, params, 15);
  for (const size_t workers : {size_t{1}, size_t{4}}) {
    ThreadPool pool(workers);
    RandomForest parallel;
    parallel.fit(toy.x, toy.y, params, 15, {}, &pool);
    EXPECT_EQ(parallel.importance(), serial.importance());
    EXPECT_EQ(parallel.oob_r2(), serial.oob_r2());
    EXPECT_EQ(parallel.predict(toy.x.row(3)), serial.predict(toy.x.row(3)));
  }
}

TEST(RandomForest, FeatureWeightsSteerSplits) {
  const Toy toy = make_toy(200, 7);
  ForestParams params;
  params.n_trees = 20;
  params.tree.mtry = 1;  // forced choice makes weights decisive
  // Zero weight on the informative feature: the forest cannot use it.
  std::vector<double> anti_weights = {1e-9, 1.0, 1.0};
  RandomForest crippled;
  crippled.fit(toy.x, toy.y, params, 11, anti_weights);
  RandomForest free;
  free.fit(toy.x, toy.y, params, 11);
  EXPECT_LT(crippled.importance()[0], 0.3);
  EXPECT_GT(free.importance()[0], 0.6);
}

TEST(RandomForest, Validation) {
  RandomForest forest;
  DenseMatrix x(2, 1);
  std::vector<double> y = {1, 2};
  ForestParams zero_trees;
  zero_trees.n_trees = 0;
  EXPECT_THROW(forest.fit(x, y, zero_trees, 1), Error);
  EXPECT_THROW(forest.predict({1.0}), Error);  // unfitted
}

TEST(Irf, IterationsSharpenImportance) {
  const Toy toy = make_toy(250, 8);
  IrfParams params;
  params.iterations = 3;
  params.forest.n_trees = 25;
  params.forest.tree.mtry = 2;
  const IrfResult result = fit_irf(toy.x, toy.y, params, 13);
  ASSERT_EQ(result.importance_history.size(), 3u);
  // The informative feature's share does not shrink across iterations.
  EXPECT_GE(result.importance_history.back()[0],
            result.importance_history.front()[0] - 0.05);
  EXPECT_GT(result.importance()[0], 0.6);
  EXPECT_TRUE(result.final_forest.fitted());
  IrfParams bad;
  bad.iterations = 0;
  EXPECT_THROW(fit_irf(toy.x, toy.y, bad, 1), Error);
}

}  // namespace
}  // namespace ff::irf
