#include <gtest/gtest.h>

#include "irf/irf_loop.hpp"
#include "util/fs.hpp"

namespace ff::irf {
namespace {

IrfLoopResult small_network() {
  CensusConfig config;
  config.samples = 80;
  config.features = 6;
  const CensusDataset census = make_census_dataset(config, 3);
  IrfLoopParams params;
  params.irf.iterations = 2;
  params.irf.forest.n_trees = 10;
  return run_irf_loop(census.data, params, 9);
}

TEST(NetworkExport, AdjacencyTableShape) {
  const IrfLoopResult network = small_network();
  const Table table = adjacency_table(network);
  EXPECT_EQ(table.rows(), 6u);
  EXPECT_EQ(table.cols(), 7u);  // feature column + 6 targets
  EXPECT_EQ(table.column_names()[0], "feature");
  EXPECT_EQ(table.cell(2, 0), network.feature_names[2]);
  // Diagonal entries are zero.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(table.cell(i, i + 1), "0.0");
  }
}

TEST(NetworkExport, AdjacencyTableRoundTripsThroughCsv) {
  const IrfLoopResult network = small_network();
  TempDir dir;
  write_csv_file(adjacency_table(network), dir.file("network.csv"));
  const Table reloaded = read_csv_file(dir.file("network.csv"));
  for (size_t i = 0; i < 6; ++i) {
    const auto values = reloaded.column_as_double(network.feature_names[i]);
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(values[j], network.adjacency.at(j, i));
    }
  }
}

TEST(NetworkExport, EdgeTableThresholdAndOrder) {
  const IrfLoopResult network = small_network();
  const Table all_edges = edge_table(network, 0.0);
  const Table strong_edges = edge_table(network, 0.3);
  EXPECT_LE(strong_edges.rows(), all_edges.rows());
  // Sorted by descending weight.
  const auto weights = all_edges.column_as_double("weight");
  for (size_t i = 1; i < weights.size(); ++i) {
    EXPECT_GE(weights[i - 1], weights[i]);
  }
  for (double weight : strong_edges.column_as_double("weight")) {
    EXPECT_GE(weight, 0.3);
  }
  // No self-edges.
  for (size_t r = 0; r < all_edges.rows(); ++r) {
    EXPECT_NE(all_edges.cell(r, "from"), all_edges.cell(r, "to"));
  }
}

TEST(NetworkExport, EmptyThresholdAboveMaxGivesEmptyTable) {
  const IrfLoopResult network = small_network();
  EXPECT_EQ(edge_table(network, 2.0).rows(), 0u);
}

}  // namespace
}  // namespace ff::irf
