// The `subscribe` push path end to end through the real epoll server:
// gap-free per-campaign sequencing for well-behaved watchers, slow-consumer
// disconnects at the outbound high-water mark for stalled ones, and the
// headline scaling claim — a thousand idle watchers on a bounded thread
// count (fds, not threads). TraceStreamer::publish gives the tests a
// deterministic event source; the live scheduler-to-socket path is covered
// by service_crash_test's subscription drain.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/core.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "service/stream.hpp"
#include "service_test_util.hpp"
#include "util/fs.hpp"

namespace ff::service {
namespace {

using testing::StreamClient;
using testing::WireClient;
using testing::sliced_manifest;

// Sanitizer builds trade fleet size for instrumentation headroom; the
// plain build runs the full acceptance numbers.
#ifdef FF_SANITIZED_BUILD
constexpr size_t kWatcherFleet = 64;
constexpr size_t kIdleFleet = 256;
#else
constexpr size_t kWatcherFleet = 256;
constexpr size_t kIdleFleet = 1024;
#endif

/// The daemon stack with test-controlled server knobs.
struct Daemon {
  Daemon(const std::string& scratch, Server::Options server_options)
      : core({.root = scratch + "/campaigns", .workers = 2}),
        dispatcher(core),
        server(dispatcher,
               [&] {
                 server_options.unix_path = scratch + "/fairflowd.sock";
                 return server_options;
               }()) {
    server.start();
  }
  explicit Daemon(const std::string& scratch) : Daemon(scratch, {}) {}
  ~Daemon() {
    server.stop();
    core.stop();
  }

  ServiceCore core;
  Dispatcher dispatcher;
  Server server;
};

/// Submit a campaign over the wire and wait for it to finish, so tests
/// have a real campaign name to subscribe to.
void submit_and_drain(Daemon& daemon, const std::string& name) {
  WireClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());
  Json request = Json::object();
  request["cmd"] = "submit";
  request["id"] = int64_t{1};
  request["manifest"] = sliced_manifest(name);
  ASSERT_TRUE(client.call(request).get_or("ok", false));
  daemon.core.drain();
}

bool wait_until(const std::function<bool()>& done, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

size_t thread_count() {
  std::istringstream status(read_file("/proc/self/status"));
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::atoll(line.c_str() + 8));
    }
  }
  return 0;
}

/// Assert one received frame is a well-formed event frame for `campaign`
/// and return its seq.
uint64_t event_seq(const Json& frame, const std::string& campaign) {
  EXPECT_TRUE(frame.is_object()) << frame.dump();
  EXPECT_EQ(frame.get_or("stream", ""), "trace") << frame.dump();
  EXPECT_EQ(frame.get_or("campaign", ""), campaign) << frame.dump();
  EXPECT_TRUE(frame.contains("event")) << frame.dump();
  return static_cast<uint64_t>(frame["seq"].as_int());
}

TEST(ServerStream, SubscribeStreamsGapFreeEvents) {
  TempDir dir;
  Daemon daemon(dir.str());
  submit_and_drain(daemon, "watched");

  StreamClient watcher(daemon.server.unix_path());
  ASSERT_TRUE(watcher.connected());
  const Json reply = watcher.subscribe("watched", 7);
  ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();
  EXPECT_EQ(reply["id"].as_int(), 7);
  EXPECT_EQ(reply["campaign"].as_string(), "watched");
  EXPECT_TRUE(reply["subscribed"].as_bool());
  EXPECT_EQ(daemon.server.active_subscriptions(), 1u);

  // The first pushed frame is the subscription's own service.subscribe
  // event — the ring exists before the event publishes, so nothing is lost.
  const Json first = watcher.next_json();
  const uint64_t start = event_seq(first, "watched");
  EXPECT_EQ(first["event"]["event"].as_string(), "service.subscribe");

  constexpr int kEvents = 100;
  for (int i = 0; i < kEvents; ++i) {
    Json event = Json::object();
    event["event"] = "test.tick";
    event["i"] = int64_t{i};
    TraceStreamer::instance().publish("watched", event);
  }
  uint64_t expected = start;
  for (int i = 0; i < kEvents; ++i) {
    const Json frame = watcher.next_json();
    EXPECT_EQ(event_seq(frame, "watched"), ++expected) << frame.dump();
    EXPECT_EQ(frame["event"]["i"].as_int(), i) << frame.dump();
  }

  watcher.close_now();
  EXPECT_TRUE(wait_until(
      [&] { return daemon.server.active_subscriptions() == 0; }));
}

TEST(ServerStream, SubscribeUnknownCampaignIsNotFound) {
  TempDir dir;
  Daemon daemon(dir.str());

  StreamClient watcher(daemon.server.unix_path());
  ASSERT_TRUE(watcher.connected());
  const Json reply = watcher.subscribe("nope");
  ASSERT_TRUE(reply.is_object());
  EXPECT_FALSE(reply["ok"].as_bool());
  EXPECT_EQ(reply["error"]["code"].as_string(), "not-found");
  EXPECT_EQ(daemon.server.active_subscriptions(), 0u);

  // The refusal is a reply, not a disconnect: the connection still serves.
  Json ping = Json::object();
  ping["cmd"] = "ping";
  ASSERT_TRUE(watcher.send(ping));
  EXPECT_TRUE(watcher.next_json().get_or("ok", false));
}

TEST(ServerStream, ResubscribeReplacesTheFormerSubscription) {
  TempDir dir;
  Daemon daemon(dir.str());
  submit_and_drain(daemon, "first");
  submit_and_drain(daemon, "second");

  StreamClient watcher(daemon.server.unix_path());
  ASSERT_TRUE(watcher.connected());
  ASSERT_TRUE(watcher.subscribe("first").get_or("ok", false));
  event_seq(watcher.next_json(), "first");  // own subscribe event
  ASSERT_TRUE(watcher.subscribe("second", 2).get_or("ok", false));
  event_seq(watcher.next_json(), "second");

  // One connection holds at most one subscription.
  EXPECT_EQ(daemon.server.active_subscriptions(), 1u);

  // An event on the replaced campaign must NOT arrive; the next frame this
  // watcher sees is the `second` event published after it.
  Json stale = Json::object();
  stale["event"] = "test.stale";
  TraceStreamer::instance().publish("first", stale);
  Json fresh = Json::object();
  fresh["event"] = "test.fresh";
  TraceStreamer::instance().publish("second", fresh);
  const Json frame = watcher.next_json();
  event_seq(frame, "second");
  EXPECT_EQ(frame["event"]["event"].as_string(), "test.fresh");
}

TEST(ServerStream, WatcherFleetSeesEveryEventGapFree) {
  TempDir dir;
  Daemon daemon(dir.str());
  submit_and_drain(daemon, "fleet");

  const size_t threads_before = thread_count();
  std::vector<std::unique_ptr<StreamClient>> fleet;
  for (size_t i = 0; i < kWatcherFleet; ++i) {
    fleet.push_back(
        std::make_unique<StreamClient>(daemon.server.unix_path()));
    ASSERT_TRUE(fleet.back()->connected()) << "watcher " << i;
    ASSERT_TRUE(fleet.back()->subscribe("fleet").get_or("ok", false))
        << "watcher " << i;
  }
  ASSERT_EQ(daemon.server.active_subscriptions(), kWatcherFleet);
  // Watchers cost fds, not threads.
  EXPECT_EQ(thread_count(), threads_before);

  constexpr int kEvents = 50;
  for (int i = 0; i < kEvents; ++i) {
    Json event = Json::object();
    event["event"] = "test.tick";
    event["i"] = int64_t{i};
    TraceStreamer::instance().publish("fleet", event);
  }

  // Every watcher sees a strictly contiguous seq run (its own attach point
  // onward: later subscribe events plus all fifty ticks), ending at the
  // final tick. A single ring eviction or reordering breaks the chain.
  for (size_t c = 0; c < fleet.size(); ++c) {
    uint64_t previous = 0;
    int last_tick = -1;
    while (last_tick < kEvents - 1) {
      const Json frame = fleet[c]->next_json();
      const uint64_t seq = event_seq(frame, "fleet");
      if (previous != 0) {
        ASSERT_EQ(seq, previous + 1)
            << "watcher " << c << " gap: " << frame.dump();
      }
      previous = seq;
      if (frame["event"].get_or("event", "") == "test.tick") {
        const int tick = static_cast<int>(frame["event"]["i"].as_int());
        ASSERT_EQ(tick, last_tick + 1) << "watcher " << c;
        last_tick = tick;
      }
    }
  }
}

TEST(ServerStream, StalledWatchersAreDroppedAtTheHighWaterMark) {
  constexpr size_t kStalled = 8;
  constexpr size_t kFast = 4;
  constexpr int kEvents = 200;
  const std::string padding(8 * 1024, 'p');  // fat frames fill buffers fast

  TempDir dir;
  Server::Options options;
  options.out_hwm_bytes = 256 * 1024;
  Daemon daemon(dir.str(), options);
  submit_and_drain(daemon, "hose");

  std::vector<std::unique_ptr<StreamClient>> stalled;
  for (size_t i = 0; i < kStalled; ++i) {
    stalled.push_back(
        std::make_unique<StreamClient>(daemon.server.unix_path()));
    ASSERT_TRUE(stalled.back()->connected());
    ASSERT_TRUE(stalled.back()->subscribe("hose").get_or("ok", false));
  }

  // Fast watchers read continuously on their own threads and must stay
  // gap-free while the stalled ones back up and get cut.
  std::vector<std::unique_ptr<StreamClient>> fast;
  std::vector<std::thread> readers;
  std::atomic<int> gap_free_fast{0};
  for (size_t i = 0; i < kFast; ++i) {
    fast.push_back(std::make_unique<StreamClient>(daemon.server.unix_path()));
    ASSERT_TRUE(fast.back()->connected());
    ASSERT_TRUE(fast.back()->subscribe("hose").get_or("ok", false));
  }
  for (size_t i = 0; i < kFast; ++i) {
    readers.emplace_back([&, i] {
      uint64_t previous = 0;
      int last_tick = -1;
      while (last_tick < kEvents - 1) {
        const Json frame = fast[i]->next_json();
        if (!frame.is_object() || frame.get_or("stream", "") != "trace") {
          return;  // dropped or malformed: this watcher fails the count
        }
        const uint64_t seq = static_cast<uint64_t>(frame["seq"].as_int());
        if (previous != 0 && seq != previous + 1) return;
        previous = seq;
        if (frame["event"].get_or("event", "") == "test.tick") {
          last_tick = static_cast<int>(frame["event"]["i"].as_int());
        }
      }
      gap_free_fast.fetch_add(1);
    });
  }

  for (int i = 0; i < kEvents; ++i) {
    Json event = Json::object();
    event["event"] = "test.tick";
    event["i"] = int64_t{i};
    event["pad"] = padding;
    TraceStreamer::instance().publish("hose", event);
    // Pace the hose so the *fast* watchers' sockets never back up — only
    // the deliberately-unread ones should cross the high-water mark.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(gap_free_fast.load(), static_cast<int>(kFast));

  // Every stalled watcher crossed the mark: detached from the stream and
  // queued the documented error frame.
  ASSERT_TRUE(wait_until(
      [&] { return daemon.server.slow_consumer_disconnects() >= kStalled; }))
      << daemon.server.slow_consumer_disconnects();
  EXPECT_EQ(daemon.server.active_subscriptions(), kFast);

  // When a stalled watcher finally drains its socket it finds whole frames
  // (no torn JSON), a final slow-consumer error frame, then EOF.
  for (size_t i = 0; i < kStalled; ++i) {
    Json last;
    std::string line;
    while (stalled[i]->next_line(line)) {
      ASSERT_NO_THROW(last = Json::parse(line)) << "watcher " << i;
    }
    ASSERT_TRUE(last.is_object()) << "watcher " << i;
    EXPECT_FALSE(last.get_or("ok", true)) << last.dump();
    EXPECT_EQ(last["error"]["code"].as_string(), "slow-consumer")
        << "watcher " << i << ": " << last.dump();
  }
}

TEST(ServerStream, ThousandIdleWatchersOnABoundedThreadCount) {
  TempDir dir;
  Daemon daemon(dir.str());
  submit_and_drain(daemon, "popular");

  const size_t threads_before = thread_count();
  ASSERT_GT(threads_before, 0u);

  std::vector<std::unique_ptr<StreamClient>> fleet;
  for (size_t i = 0; i < kIdleFleet; ++i) {
    fleet.push_back(
        std::make_unique<StreamClient>(daemon.server.unix_path()));
    ASSERT_TRUE(fleet.back()->connected()) << "watcher " << i;
    ASSERT_TRUE(fleet.back()->subscribe("popular").get_or("ok", false))
        << "watcher " << i;
  }

  // The acceptance bar: the whole fleet is live (subscribed, fds open) and
  // the process did not grow a single thread for it.
  EXPECT_EQ(daemon.server.active_subscriptions(), kIdleFleet);
  EXPECT_GE(daemon.server.open_connections(), kIdleFleet);
  EXPECT_EQ(thread_count(), threads_before);

  // The daemon still serves requests promptly underneath the fleet.
  WireClient prober(daemon.server.unix_path());
  ASSERT_TRUE(prober.connected());
  Json ping = Json::object();
  ping["cmd"] = "ping";
  EXPECT_TRUE(prober.call(ping).get_or("ok", false));

  // One published event reaches both ends of the fleet (first and last
  // subscriber), proving delivery scales past the fd count, not just accept.
  Json event = Json::object();
  event["event"] = "test.tick";
  TraceStreamer::instance().publish("popular", event);
  for (size_t c : {size_t{0}, kIdleFleet - 1}) {
    for (;;) {
      const Json frame = fleet[c]->next_json();
      ASSERT_TRUE(frame.is_object()) << "watcher " << c;
      event_seq(frame, "popular");
      if (frame["event"].get_or("event", "") == "test.tick") break;
    }
  }

  for (auto& watcher : fleet) watcher->close_now();
  EXPECT_TRUE(wait_until([&] {
    return daemon.server.active_subscriptions() == 0 &&
           daemon.server.open_connections() <= 1;
  }));
}

TEST(ServerStream, SubscribedWatchersAreExemptFromTheIdleTimeout) {
  TempDir dir;
  Server::Options options;
  options.idle_timeout_s = 0.3;
  Daemon daemon(dir.str(), options);
  submit_and_drain(daemon, "patient");

  // An unsubscribed connection idling past the timeout is cut with the
  // documented error frame...
  StreamClient idle(daemon.server.unix_path());
  ASSERT_TRUE(idle.connected());
  Json ping = Json::object();
  ping["cmd"] = "ping";
  ASSERT_TRUE(idle.send(ping));
  ASSERT_TRUE(idle.next_json().get_or("ok", false));

  StreamClient watcher(daemon.server.unix_path());
  ASSERT_TRUE(watcher.connected());
  ASSERT_TRUE(watcher.subscribe("patient").get_or("ok", false));

  const Json cut = idle.next_json();  // blocks until the timeout fires
  ASSERT_TRUE(cut.is_object());
  EXPECT_EQ(cut["error"]["code"].as_string(), "idle-timeout");
  std::string leftover;
  EXPECT_FALSE(idle.next_line(leftover));  // then EOF
  EXPECT_GE(daemon.server.timeout_disconnects(), 1u);

  // ...while the subscriber, idle just as long, is still attached and
  // still receives events: idle watching is its whole job.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(daemon.server.active_subscriptions(), 1u);
  Json event = Json::object();
  event["event"] = "test.tick";
  TraceStreamer::instance().publish("patient", event);
  for (;;) {
    const Json frame = watcher.next_json();
    ASSERT_TRUE(frame.is_object());
    if (frame["event"].get_or("event", "") == "test.tick") break;
  }
}

}  // namespace
}  // namespace ff::service
