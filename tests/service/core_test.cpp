#include "service/core.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "service/session.hpp"
#include "service_test_util.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::service {
namespace {

using testing::run_batch_reference;
using testing::sliced_manifest;

CampaignConfig config_for(const Json& manifest) {
  CampaignConfig config;
  config.manifest = manifest;
  return config;  // defaults: first group, seed 5, default model/policies
}

void expect_byte_identical_to_batch(const std::string& service_dir,
                                    const Json& manifest,
                                    const std::string& scratch_root) {
  const std::string batch_dir = run_batch_reference(manifest, scratch_root);
  EXPECT_EQ(read_file(service_dir + "/.campaign/journal.jsonl"),
            read_file(batch_dir + "/.campaign/journal.jsonl"))
      << service_dir;
  EXPECT_EQ(read_file(service_dir + "/.campaign/status.json"),
            read_file(batch_dir + "/.campaign/status.json"))
      << service_dir;
}

TEST(ServiceCore, SingleCampaignMatchesBatchByteForByte) {
  TempDir dir;
  const Json manifest = sliced_manifest("solo");
  ServiceCore::Options options;
  options.root = dir.file("service");
  options.workers = 1;
  ServiceCore core(options);

  const std::string name = core.submit(config_for(manifest), "s1");
  EXPECT_EQ(name, "solo");
  core.drain();

  const CampaignInfo info = core.info(name);
  EXPECT_EQ(info.state, "done");
  EXPECT_EQ(info.run_count, 6u);
  EXPECT_EQ(info.counts.done, 6u);
  EXPECT_GT(info.allocations, 1u);  // the walltime really forced slicing
  EXPECT_EQ(info.owner, "s1");

  expect_byte_identical_to_batch(info.directory, manifest, dir.file("batch"));
}

TEST(ServiceCore, ConcurrentCampaignsStayByteIdentical) {
  TempDir dir;
  ServiceCore::Options options;
  options.root = dir.file("service");
  options.workers = 2;
  ServiceCore core(options);

  // Four tenants, four campaigns, one shared cluster. Each campaign's
  // provenance must come out exactly as if it ran alone in batch.
  std::vector<Json> manifests;
  for (int i = 0; i < 4; ++i) {
    manifests.push_back(sliced_manifest("tenant-" + std::to_string(i)));
    core.submit(config_for(manifests.back()), "s" + std::to_string(i + 1));
  }
  core.drain();

  for (int i = 0; i < 4; ++i) {
    const CampaignInfo info = core.info("tenant-" + std::to_string(i));
    EXPECT_EQ(info.state, "done") << info.name << ": " << info.error;
    EXPECT_EQ(info.counts.done, 6u);
    expect_byte_identical_to_batch(info.directory, manifests[i],
                                   dir.file("batch-" + std::to_string(i)));
  }
  EXPECT_EQ(core.list().size(), 4u);
}

TEST(ServiceCore, LintRejectionLeavesNoDirectory) {
  TempDir dir;
  ServiceCore::Options options;
  options.root = dir.file("service");
  ServiceCore core(options);

  // An args_template referencing an undeclared parameter is FF201 — a
  // manifest the Campaign constructor accepts but the preflight lint in
  // CampaignEndpoint::create rejects, *before* any directory exists.
  Json manifest = sliced_manifest("rejected");
  manifest["app"]["args_template"] = "--y {{undeclared}}";
  EXPECT_THROW(core.submit(config_for(manifest), "s1"), ValidationError);
  EXPECT_FALSE(std::filesystem::exists(dir.file("service/rejected")));
  EXPECT_THROW(core.info("rejected"), NotFoundError);

  // A manifest the Campaign constructor itself refuses (empty value list)
  // is equally invisible on disk.
  Json broken = sliced_manifest("broken");
  broken["groups"][0]["sweeps"][0]["parameters"][0]["values"] = Json::array();
  EXPECT_THROW(core.submit(config_for(broken), "s1"), ValidationError);
  EXPECT_FALSE(std::filesystem::exists(dir.file("service/broken")));
}

TEST(ServiceCore, DuplicateNameIsConflict) {
  TempDir dir;
  ServiceCore::Options options;
  options.root = dir.file("service");
  ServiceCore core(options);
  core.submit(config_for(sliced_manifest("dup")), "s1");
  EXPECT_THROW(core.submit(config_for(sliced_manifest("dup")), "s2"),
               StateError);
  core.drain();
}

TEST(ServiceCore, QuotaBoundsCampaignsPerSession) {
  TempDir dir;
  ServiceCore::Options options;
  options.root = dir.file("service");
  options.max_campaigns_per_session = 2;
  ServiceCore core(options);

  core.submit(config_for(sliced_manifest("q0")), "s1");
  core.submit(config_for(sliced_manifest("q1")), "s1");
  EXPECT_THROW(core.submit(config_for(sliced_manifest("q2")), "s1"),
               QuotaError);
  // The quota is per session, not global.
  core.submit(config_for(sliced_manifest("q2")), "s2");
  core.drain();
  EXPECT_EQ(core.list().size(), 3u);
}

TEST(ServiceCore, CancelThenResumeStillMatchesBatch) {
  TempDir dir;
  const Json manifest = sliced_manifest("comeback");
  ServiceCore::Options options;
  options.root = dir.file("service");
  options.workers = 1;
  ServiceCore core(options);

  core.submit(config_for(manifest), "s1");
  // Lands either while the first slice is in flight (parks after its
  // allocation — the journal commit point) or while queued; both paths
  // must leave a resumable campaign.
  EXPECT_TRUE(core.cancel("comeback"));
  core.drain();
  const std::string state_after_cancel = core.info("comeback").state;
  ASSERT_TRUE(state_after_cancel == "cancelled" ||
              state_after_cancel == "done")
      << state_after_cancel;

  if (state_after_cancel == "cancelled") {
    EXPECT_FALSE(core.cancel("comeback"));  // already parked
    core.resume("comeback");
    core.drain();
  }
  const CampaignInfo info = core.info("comeback");
  EXPECT_EQ(info.state, "done") << info.error;
  // The interruption must be invisible in the provenance.
  expect_byte_identical_to_batch(info.directory, manifest, dir.file("batch"));
}

TEST(ServiceCore, ResumeRejectsTerminalAndScheduledStates) {
  TempDir dir;
  ServiceCore::Options options;
  options.root = dir.file("service");
  ServiceCore core(options);
  core.submit(config_for(sliced_manifest("r")), "s1");
  core.drain();
  EXPECT_THROW(core.resume("r"), StateError);       // done
  EXPECT_THROW(core.resume("ghost"), NotFoundError);  // nowhere on disk
}

TEST(ServiceCore, AdoptsCampaignFromDiskAfterRestart) {
  TempDir dir;
  const Json manifest = sliced_manifest("orphan");
  const std::string root = dir.file("service");
  std::string directory;
  {
    ServiceCore::Options options;
    options.root = root;
    options.workers = 1;
    ServiceCore first(options);
    first.submit(config_for(manifest), "s1");
    EXPECT_TRUE(first.cancel("orphan"));
    first.drain();
    directory = first.info("orphan").directory;
    // first is destroyed here — the "daemon" goes away mid-campaign.
  }

  ServiceCore::Options options;
  options.root = root;
  options.workers = 1;
  ServiceCore second(options);
  EXPECT_THROW(second.info("orphan"), NotFoundError);  // not in memory
  second.resume("orphan");  // adopted: endpoint + service.json sidecar
  second.drain();
  const CampaignInfo info = second.info("orphan");
  EXPECT_EQ(info.state, "done") << info.error;
  EXPECT_EQ(info.owner, "");  // recovered; no live session owns it
  EXPECT_EQ(info.counts.done, 6u);
  // Even across a process boundary the journal is byte-identical to an
  // uninterrupted batch run (the crash_resume guarantee, via the service).
  expect_byte_identical_to_batch(info.directory, manifest, dir.file("batch"));
}

TEST(ServiceCore, SubmitAfterStopIsRefused) {
  TempDir dir;
  ServiceCore::Options options;
  options.root = dir.file("service");
  ServiceCore core(options);
  core.stop();
  EXPECT_THROW(core.submit(config_for(sliced_manifest("late")), "s1"),
               StateError);
}

TEST(ServiceCore, TraceTailRecordsLifecycleEvents) {
  TempDir dir;
  ServiceCore::Options options;
  options.root = dir.file("service");
  options.workers = 1;
  ServiceCore core(options);
  core.submit(config_for(sliced_manifest("traced")), "s1");
  core.drain();

  bool saw_submit = false, saw_done = false, saw_slice = false;
  for (const Json& event : core.trace_tail(256)) {
    const std::string kind = event.get_or("event", "");
    if (kind == "service.campaign.submit") saw_submit = true;
    if (kind == "service.slice") saw_slice = true;
    if (kind == "service.campaign.state" &&
        event.get_or("state", "") == "done") {
      saw_done = true;
    }
  }
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_done);
  // The tail is bounded and `count` truncates from the oldest side.
  EXPECT_LE(core.trace_tail(3).size(), 3u);
}

TEST(CampaignConfigFromRequest, ParsesKnobsAndValidates) {
  Json request = Json::parse(R"({
    "cmd": "submit", "manifest": {"name": "m"},
    "group": "g1",
    "duration": {"median_s": 120.0, "sigma": 0.2, "seed": 11},
    "execution": {"nodes": 3, "walltime_s": 900.0},
    "retry": {"max_attempts": 2},
    "journal": {"group_commit": 4, "checkpoint_every": 2}
  })");
  const CampaignConfig config = campaign_config_from_request(request);
  EXPECT_EQ(config.group, "g1");
  EXPECT_DOUBLE_EQ(config.durations.median_s, 120.0);
  EXPECT_DOUBLE_EQ(config.durations.sigma, 0.2);
  EXPECT_EQ(config.duration_seed, 11u);
  ASSERT_TRUE(config.nodes.has_value());
  EXPECT_EQ(*config.nodes, 3);
  ASSERT_TRUE(config.walltime_s.has_value());
  EXPECT_DOUBLE_EQ(*config.walltime_s, 900.0);
  EXPECT_EQ(config.retry.max_attempts, 2u);
  EXPECT_EQ(config.journal.group_commit, 4u);
  EXPECT_EQ(config.journal.checkpoint_every, 2u);

  EXPECT_THROW(campaign_config_from_request(Json::parse(R"({"cmd":"submit"})")),
               ValidationError);
  EXPECT_THROW(campaign_config_from_request(Json::parse(
                   R"({"manifest": {}, "duration": {"median_s": -1}})")),
               ValidationError);
  EXPECT_THROW(campaign_config_from_request(Json::parse(
                   R"({"manifest": {}, "execution": {"nodes": 0}})")),
               ValidationError);
  EXPECT_THROW(campaign_config_from_request(Json::parse(
                   R"({"manifest": {}, "journal": {"group_commit": 0}})")),
               ValidationError);
}

// The `lint` command is the CLI's workspace engine behind the wire: the
// dispatcher's diagnostics, dumped compact one per line (what fairflow-ctl
// prints), must be byte-identical to `fairflow-lint --workspace
// --format=jsonl` over the same tree.
TEST(ServiceCore, LintWorkspaceMatchesTheCliEngineByteForByte) {
  TempDir dir;
  const std::string workspace = dir.file("ws");
  std::filesystem::create_directories(workspace);
  Json manifest = sliced_manifest("wsdemo");
  manifest["model"] = std::string("nowhere-model");  // FF601 in workspace mode
  write_file(workspace + "/campaign.json", manifest.pretty() + "\n");
  write_file(workspace + "/plane.json", R"({
    "graph": {
      "name": "ws-plane",
      "components": [
        {"id": "src", "kind": "executable",
         "ports": [{"name": "out", "direction": "out", "rate_hz": 100}]},
        {"id": "worker", "kind": "service", "service_hz": 50,
         "ports": [{"name": "in", "direction": "in"}]}
      ],
      "edges": [{"from": "src.out", "to": "worker.in"}]
    },
    "queues": []
  })");

  ServiceCore::Options options;
  options.root = dir.file("service");
  ServiceCore core(options);
  Dispatcher dispatcher(core);
  Json request = Json::object();
  request["cmd"] = std::string("lint");
  request["id"] = int64_t{7};
  request["workspace"] = workspace;
  const Json reply = dispatcher.handle("s1", request);
  ASSERT_TRUE(reply.get_or("ok", false)) << reply.pretty();

  std::string over_the_wire;
  for (const Json& diagnostic : reply["diagnostics"].as_array()) {
    over_the_wire += diagnostic.dump() + "\n";
  }

  lint::WorkspaceAnalyzer analyzer;  // what the CLI runs
  lint::LintReport report = analyzer.analyze(workspace);
  report.sort();
  EXPECT_EQ(over_the_wire, report.render_jsonl());
  EXPECT_EQ(reply["errors"].as_int(),
            static_cast<int64_t>(report.count(lint::Severity::Error)));
  EXPECT_EQ(reply["warnings"].as_int(),
            static_cast<int64_t>(report.count(lint::Severity::Warning)));
  EXPECT_EQ(reply["artifacts"].as_int(), 2);

  // A second request replays everything from the shared digest cache.
  const Json again = dispatcher.handle("s1", request);
  EXPECT_EQ(again["cached"].as_int(), 2) << again.pretty();
  EXPECT_EQ(again["reparsed"].as_int(), 0);

  Json missing = request;
  missing["workspace"] = dir.file("nope");
  const Json error = dispatcher.handle("s1", missing);
  EXPECT_FALSE(error.get_or("ok", false));
  EXPECT_EQ(error["error"].get_or("code", std::string{}), "not-found");
}

TEST(ServiceCore, SubmitPreflightLintRejectsBeforeCreatingAnything) {
  TempDir dir;
  ServiceCore::Options options;
  options.root = dir.file("service");
  ServiceCore core(options);

  Json manifest = sliced_manifest("badcase");
  // Reference a parameter no sweep declares: the template can never render
  // (FF201) — a defect only the lint catches, not manifest deserialization.
  std::string text = manifest.dump();
  const size_t at = text.find("--x {{x}}");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 9, "--x {{x}} --y {{y}}");
  manifest = Json::parse(text);

  try {
    core.submit(config_for(manifest), "s1");
    FAIL() << "expected the preflight lint to reject the manifest";
  } catch (const ValidationError& error) {
    EXPECT_NE(std::string(error.what()).find("preflight lint"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("FF201"), std::string::npos)
        << error.what();
  }
  // Nothing was created: no endpoint directory, no campaign registered.
  EXPECT_FALSE(std::filesystem::exists(dir.file("service") + "/badcase"));
  EXPECT_THROW(core.info("badcase"), NotFoundError);
  // The memoized verdict rejects the resubmission too.
  EXPECT_THROW(core.submit(config_for(manifest), "s1"), ValidationError);
}

}  // namespace
}  // namespace ff::service
