// Daemon lifecycle under fire (ctest -L crash): a real fairflowd process
// is forked, fed a campaign over its socket, and SIGTERMed mid-execution.
// The drain contract: in-flight allocation slices finish (journal commit
// points), the process exits 0, and what is left on disk resumes to a
// result byte-identical to an uninterrupted batch run.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "service/core.hpp"
#include "service_test_util.hpp"
#include "util/fs.hpp"

namespace ff::service {
namespace {

using testing::WireClient;
using testing::run_batch_reference;
using testing::sliced_manifest;

pid_t spawn_fairflowd(const std::string& socket_path,
                      const std::string& root) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(FF_FAIRFLOWD_BIN, "fairflowd", "--socket", socket_path.c_str(),
          "--root", root.c_str(), "--workers", "1", (char*)nullptr);
    _exit(127);  // exec failed
  }
  return pid;
}

bool wait_for_socket(const std::string& socket_path, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    WireClient probe(socket_path);
    if (probe.connected()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

int wait_for_exit(pid_t pid, int timeout_ms = 60000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  kill(pid, SIGKILL);  // do not leak a daemon into the test harness
  waitpid(pid, &status, 0);
  ADD_FAILURE() << "fairflowd did not exit within the drain timeout";
  return status;
}

TEST(ServiceCrash, SigtermDrainsInFlightRunsAndLeavesResumableState) {
  TempDir dir;
  const std::string socket_path = dir.file("fairflowd.sock");
  const std::string root = dir.file("campaigns");
  // 24 runs of ~300 s against an 800 s walltime: far more allocation
  // slices than can complete before the SIGTERM below lands.
  const Json manifest = sliced_manifest("durable", 24);

  const pid_t pid = spawn_fairflowd(socket_path, root);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << "daemon never listened";

  {
    WireClient client(socket_path);
    ASSERT_TRUE(client.connected());
    Json request = Json::object();
    request["cmd"] = "submit";
    request["id"] = int64_t{1};
    request["manifest"] = manifest;
    const Json reply = client.call(request);
    ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();
    EXPECT_EQ(reply["runs"].as_int(), 24);
  }

  // Terminate mid-campaign. The daemon must drain (finish the granted
  // slice, park the rest) and exit cleanly — not abort, not hang.
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  const int status = wait_for_exit(pid);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // What SIGTERM left behind: an endpoint, a journal whose first line is
  // the header, and the service.json sidecar — everything resume needs.
  const std::string journal_path = root + "/durable/.campaign/journal.jsonl";
  ASSERT_TRUE(std::filesystem::exists(journal_path));
  ASSERT_TRUE(
      std::filesystem::exists(root + "/durable/.campaign/service.json"));
  const std::string journal_text = read_file(journal_path);
  ASSERT_FALSE(journal_text.empty());
  const Json header =
      Json::parse(journal_text.substr(0, journal_text.find('\n')));
  EXPECT_EQ(header.get_or("campaign", ""), "durable");

  // A fresh service (the restarted daemon, in-process here) adopts the
  // campaign from disk and finishes it. The kill must be invisible in the
  // final provenance.
  ServiceCore::Options options;
  options.root = root;
  options.workers = 1;
  ServiceCore revived(options);
  revived.resume("durable");
  revived.drain();
  const CampaignInfo info = revived.info("durable");
  ASSERT_EQ(info.state, "done") << info.error;
  EXPECT_EQ(info.counts.done, 24u);

  const std::string batch_dir = run_batch_reference(manifest, dir.file("batch"));
  EXPECT_EQ(read_file(journal_path),
            read_file(batch_dir + "/.campaign/journal.jsonl"));
  EXPECT_EQ(read_file(root + "/durable/.campaign/status.json"),
            read_file(batch_dir + "/.campaign/status.json"));
}

TEST(ServiceCrash, SigtermDuringActiveSubscriptionDrainsCleanly) {
  TempDir dir;
  const std::string socket_path = dir.file("watched.sock");
  const std::string root = dir.file("campaigns");
  const Json manifest = sliced_manifest("observed", 24);

  const pid_t pid = spawn_fairflowd(socket_path, root);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << "daemon never listened";

  {
    WireClient client(socket_path);
    ASSERT_TRUE(client.connected());
    Json request = Json::object();
    request["cmd"] = "submit";
    request["id"] = int64_t{1};
    request["manifest"] = manifest;
    const Json reply = client.call(request);
    ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();
  }

  // Two live subscriptions when the SIGTERM lands: one reading, one that
  // never reads (its frames are sitting half-delivered in socket buffers).
  testing::StreamClient watcher(socket_path);
  ASSERT_TRUE(watcher.connected());
  ASSERT_TRUE(watcher.subscribe("observed").get_or("ok", false));
  const Json first = watcher.next_json();  // own service.subscribe event
  ASSERT_TRUE(first.is_object());
  EXPECT_EQ(first.get_or("stream", ""), "trace") << first.dump();

  testing::StreamClient unread(socket_path);
  ASSERT_TRUE(unread.connected());
  ASSERT_TRUE(unread.subscribe("observed").get_or("ok", false));

  ASSERT_EQ(kill(pid, SIGTERM), 0);

  // Both watchers' streams end the documented way: whatever event frames
  // were in flight, then one shutting-down error frame, then EOF — never
  // a torn frame, never a silent hangup.
  for (testing::StreamClient* client : {&watcher, &unread}) {
    Json last;
    std::string line;
    while (client->next_line(line)) {
      last = Json::parse(line);  // a torn frame throws and fails the test
    }
    ASSERT_TRUE(last.is_object());
    EXPECT_FALSE(last.get_or("ok", true)) << last.dump();
    EXPECT_EQ(last["error"]["code"].as_string(), "shutting-down")
        << last.dump();
  }

  const int status = wait_for_exit(pid);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The drain left adoptable state behind, exactly as without watchers:
  // subscriptions are transport-side and must not perturb the journals.
  ASSERT_TRUE(
      std::filesystem::exists(root + "/observed/.campaign/service.json"));
  ServiceCore::Options options;
  options.root = root;
  options.workers = 1;
  ServiceCore revived(options);
  revived.resume("observed");
  revived.drain();
  const CampaignInfo info = revived.info("observed");
  ASSERT_EQ(info.state, "done") << info.error;
  EXPECT_EQ(info.counts.done, 24u);

  const std::string batch_dir =
      run_batch_reference(manifest, dir.file("batch"));
  EXPECT_EQ(read_file(root + "/observed/.campaign/journal.jsonl"),
            read_file(batch_dir + "/.campaign/journal.jsonl"));
  EXPECT_EQ(read_file(root + "/observed/.campaign/status.json"),
            read_file(batch_dir + "/.campaign/status.json"));
}

TEST(ServiceCrash, ClientSideShutdownCommandAlsoExitsZero) {
  TempDir dir;
  const std::string socket_path = dir.file("ctl.sock");
  const pid_t pid = spawn_fairflowd(socket_path, dir.file("campaigns"));
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_socket(socket_path));

  WireClient client(socket_path);
  ASSERT_TRUE(client.connected());
  Json shutdown = Json::object();
  shutdown["cmd"] = "shutdown";
  const Json reply = client.call(shutdown);
  ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();

  const int status = wait_for_exit(pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace ff::service
