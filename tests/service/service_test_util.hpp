#pragma once

// Shared helpers for the fairflowd test battery: a manifest factory whose
// walltime forces multi-slice execution, the batch-path reference runner
// (the byte-parity oracle), and a minimal blocking socket client.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "cheetah/campaign.hpp"
#include "cheetah/endpoint.hpp"
#include "savanna/campaign_runner.hpp"
#include "service/protocol.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ff::service::testing {

/// `runs` runs of ~300 s against an 800 s walltime: every allocation fits
/// only a couple of runs, so campaigns take several scheduler slices. 800
/// (not lower) because seed-5 sampling throws the occasional ~765 s
/// straggler — every run must still fit one allocation, or the campaign
/// legitimately ends with killed runs.
inline Json sliced_manifest(const std::string& name, int64_t runs = 6) {
  cheetah::AppSpec app;
  app.name = "toy";
  app.executable = "toy_exe";
  app.args_template = "--x {{x}}";
  cheetah::Campaign campaign(name, app);
  cheetah::Sweep sweep("xs");
  sweep.add(cheetah::Parameter::int_range("x", cheetah::ParamLayer::Application,
                                          0, runs - 1));
  cheetah::SweepGroup group("g1");
  group.add(std::move(sweep));
  group.set_nodes(1);
  group.set_walltime_s(800.0);
  campaign.add_group(std::move(group));
  return campaign.to_json();
}

/// The batch path, verbatim (the irf_census idiom): one uncapped
/// run_with_resubmission against a private simulation/tracker/journal,
/// identical duration sampling (seed 5). Returns the endpoint directory.
inline std::string run_batch_reference(const Json& manifest,
                                       const std::string& root) {
  cheetah::Campaign campaign = cheetah::Campaign::from_json(manifest);
  cheetah::CampaignEndpoint endpoint =
      cheetah::CampaignEndpoint::create(campaign, root);
  const cheetah::SweepGroup& group = campaign.groups().front();

  std::vector<sim::TaskSpec> tasks;
  std::vector<std::string> run_ids;
  for (const cheetah::RunSpec& run : group.generate()) {
    sim::TaskSpec task;
    task.id = run.id;
    run_ids.push_back(run.id);
    tasks.push_back(std::move(task));
  }
  sim::DurationModel durations;
  Rng rng(5);
  for (sim::TaskSpec& task : tasks) task.duration_s = durations.sample(rng);

  savanna::CampaignRunOptions options;
  options.execution.nodes = group.nodes();
  options.execution.walltime_s = group.walltime_s();

  sim::Simulation sim;
  savanna::RunTracker tracker;
  savanna::CampaignJournal journal = savanna::CampaignJournal::create(
      endpoint.journal_path(), campaign.name(), run_ids);
  savanna::run_with_resubmission(sim, tasks, options, &tracker, &journal);

  for (const sim::TaskSpec& task : tasks) {
    if (!tracker.has_run(task.id)) continue;
    const std::string state = tracker.status(task.id).state;
    cheetah::RunState mark = cheetah::RunState::Killed;
    if (state == "done") {
      mark = cheetah::RunState::Done;
    } else if (state == "failed" || state == "exhausted") {
      mark = cheetah::RunState::Failed;
    }
    endpoint.mark(task.id, mark);
  }
  endpoint.save();
  journal.close();
  return endpoint.directory();
}

/// Blocking client for subscription streams: same transport as WireClient
/// plus buffered line reading, because a watcher receives frames it never
/// asked for (pushed `event` frames) and a one-request/one-reply call()
/// would eat them. Also used by the hostile-input tests, which need raw
/// byte-level control plus the fd for socket-option abuse.
class StreamClient {
 public:
  explicit StreamClient(const std::string& unix_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~StreamClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  bool connected() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  bool send_raw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool send(const Json& request) { return send_raw(encode_frame(request)); }

  /// Next newline-terminated frame (without the newline); false on EOF or
  /// transport error. Blocks until a full frame arrives.
  bool next_line(std::string& line) {
    for (;;) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Next frame parsed as JSON; a null Json on EOF/transport error.
  Json next_json() {
    std::string line;
    if (!next_line(line)) return Json();
    return Json::parse(line);
  }

  /// Subscribe round-trip: sends the request, returns the reply frame
  /// (event frames only start after an ok reply, so this cannot misread).
  Json subscribe(const std::string& campaign, int64_t id = 1) {
    Json request = Json::object();
    request["cmd"] = "subscribe";
    request["id"] = id;
    request["campaign"] = campaign;
    if (!send(request)) return Json();
    return next_json();
  }

  void close_now() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Minimal blocking client for a fairflowd Unix socket: one request frame
/// out, one reply frame back.
class WireClient {
 public:
  explicit WireClient(const std::string& unix_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  bool connected() const noexcept { return fd_ >= 0; }

  /// Send raw bytes without framing (for mid-frame disconnect tests).
  bool send_raw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Round-trip one request; returns a null Json on transport failure.
  Json call(const Json& request) {
    if (!send_raw(encode_frame(request))) return Json();
    std::string line;
    char byte;
    for (;;) {
      const ssize_t n = ::recv(fd_, &byte, 1, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return Json();
      if (byte == '\n') break;
      line.push_back(byte);
    }
    return Json::parse(line);
  }

  void close_now() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

}  // namespace ff::service::testing
