// Hostile and degenerate client behavior against the real readiness-loop
// server: slow-loris handshakes, frames split across dozens of writes,
// pipelined bursts in one segment, oversized frames mid-stream, abrupt
// resets with replies half-written, and malformed JSON sandwiched between
// valid requests. The invariants under fire: the framing state machine
// never tears a frame, replies stay in request order, one abusive client
// never takes the daemon (or another client) down — and the poll(2)
// fallback backend honors all of it, not just epoll.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "service/core.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "service_test_util.hpp"
#include "util/fs.hpp"

namespace ff::service {
namespace {

using testing::StreamClient;
using testing::WireClient;
using testing::sliced_manifest;

/// The daemon stack with test-controlled server knobs.
struct Daemon {
  Daemon(const std::string& scratch, Server::Options server_options)
      : core({.root = scratch + "/campaigns", .workers = 2}),
        dispatcher(core),
        server(dispatcher,
               [&] {
                 server_options.unix_path = scratch + "/fairflowd.sock";
                 return server_options;
               }()) {
    server.start();
  }
  explicit Daemon(const std::string& scratch) : Daemon(scratch, {}) {}
  ~Daemon() {
    server.stop();
    core.stop();
  }

  ServiceCore core;
  Dispatcher dispatcher;
  Server server;
};

bool wait_until(const std::function<bool()>& done, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

Json ping_request(int64_t id) {
  Json request = Json::object();
  request["cmd"] = "ping";
  request["id"] = id;
  return request;
}

void expect_fresh_client_works(Daemon& daemon) {
  WireClient fresh(daemon.server.unix_path());
  ASSERT_TRUE(fresh.connected());
  EXPECT_TRUE(fresh.call(ping_request(99)).get_or("ok", false));
}

TEST(ServerHostile, SlowLorisHandshakeIsCutAtTheTimeout) {
  TempDir dir;
  Server::Options options;
  options.handshake_timeout_s = 0.25;
  Daemon daemon(dir.str(), options);

  StreamClient loris(daemon.server.unix_path());
  ASSERT_TRUE(loris.connected());
  // Drip bytes of a valid frame without ever finishing it. The server
  // must not wait on this connection's goodwill.
  const std::string frame = encode_frame(ping_request(1));
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    if (!loris.send_raw(frame.substr(i, 1))) break;  // server already cut us
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    if (std::chrono::steady_clock::now() - start > std::chrono::seconds(2)) {
      break;  // enough dripping; the timeout has long passed
    }
  }
  // What the wire shows: the idle-timeout error frame, then EOF — never a
  // reply, because no complete frame ever arrived.
  const Json cut = loris.next_json();
  ASSERT_TRUE(cut.is_object());
  EXPECT_FALSE(cut.get_or("ok", true));
  EXPECT_EQ(cut["error"]["code"].as_string(), "idle-timeout");
  std::string leftover;
  EXPECT_FALSE(loris.next_line(leftover));
  EXPECT_GE(daemon.server.timeout_disconnects(), 1u);
  expect_fresh_client_works(daemon);
}

TEST(ServerHostile, FrameSplitAcrossDozensOfWritesStillParses) {
  TempDir dir;
  Daemon daemon(dir.str());

  StreamClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());
  for (int64_t round = 1; round <= 3; ++round) {
    const std::string frame = encode_frame(ping_request(round));
    for (char byte : frame) {  // one write per byte, dozens per frame
      ASSERT_TRUE(client.send_raw(std::string(1, byte)));
    }
    const Json reply = client.next_json();
    ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();
    EXPECT_EQ(reply["id"].as_int(), round);
  }
}

TEST(ServerHostile, PipelinedBurstRepliesInRequestOrder) {
  TempDir dir;
  Daemon daemon(dir.str());

  constexpr int64_t kBurst = 64;
  StreamClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());
  std::string blast;
  for (int64_t id = 1; id <= kBurst; ++id) {
    blast += encode_frame(ping_request(id));
  }
  ASSERT_TRUE(client.send_raw(blast));  // one segment, kBurst requests
  for (int64_t id = 1; id <= kBurst; ++id) {
    const Json reply = client.next_json();
    ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();
    ASSERT_EQ(reply["id"].as_int(), id) << "reply out of order";
  }
}

TEST(ServerHostile, ReadBackpressureAboveThePipelineCapDrains) {
  TempDir dir;
  Server::Options options;
  options.max_pipelined = 4;  // force pause/resume cycles on the read side
  Daemon daemon(dir.str(), options);

  constexpr int64_t kBurst = 100;
  StreamClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());
  std::string blast;
  for (int64_t id = 1; id <= kBurst; ++id) {
    blast += encode_frame(ping_request(id));
  }
  ASSERT_TRUE(client.send_raw(blast));
  // Backpressure pauses reading, never drops: every request is eventually
  // served, still in order.
  for (int64_t id = 1; id <= kBurst; ++id) {
    const Json reply = client.next_json();
    ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();
    ASSERT_EQ(reply["id"].as_int(), id);
  }
}

TEST(ServerHostile, OversizedFrameMidStreamKillsOnlyThatClient) {
  TempDir dir;
  Daemon daemon(dir.str());

  StreamClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());
  // A healthy request first: the connection is mid-conversation, not fresh.
  ASSERT_TRUE(client.send(ping_request(1)));
  ASSERT_TRUE(client.next_json().get_or("ok", false));

  // Then a newline-terminated frame just past the cap. send_raw may fail
  // part-way: the server stops reading the moment the cap is crossed.
  std::string flood(kMaxFrameBytes + 16, 'x');
  flood += '\n';
  client.send_raw(flood);
  const Json refusal = client.next_json();
  ASSERT_TRUE(refusal.is_object());
  EXPECT_FALSE(refusal.get_or("ok", true));
  EXPECT_EQ(refusal["error"]["code"].as_string(), "frame-too-large");
  std::string leftover;
  EXPECT_FALSE(client.next_line(leftover));  // the connection is closed
  expect_fresh_client_works(daemon);
}

TEST(ServerHostile, AbruptResetWithReplyHalfWrittenIsHarmless) {
  TempDir dir;
  Daemon daemon(dir.str());

  // Submit something so `list` has a reply worth writing back.
  {
    WireClient client(daemon.server.unix_path());
    ASSERT_TRUE(client.connected());
    Json request = Json::object();
    request["cmd"] = "submit";
    request["id"] = int64_t{1};
    request["manifest"] = sliced_manifest("resilient");
    ASSERT_TRUE(client.call(request).get_or("ok", false));
  }

  // Fire a request, then RST the socket without reading the reply: the
  // server's write lands on a dead (or dying) fd. Twenty rounds shakes out
  // the races between reply write, EPOLLERR, and close.
  for (int round = 0; round < 20; ++round) {
    StreamClient rude(daemon.server.unix_path());
    ASSERT_TRUE(rude.connected());
    Json request = Json::object();
    request["cmd"] = "list";
    request["id"] = int64_t{round};
    ASSERT_TRUE(rude.send(request));
    linger hard_reset{};
    hard_reset.l_onoff = 1;
    hard_reset.l_linger = 0;
    setsockopt(rude.fd(), SOL_SOCKET, SO_LINGER, &hard_reset,
               sizeof(hard_reset));
    rude.close_now();
  }

  EXPECT_TRUE(wait_until(
      [&] { return daemon.server.open_connections() == 0; }));
  expect_fresh_client_works(daemon);
}

TEST(ServerHostile, MalformedJsonBetweenRequestsKeepsReplyOrder) {
  TempDir dir;
  Daemon daemon(dir.str());

  StreamClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());
  // One segment: valid, garbage, valid. The garbage line earns an error
  // frame in sequence — after request 1's reply, before request 2's.
  const std::string blast = encode_frame(ping_request(1)) +
                            "{\"cmd\": not json at all\n" +
                            encode_frame(ping_request(2));
  ASSERT_TRUE(client.send_raw(blast));

  const Json first = client.next_json();
  ASSERT_TRUE(first.get_or("ok", false)) << first.dump();
  EXPECT_EQ(first["id"].as_int(), 1);
  const Json second = client.next_json();
  EXPECT_FALSE(second.get_or("ok", true)) << second.dump();
  EXPECT_EQ(second["error"]["code"].as_string(), "bad-request");
  const Json third = client.next_json();
  ASSERT_TRUE(third.get_or("ok", false)) << third.dump();
  EXPECT_EQ(third["id"].as_int(), 2);
}

TEST(ServerHostile, PollBackendHonorsTheSameContract) {
  TempDir dir;
  Server::Options options;
  options.backend = Server::Backend::Poll;
  Daemon daemon(dir.str(), options);

  StreamClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());

  // Split frame, then a pipelined burst — the two framing paths that a
  // readiness-backend swap is most likely to get subtly wrong.
  const std::string frame = encode_frame(ping_request(1));
  for (char byte : frame) {
    ASSERT_TRUE(client.send_raw(std::string(1, byte)));
  }
  ASSERT_TRUE(client.next_json().get_or("ok", false));

  std::string blast;
  for (int64_t id = 2; id <= 33; ++id) {
    blast += encode_frame(ping_request(id));
  }
  ASSERT_TRUE(client.send_raw(blast));
  for (int64_t id = 2; id <= 33; ++id) {
    const Json reply = client.next_json();
    ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();
    ASSERT_EQ(reply["id"].as_int(), id);
  }
}

}  // namespace
}  // namespace ff::service
