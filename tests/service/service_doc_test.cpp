// docs/service_protocol.md is normative: this test pins it against the
// live registries in BOTH directions, the same discipline trace_lint
// applies to docs/trace_schema.md and doc_sync_test to docs/lint_codes.md.

#include <gtest/gtest.h>

#include <regex>
#include <set>
#include <string>

#include "service/protocol.hpp"
#include "util/fs.hpp"

namespace ff::service {
namespace {

std::string protocol_doc() {
  return read_file(std::string(FF_REPO_ROOT) + "/docs/service_protocol.md");
}

std::set<std::string> documented_commands(const std::string& doc) {
  std::set<std::string> found;
  const std::regex heading(R"(### `([a-z]+)`)");
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), heading);
       it != std::sregex_iterator(); ++it) {
    found.insert((*it)[1].str());
  }
  return found;
}

std::set<std::string> documented_errors(const std::string& doc) {
  // Only the "## Error codes" section — the doc has other tables whose
  // first column is also backticked.
  const size_t start = doc.find("## Error codes");
  EXPECT_NE(start, std::string::npos);
  size_t end = doc.find("\n## ", start + 1);
  if (end == std::string::npos) end = doc.size();
  const std::string section = doc.substr(start, end - start);

  std::set<std::string> found;
  // Error-code table rows: "| `code` | meaning |".
  const std::regex row(R"(\| `([a-z][a-z-]*)` \|)");
  for (auto it = std::sregex_iterator(section.begin(), section.end(), row);
       it != std::sregex_iterator(); ++it) {
    found.insert((*it)[1].str());
  }
  return found;
}

TEST(ServiceDoc, EveryCommandIsDocumentedAndViceVersa) {
  const std::string doc = protocol_doc();
  const std::set<std::string> documented = documented_commands(doc);

  std::set<std::string> registered;
  for (const CommandInfo& command : service_command_registry()) {
    registered.insert(std::string(command.cmd));
    EXPECT_TRUE(documented.count(std::string(command.cmd)))
        << "command '" << command.cmd
        << "' is in the registry but has no `### ` section in "
           "docs/service_protocol.md";
  }
  for (const std::string& name : documented) {
    EXPECT_TRUE(registered.count(name))
        << "docs/service_protocol.md documents command '" << name
        << "' which is not in service_command_registry()";
  }
}

TEST(ServiceDoc, EveryCommandFieldIsMentionedInItsSection) {
  const std::string doc = protocol_doc();
  for (const CommandInfo& command : service_command_registry()) {
    const std::string heading = "### `" + std::string(command.cmd) + "`";
    const size_t start = doc.find(heading);
    ASSERT_NE(start, std::string::npos) << command.cmd;
    size_t end = doc.find("\n### ", start + heading.size());
    if (end == std::string::npos) end = doc.find("\n## ", start);
    if (end == std::string::npos) end = doc.size();
    const std::string section = doc.substr(start, end - start);
    for (const FieldInfo& field : command.fields) {
      EXPECT_NE(section.find("`" + std::string(field.name) + "`"),
                std::string::npos)
          << "field '" << field.name << "' of command '" << command.cmd
          << "' is not mentioned in its doc section";
    }
  }
}

TEST(ServiceDoc, EveryErrorCodeIsDocumentedAndViceVersa) {
  const std::string doc = protocol_doc();
  const std::set<std::string> documented = documented_errors(doc);

  std::set<std::string> registered;
  for (const ServiceErrorInfo& error : service_error_registry()) {
    registered.insert(std::string(error.code));
    EXPECT_TRUE(documented.count(std::string(error.code)))
        << "error code '" << error.code
        << "' is in the registry but not in the doc's error table";
  }
  for (const std::string& code : documented) {
    EXPECT_TRUE(registered.count(code))
        << "docs/service_protocol.md documents error '" << code
        << "' which is not in service_error_registry()";
  }
}

TEST(ServiceDoc, ConstantsMatch) {
  const std::string doc = protocol_doc();
  EXPECT_NE(doc.find("Protocol version: **" +
                     std::to_string(kProtocolVersion) + "**"),
            std::string::npos)
      << "kProtocolVersion = " << kProtocolVersion
      << " is not what the doc states";
  EXPECT_NE(doc.find("**" + std::to_string(kMaxFrameBytes) + "**"),
            std::string::npos)
      << "kMaxFrameBytes = " << kMaxFrameBytes
      << " is not what the doc states";
}

}  // namespace
}  // namespace ff::service
