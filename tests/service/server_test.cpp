#include "service/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/core.hpp"
#include "service/session.hpp"
#include "service_test_util.hpp"
#include "util/fs.hpp"

namespace ff::service {
namespace {

using testing::WireClient;
using testing::run_batch_reference;
using testing::sliced_manifest;

/// Everything a socket test needs, wired the way fairflowd_main wires it.
struct Daemon {
  explicit Daemon(const std::string& scratch, size_t workers = 2)
      : core({.root = scratch + "/campaigns", .workers = workers}),
        dispatcher(core),
        server(dispatcher, {.unix_path = scratch + "/fairflowd.sock"}) {
    server.start();
  }
  ~Daemon() {
    server.stop();
    core.stop();
  }

  ServiceCore core;
  Dispatcher dispatcher;
  Server server;
};

Json submit_request(const Json& manifest, int64_t id) {
  Json request = Json::object();
  request["cmd"] = "submit";
  request["id"] = id;
  request["manifest"] = manifest;
  return request;
}

bool wait_until(const std::function<bool()>& done, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

TEST(Server, HelloAssignsDistinctSessions) {
  TempDir dir;
  Daemon daemon(dir.str());

  WireClient a(daemon.server.unix_path());
  WireClient b(daemon.server.unix_path());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  Json hello = Json::object();
  hello["cmd"] = "hello";
  hello["id"] = int64_t{1};
  hello["client"] = "test";
  const Json reply_a = a.call(hello);
  const Json reply_b = b.call(hello);
  ASSERT_TRUE(reply_a.get_or("ok", false)) << reply_a.dump();
  ASSERT_TRUE(reply_b.get_or("ok", false)) << reply_b.dump();
  EXPECT_EQ(reply_a["protocol"].as_int(), kProtocolVersion);
  EXPECT_NE(reply_a["session"].as_string(), reply_b["session"].as_string());
  EXPECT_EQ(daemon.dispatcher.sessions().active(), 2u);
}

TEST(Server, FourConcurrentClientsShareOneCluster) {
  TempDir dir;
  Daemon daemon(dir.str(), /*workers=*/2);

  // The acceptance bar: >= 4 concurrent sessions submitting distinct
  // campaigns onto one shared simulator, each journal byte-identical to
  // the batch path.
  std::vector<Json> manifests;
  for (int i = 0; i < 4; ++i) {
    manifests.push_back(sliced_manifest("wire-" + std::to_string(i)));
  }

  std::vector<std::thread> clients;
  std::vector<Json> replies(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      WireClient client(daemon.server.unix_path());
      ASSERT_TRUE(client.connected());
      replies[i] = client.call(submit_request(manifests[i], i + 1));
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(replies[i].get_or("ok", false)) << replies[i].dump();
    EXPECT_EQ(replies[i]["id"].as_int(), i + 1);
    EXPECT_EQ(replies[i]["runs"].as_int(), 6);
  }
  daemon.core.drain();

  WireClient inspector(daemon.server.unix_path());
  ASSERT_TRUE(inspector.connected());
  Json list = Json::object();
  list["cmd"] = "list";
  const Json listing = inspector.call(list);
  ASSERT_TRUE(listing.get_or("ok", false));
  EXPECT_EQ(listing["campaigns"].as_array().size(), 4u);

  for (int i = 0; i < 4; ++i) {
    const std::string name = "wire-" + std::to_string(i);
    Json status = Json::object();
    status["cmd"] = "status";
    status["campaign"] = name;
    const Json reply = inspector.call(status);
    ASSERT_TRUE(reply.get_or("ok", false)) << reply.dump();
    EXPECT_EQ(reply["campaign"]["state"].as_string(), "done") << reply.dump();
    const std::string directory = reply["campaign"]["directory"].as_string();
    const std::string batch_dir = run_batch_reference(
        manifests[i], dir.file("batch-" + std::to_string(i)));
    EXPECT_EQ(read_file(directory + "/.campaign/journal.jsonl"),
              read_file(batch_dir + "/.campaign/journal.jsonl"))
        << name;
    EXPECT_EQ(read_file(directory + "/.campaign/status.json"),
              read_file(batch_dir + "/.campaign/status.json"))
        << name;
  }
}

TEST(Server, DisconnectMidFrameSubmitsNothing) {
  TempDir dir;
  Daemon daemon(dir.str());

  const std::string frame =
      encode_frame(submit_request(sliced_manifest("half"), 1));
  {
    WireClient client(daemon.server.unix_path());
    ASSERT_TRUE(client.connected());
    // Half the submit frame, no terminating newline — then vanish.
    ASSERT_TRUE(client.send_raw(frame.substr(0, frame.size() / 2)));
    client.close_now();
  }
  // The server notices the disconnect and closes the session; the partial
  // frame was never dispatched.
  EXPECT_TRUE(wait_until(
      [&] { return daemon.dispatcher.sessions().active() == 0; }));
  EXPECT_TRUE(daemon.core.list().empty());
  EXPECT_FALSE(std::filesystem::exists(dir.file("campaigns/half")));
}

TEST(Server, MalformedAndUnknownFramesGetErrorReplies) {
  TempDir dir;
  Daemon daemon(dir.str());
  WireClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());

  const Json bad = client.call(Json::parse(R"(["not", "an", "object"])"));
  ASSERT_TRUE(bad.is_object());
  EXPECT_FALSE(bad["ok"].as_bool());
  EXPECT_EQ(bad["error"]["code"].as_string(), "bad-request");

  Json unknown = Json::object();
  unknown["cmd"] = "sumbit";
  unknown["id"] = int64_t{9};
  const Json reply = client.call(unknown);
  EXPECT_FALSE(reply["ok"].as_bool());
  EXPECT_EQ(reply["id"].as_int(), 9);
  EXPECT_EQ(reply["error"]["code"].as_string(), "unknown-command");

  // Malformed JSON (but newline-terminated) is answered, not fatal.
  ASSERT_TRUE(client.send_raw("{\"cmd\": \n"));
  Json ping = Json::object();
  ping["cmd"] = "ping";
  const Json pong = client.call(ping);
  // Two replies are queued now (the parse error, then the pong); read both.
  ASSERT_TRUE(pong.is_object());
  EXPECT_FALSE(pong["ok"].as_bool());
  EXPECT_EQ(pong["error"]["code"].as_string(), "bad-request");
  Json noop = Json::object();
  noop["cmd"] = "ping";
  EXPECT_TRUE(client.call(noop).get_or("ok", false));
}

TEST(Server, OversizedFrameIsRefused) {
  TempDir dir;
  Daemon daemon(dir.str());
  WireClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());

  // An unterminated frame larger than kMaxFrameBytes: the server must
  // refuse and drop rather than buffer without bound.
  std::string flood(kMaxFrameBytes + 16, 'x');
  client.send_raw(flood);  // may fail part-way once the server drops us
  Json reply;
  std::string line;
  // Read whatever reply arrives before the connection closes.
  Json probe = Json::object();
  probe["cmd"] = "ping";
  reply = client.call(probe);
  if (reply.is_object() && reply.contains("error")) {
    EXPECT_EQ(reply["error"]["code"].as_string(), "frame-too-large");
  }
  // Either way the daemon survives and accepts a fresh connection.
  WireClient fresh(daemon.server.unix_path());
  ASSERT_TRUE(fresh.connected());
  Json ping = Json::object();
  ping["cmd"] = "ping";
  EXPECT_TRUE(fresh.call(ping).get_or("ok", false));
}

TEST(Server, ShutdownDrainsAndRefusesNewWork) {
  TempDir dir;
  Daemon daemon(dir.str(), /*workers=*/1);
  WireClient client(daemon.server.unix_path());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(
      client.call(submit_request(sliced_manifest("drained"), 1))
          .get_or("ok", false));

  Json shutdown = Json::object();
  shutdown["cmd"] = "shutdown";
  const Json reply = client.call(shutdown);
  ASSERT_TRUE(reply.get_or("ok", false));
  EXPECT_TRUE(reply["draining"].as_bool());
  EXPECT_TRUE(daemon.dispatcher.shutdown_requested());

  // New mutating work is refused; inspection still answers.
  const Json late = client.call(submit_request(sliced_manifest("late"), 2));
  EXPECT_FALSE(late["ok"].as_bool());
  EXPECT_EQ(late["error"]["code"].as_string(), "shutting-down");
  Json status = Json::object();
  status["cmd"] = "status";
  status["campaign"] = "drained";
  EXPECT_TRUE(client.call(status).get_or("ok", false));
}

TEST(Server, StopUnblocksIdleConnections) {
  TempDir dir;
  auto daemon = std::make_unique<Daemon>(dir.str());
  const std::string socket_path = daemon->server.unix_path();
  WireClient idle(socket_path);
  ASSERT_TRUE(idle.connected());
  Json ping = Json::object();
  ping["cmd"] = "ping";
  ASSERT_TRUE(idle.call(ping).get_or("ok", false));

  // The per-client thread is now blocked in recv() with nothing to read;
  // stop() must shutdown() it awake and join, not hang, and the socket
  // path must be gone afterwards.
  daemon.reset();
  EXPECT_FALSE(std::filesystem::exists(socket_path));
}

}  // namespace
}  // namespace ff::service
