#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::service {
namespace {

TEST(Protocol, FrameRoundTrip) {
  Json request = Json::object();
  request["cmd"] = "ping";
  request["id"] = int64_t{7};
  const std::string frame = encode_frame(request);
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  // dump() never emits raw newlines, so the delimiter is unambiguous.
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);

  const Json decoded = decode_frame(frame.substr(0, frame.size() - 1));
  EXPECT_EQ(decoded["cmd"].as_string(), "ping");
  EXPECT_EQ(request_id(decoded), 7);
}

TEST(Protocol, DecodeRejectsMalformedFrames) {
  EXPECT_THROW(decode_frame("{\"cmd\": "), ParseError);
  EXPECT_THROW(decode_frame("[1, 2, 3]"), ValidationError);
  EXPECT_THROW(decode_frame("\"just a string\""), ValidationError);
}

TEST(Protocol, RequestIdDefaultsToZero) {
  EXPECT_EQ(request_id(Json::parse(R"({"cmd": "ping"})")), 0);
  EXPECT_EQ(request_id(Json::parse(R"({"cmd": "ping", "id": "x"})")), 0);
  EXPECT_EQ(request_id(Json::parse(R"({"cmd": "ping", "id": 41})")), 41);
}

TEST(Protocol, ErrorReplyRequiresRegisteredCode) {
  const Json reply = error_reply(3, "not-found", "no campaign 'x'");
  EXPECT_EQ(reply["id"].as_int(), 3);
  EXPECT_FALSE(reply["ok"].as_bool());
  EXPECT_EQ(reply["error"]["code"].as_string(), "not-found");
  EXPECT_EQ(reply["error"]["message"].as_string(), "no campaign 'x'");
  // A typo'd code is a programming error, caught at the reply layer, not
  // shipped to a client as a code no doc defines.
  EXPECT_THROW(error_reply(3, "not-fonud", "oops"), ValidationError);
}

TEST(Protocol, CheckRequestEnforcesRegistryShape) {
  EXPECT_EQ(check_request(Json::parse(R"({"cmd": "ping"})")), "");
  EXPECT_EQ(check_request(Json::parse(R"({"cmd": "status", "campaign": "c"})")),
            "");
  // Unknown extra fields are tolerated on the wire (FF505 is the linter's
  // job) — the daemon stays forward-compatible.
  EXPECT_EQ(check_request(
                Json::parse(R"({"cmd": "ping", "flavor": "lemon"})")),
            "");

  EXPECT_NE(check_request(Json::parse("[]")), "");
  EXPECT_NE(check_request(Json::parse(R"({"id": 1})")), "");
  EXPECT_NE(check_request(Json::parse(R"({"cmd": 9})")), "");
  const std::string unknown =
      check_request(Json::parse(R"({"cmd": "sumbit"})"));
  // The dispatcher keys the unknown-command reply off this prefix.
  EXPECT_EQ(unknown.rfind("unknown command", 0), 0u) << unknown;
  EXPECT_NE(check_request(Json::parse(R"({"cmd": "submit"})")), "");
  EXPECT_NE(check_request(
                Json::parse(R"({"cmd": "submit", "manifest": "nope"})")),
            "");
  EXPECT_NE(check_request(
                Json::parse(R"({"cmd": "trace", "count": "many"})")),
            "");
}

TEST(Protocol, TypeVocabulary) {
  EXPECT_TRUE(json_matches_type(Json::parse(R"("x")"), "string"));
  EXPECT_TRUE(json_matches_type(Json::parse("3"), "int"));
  EXPECT_TRUE(json_matches_type(Json::parse("3"), "number"));
  EXPECT_TRUE(json_matches_type(Json::parse("3.5"), "number"));
  EXPECT_FALSE(json_matches_type(Json::parse("3.5"), "int"));
  EXPECT_TRUE(json_matches_type(Json::parse("true"), "bool"));
  EXPECT_TRUE(json_matches_type(Json::parse("{}"), "object"));
  EXPECT_FALSE(json_matches_type(Json::parse("[]"), "object"));
  EXPECT_THROW(json_matches_type(Json::parse("{}"), "tuple"), ValidationError);
}

TEST(Protocol, RegistriesAreInternallyConsistent) {
  // Lookup helpers agree with the tables they wrap.
  for (const CommandInfo& command : service_command_registry()) {
    EXPECT_EQ(find_service_command(command.cmd), &command);
    EXPECT_FALSE(command.summary.empty()) << command.cmd;
  }
  EXPECT_EQ(find_service_command("no-such-cmd"), nullptr);
  for (const ServiceErrorInfo& error : service_error_registry()) {
    EXPECT_EQ(find_service_error(error.code), &error);
    EXPECT_FALSE(error.summary.empty()) << error.code;
  }
  EXPECT_EQ(find_service_error("no-such-error"), nullptr);
}

}  // namespace
}  // namespace ff::service
