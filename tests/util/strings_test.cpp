#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace ff {
namespace {

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(Split, SingleFieldWhenNoSeparator) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Split, EmptyInputGivesOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Split, TrailingSeparatorGivesTrailingEmpty) {
  EXPECT_EQ(split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(SplitNonempty, DropsEmptyFields) {
  EXPECT_EQ(split_nonempty(" a  b ", ' '), (std::vector<std::string>{"a", "b"}));
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Join, EmptyVectorGivesEmptyString) {
  EXPECT_EQ(join({}, ","), "");
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(ReplaceAll, ReplacesEveryOccurrence) {
  EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");  // non-overlapping, left to right
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");   // empty pattern is a no-op
}

TEST(CaseConversion, Basics) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_EQ(to_upper("MiXeD"), "MIXED");
}

TEST(IsInteger, AcceptsSignedDecimals) {
  EXPECT_TRUE(is_integer("0"));
  EXPECT_TRUE(is_integer("-42"));
  EXPECT_FALSE(is_integer(""));
  EXPECT_FALSE(is_integer("-"));
  EXPECT_FALSE(is_integer("1.5"));
  EXPECT_FALSE(is_integer("12a"));
}

TEST(FormatDouble, RoundTripsExactly) {
  for (double value : {0.1, 1.0 / 3.0, 12345.6789, -2.5e-8, 1e20}) {
    const std::string text = format_double(value);
    EXPECT_EQ(std::stod(text), value) << text;
  }
}

TEST(FormatDouble, IntegralValuesKeepFloatMarker) {
  EXPECT_EQ(format_double(3.0), "3.0");
  EXPECT_EQ(format_double(-10.0), "-10.0");
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 4), "abcde");  // no truncation
}

TEST(FormatDuration, Ranges) {
  EXPECT_EQ(format_duration(5.25), "5.2s");
  EXPECT_EQ(format_duration(65), "1m05s");
  EXPECT_EQ(format_duration(3723), "1h02m03s");
  EXPECT_EQ(format_duration(-65), "-1m05s");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024 * 1024), "1.50 GB");
}

}  // namespace
}  // namespace ff
