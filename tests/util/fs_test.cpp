#include "util/fs.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/error.hpp"

namespace ff {
namespace {

TEST(Fs, WriteAndReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.file("sub/dir/file.txt");
  write_file(path, "hello\nworld");
  EXPECT_EQ(read_file(path), "hello\nworld");
}

TEST(Fs, ReadMissingFileThrows) {
  TempDir dir;
  EXPECT_THROW(read_file(dir.file("missing")), IoError);
}

TEST(TempDir, CreatesUniqueDirectories) {
  TempDir a;
  TempDir b;
  EXPECT_NE(a.str(), b.str());
  EXPECT_TRUE(std::filesystem::exists(a.path()));
}

TEST(TempDir, CleansUpOnDestruction) {
  std::filesystem::path kept;
  {
    TempDir dir;
    kept = dir.path();
    write_file(dir.file("x.txt"), "data");
  }
  EXPECT_FALSE(std::filesystem::exists(kept));
}

TEST(Fs, ListFilesSortedAndFilesOnly) {
  TempDir dir;
  write_file(dir.file("b.txt"), "1");
  write_file(dir.file("a.txt"), "2");
  write_file(dir.file("nested/c.txt"), "3");  // nested dir should not appear
  EXPECT_EQ(list_files(dir.str()), (std::vector<std::string>{"a.txt", "b.txt"}));
}

}  // namespace
}  // namespace ff
