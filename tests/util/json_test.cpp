#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntVsDoubleTyping) {
  EXPECT_TRUE(Json::parse("3").is_int());
  EXPECT_TRUE(Json::parse("3.0").is_double());
  EXPECT_TRUE(Json::parse("3e0").is_double());
  // as_double accepts int; as_int accepts integral double.
  EXPECT_DOUBLE_EQ(Json::parse("3").as_double(), 3.0);
  EXPECT_EQ(Json::parse("3.0").as_int(), 3);
  EXPECT_THROW(Json::parse("3.5").as_int(), Error);
}

TEST(JsonParse, NestedStructures) {
  const Json doc = Json::parse(R"({"a": [1, {"b": true}], "c": {"d": null}})");
  EXPECT_EQ(doc["a"][0].as_int(), 1);
  EXPECT_TRUE(doc["a"][1]["b"].as_bool());
  EXPECT_TRUE(doc["c"]["d"].is_null());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(Json::parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(Json::parse(R"("a\nb\tc")").as_string(), "a\nb\tc");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");  // 😀
}

TEST(JsonParse, Whitespace) {
  EXPECT_EQ(Json::parse(" \n\t{ \"a\" : 1 } \r\n")["a"].as_int(), 1);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").is_array());
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_TRUE(Json::parse("{}").is_object());
  EXPECT_EQ(Json::parse("{}").size(), 0u);
}

TEST(JsonParse, ErrorsCarryLocation) {
  try {
    Json::parse("{\n  \"a\": @\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Json::parse("tru"), ParseError);
  EXPECT_THROW(Json::parse("1 2"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("01"), ParseError);
  EXPECT_THROW(Json::parse("1."), ParseError);
  EXPECT_THROW(Json::parse("\"\\u12\""), ParseError);
  EXPECT_THROW(Json::parse("\"\\ud800x\""), ParseError);  // unpaired surrogate
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string text =
      R"({"arr":[1,2.5,"s"],"b":true,"n":null,"nested":{"x":-3}})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.dump(), text);
  EXPECT_EQ(Json::parse(doc.dump()), doc);
}

TEST(JsonDump, EscapesControlCharacters) {
  Json doc = Json::object();
  doc["k"] = std::string("a\x01" "b\n");
  EXPECT_EQ(doc.dump(), "{\"k\":\"a\\u0001b\\n\"}");
  EXPECT_EQ(Json::parse(doc.dump()), doc);
}

TEST(JsonDump, PrettyIsIndentedAndReparses) {
  const Json doc = Json::parse(R"({"a":[1,2],"b":{"c":3}})");
  const std::string pretty = doc.pretty(2);
  EXPECT_NE(pretty.find("\n  \"a\": [\n    1,"), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), doc);
}

TEST(JsonBuild, MutableAccessCreatesStructure) {
  Json doc;  // starts null
  doc["outer"]["inner"] = 5;
  doc["list"].push_back(1);
  doc["list"].push_back("two");
  EXPECT_EQ(doc["outer"]["inner"].as_int(), 5);
  EXPECT_EQ(doc["list"][1].as_string(), "two");
}

TEST(JsonAccess, MissingKeyThrows) {
  const Json doc = Json::parse(R"({"a":1})");
  EXPECT_THROW(doc["b"], NotFoundError);
  EXPECT_THROW(doc["a"].as_string(), Error);  // wrong type
}

TEST(JsonAccess, ArrayOutOfRangeThrows) {
  const Json doc = Json::parse("[1]");
  EXPECT_THROW(doc[size_t{1}], NotFoundError);
}

TEST(JsonAccess, GetOrDefaults) {
  const Json doc = Json::parse(R"({"i":2,"s":"x","b":true,"d":1.5})");
  EXPECT_EQ(doc.get_or("i", 9), 2);
  EXPECT_EQ(doc.get_or("missing", 9), 9);
  EXPECT_EQ(doc.get_or("s", "y"), "x");
  EXPECT_EQ(doc.get_or("missing", "y"), "y");
  EXPECT_EQ(doc.get_or("b", false), true);
  EXPECT_DOUBLE_EQ(doc.get_or("d", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(doc.get_or("missing", 0.25), 0.25);
}

TEST(JsonPath, FindsNestedValues) {
  const Json doc =
      Json::parse(R"({"machine":{"queues":[{"name":"batch"},{"name":"debug"}]}})");
  ASSERT_NE(doc.find_path("machine.queues[1].name"), nullptr);
  EXPECT_EQ(doc.find_path("machine.queues[1].name")->as_string(), "debug");
  EXPECT_EQ(doc.find_path("machine.missing"), nullptr);
  EXPECT_EQ(doc.find_path("machine.queues[7]"), nullptr);
  EXPECT_EQ(doc.find_path("machine.queues[x]"), nullptr);
  EXPECT_EQ(doc.at_path("machine.queues[0].name").as_string(), "batch");
  EXPECT_THROW(doc.at_path("nope"), NotFoundError);
}

TEST(JsonPath, DoubleIndexing) {
  const Json doc = Json::parse(R"({"m":[[1,2],[3,4]]})");
  EXPECT_EQ(doc.at_path("m[1][0]").as_int(), 3);
}

TEST(JsonEquality, NumbersCompareAcrossTypes) {
  EXPECT_EQ(Json::parse("1"), Json::parse("1.0"));
  EXPECT_NE(Json::parse("1"), Json::parse("2"));
  EXPECT_NE(Json::parse("1"), Json::parse("\"1\""));
}

TEST(JsonFile, WriteAndParseRoundTrip) {
  TempDir dir;
  Json doc = Json::object();
  doc["x"] = 1;
  doc["y"] = Json::array({1, 2, 3});
  const std::string path = dir.file("doc.json");
  doc.write_file(path);
  EXPECT_EQ(Json::parse_file(path), doc);
}

TEST(JsonFile, MissingFileThrowsIoError) {
  EXPECT_THROW(Json::parse_file("/nonexistent/path.json"), IoError);
}

TEST(JsonParse, BigIntegerOverflowFallsBackToDouble) {
  const Json doc = Json::parse("123456789012345678901234567890");
  EXPECT_TRUE(doc.is_double());
  EXPECT_GT(doc.as_double(), 1e29);
}

}  // namespace
}  // namespace ff
