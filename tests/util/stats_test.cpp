#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace ff {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MatchesBatchFormulas) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), variance(xs), 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats left;
  RunningStats right;
  RunningStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i < 20 ? left : right).add(x);
    whole.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 1u);
  RunningStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 1u);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 7.0);
}

TEST(Percentile, RejectsBadInputs) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile({}, 50), Error);
  EXPECT_THROW(percentile(xs, -1), Error);
  EXPECT_THROW(percentile(xs, 101), Error);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Ols, RecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 0.5 * i);
  }
  const OlsFit fit = ols(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Ols, RequiresTwoPoints) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(ols(one, one), Error);
}

TEST(Histogram, BinsAndClamps) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);    // bin 0
  hist.add(9.9);    // bin 4
  hist.add(-3.0);   // clamps to bin 0
  hist.add(15.0);   // clamps to bin 4
  hist.add(5.0);    // bin 2
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(2), 1u);
  EXPECT_EQ(hist.count(4), 2u);
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(1), 4.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram hist(0.0, 2.0, 2);
  hist.add(0.5);
  hist.add(1.5);
  hist.add(1.6);
  const std::string text = hist.render(10);
  EXPECT_NE(text.find("| "), std::string::npos);
  EXPECT_NE(text.find(" 2"), std::string::npos);
}

}  // namespace
}  // namespace ff
