#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff {
namespace {

Table sample_table() {
  Table table({"id", "value"});
  table.add_row({"a", "1.5"});
  table.add_row({"b", "2.5"});
  return table;
}

TEST(Table, BasicShapeAndAccess) {
  const Table table = sample_table();
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.cols(), 2u);
  EXPECT_EQ(table.cell(0, 0), "a");
  EXPECT_EQ(table.cell(1, "value"), "2.5");
  EXPECT_EQ(table.column_index("value"), 1u);
  EXPECT_TRUE(table.has_column("id"));
  EXPECT_FALSE(table.has_column("nope"));
  EXPECT_THROW(table.column_index("nope"), NotFoundError);
}

TEST(Table, RowArityIsValidated) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ValidationError);
}

TEST(Table, ColumnAsDouble) {
  const Table table = sample_table();
  EXPECT_EQ(table.column_as_double("value"), (std::vector<double>{1.5, 2.5}));
  EXPECT_THROW(table.column_as_double("id"), ParseError);
}

TEST(Table, AddColumnFills) {
  Table table = sample_table();
  table.add_column("extra", "x");
  EXPECT_EQ(table.cell(1, "extra"), "x");
  EXPECT_THROW(table.add_column("extra"), ValidationError);
}

TEST(Table, PasteConcatenatesColumns) {
  Table left = sample_table();
  Table right({"score"});
  right.add_row({"10"});
  right.add_row({"20"});
  left.paste(right);
  EXPECT_EQ(left.cols(), 3u);
  EXPECT_EQ(left.cell(0, "score"), "10");
}

TEST(Table, PasteRejectsRowMismatch) {
  Table left = sample_table();
  Table right({"score"});
  right.add_row({"10"});
  EXPECT_THROW(left.paste(right), ValidationError);
}

TEST(Table, PasteRejectsDuplicateColumns) {
  Table left = sample_table();
  Table right({"value"});
  right.add_row({"9"});
  right.add_row({"9"});
  EXPECT_THROW(left.paste(right), ValidationError);
}

TEST(Table, SelectReordersColumns) {
  const Table table = sample_table();
  const Table picked = table.select({"value", "id"});
  EXPECT_EQ(picked.column_names(), (std::vector<std::string>{"value", "id"}));
  EXPECT_EQ(picked.cell(0, 0), "1.5");
}

TEST(Table, SliceRows) {
  const Table table = sample_table();
  const Table slice = table.slice_rows(1, 2);
  EXPECT_EQ(slice.rows(), 1u);
  EXPECT_EQ(slice.cell(0, "id"), "b");
  EXPECT_THROW(table.slice_rows(2, 1), ValidationError);
  EXPECT_THROW(table.slice_rows(0, 3), ValidationError);
}

TEST(Csv, RoundTripSimple) {
  const Table table = sample_table();
  const Table parsed = read_csv(write_csv(table));
  EXPECT_EQ(parsed, table);
}

TEST(Csv, QuotingRules) {
  Table table({"text"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  table.add_row({"has\nnewline"});
  const std::string text = write_csv(table);
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_EQ(read_csv(text), table);
}

TEST(Csv, ParsesCrLfAndBlankLines) {
  const Table table = read_csv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.cell(1, "b"), "4");
}

TEST(Csv, FieldCountMismatchIsAnError) {
  EXPECT_THROW(read_csv("a,b\n1\n"), ParseError);
}

TEST(Csv, UnterminatedQuoteIsAnError) {
  EXPECT_THROW(read_csv("a\n\"unclosed\n"), ParseError);
}

TEST(Csv, TsvSeparator) {
  CsvOptions options;
  options.separator = '\t';
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(read_csv(write_csv(table, options), options), table);
}

TEST(Csv, TrimOption) {
  CsvOptions options;
  options.trim_fields = true;
  const Table table = read_csv(" a , b \n 1 , 2 \n", options);
  EXPECT_EQ(table.column_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(table.cell(0, "a"), "1");
}

TEST(Csv, EmptyInputGivesEmptyTable) {
  const Table table = read_csv("");
  EXPECT_EQ(table.rows(), 0u);
  EXPECT_EQ(table.cols(), 0u);
}

TEST(Csv, FileRoundTrip) {
  TempDir dir;
  const Table table = sample_table();
  const std::string path = dir.file("t.csv");
  write_csv_file(table, path);
  EXPECT_EQ(read_csv_file(path), table);
  EXPECT_THROW(read_csv_file(dir.file("missing.csv")), IoError);
}

}  // namespace
}  // namespace ff
