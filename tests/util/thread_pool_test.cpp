#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace ff {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 0, 100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](size_t i) {
                              if (i == 7) throw std::runtime_error("bad index");
                            }),
               std::runtime_error);
}

// A task already running on the pool's only worker issues a parallel_for on
// the same pool. Without work-helping the worker would block forever waiting
// for itself; with it, the blocked task drains the queue and completes.
TEST(ParallelFor, NestedInsidePoolTaskCompletes) {
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  auto future = pool.submit([&] {
    parallel_for(pool, 0, 16, [&](size_t) { inner.fetch_add(1); });
    return inner.load();
  });
  EXPECT_EQ(future.get(), 16);
}

TEST(ParallelFor, NestedTwoLevelsCoversEverything) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 0, 8, [&](size_t outer) {
    parallel_for(pool, 0, 8, [&](size_t j) { hits[outer * 8 + j].fetch_add(1); });
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, PendingCountsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.post([&] {
    while (!release.load()) std::this_thread::yield();
  });
  // Wait until the worker has taken the blocker off the queue.
  while (pool.pending() > 0) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) pool.post([] {});
  EXPECT_EQ(pool.pending(), 5u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, HelpUntilDrainsQueuedWork) {
  ThreadPool pool(1);
  // Occupy the lone worker so posted work stays queued, then help from the
  // calling thread until the target count is reached.
  std::atomic<bool> release{false};
  pool.post([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.post([&done] { done.fetch_add(1); });
  }
  pool.help_until([&] { return done.load() == 10; });
  EXPECT_EQ(done.load(), 10);
  release.store(true);
  pool.wait_idle();
}

}  // namespace
}  // namespace ff
