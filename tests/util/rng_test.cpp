#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ff {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.below(5)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 each
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(3.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(9);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(Rng, WeightedIndexAllZeroThrows) {
  Rng rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), Error);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(10);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng base(42);
  Rng fork1 = base.fork(1);
  Rng fork2 = base.fork(2);
  EXPECT_NE(fork1(), fork2());
  // Forks are deterministic too.
  Rng base2(42);
  Rng fork1b = base2.fork(1);
  Rng check = base.fork(1);
  (void)check;
  EXPECT_EQ(Rng(42).fork(1)(), fork1b());
}

TEST(Splitmix, KnownGoodDistribution) {
  // Degenerate inputs should still produce well-spread outputs.
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(splitmix64(0), 0u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace ff
