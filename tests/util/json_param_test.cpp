// Parameterized round-trip properties for the JSON layer: for a corpus of
// documents, parse → dump → parse must be identity, pretty form must
// reparse equal, and path lookups must agree before and after a round
// trip. Also a randomized-document generator sweep.

#include <gtest/gtest.h>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace ff {
namespace {

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, DumpReparsesEqual) {
  const Json document = Json::parse(GetParam());
  EXPECT_EQ(Json::parse(document.dump()), document);
}

TEST_P(JsonRoundTrip, PrettyReparsesEqual) {
  const Json document = Json::parse(GetParam());
  EXPECT_EQ(Json::parse(document.pretty(2)), document);
  EXPECT_EQ(Json::parse(document.pretty(7)), document);
}

TEST_P(JsonRoundTrip, DumpIsStable) {
  // dump(parse(dump(x))) == dump(x): canonical form is a fixed point.
  const Json document = Json::parse(GetParam());
  const std::string once = document.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "0", "-1", "3.5", "1e-3", "\"\"", "\"text\"", "[]",
        "{}", "[1,2,3]", R"({"a":1})",
        R"({"nested":{"deep":{"deeper":[{"x":null},{"y":[[],[{}]]}]}}})",
        R"(["mixed",1,2.5,true,null,{"k":[false]}])",
        R"({"unicode":"héllo é 😀","escapes":"a\"b\\c\nd\te"})",
        R"({"numbers":[0.1,1e10,-2.5e-8,9007199254740993,-0.0]})",
        R"({"campaign":{"groups":[{"name":"g","sweeps":[{"parameters":
            [{"name":"x","values":[1,2,3]}]}]}]}})"));

/// Randomized documents: build random Json values and round-trip them.
class JsonFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  static Json random_value(Rng& rng, int depth) {
    const uint64_t kind = rng.below(depth > 3 ? 5 : 7);
    switch (kind) {
      case 0: return Json();
      case 1: return Json(rng.chance(0.5));
      case 2: return Json(static_cast<int64_t>(rng.range(-1000000, 1000000)));
      case 3: return Json(rng.uniform(-1e6, 1e6));
      case 4: {
        std::string text;
        const uint64_t length = rng.below(12);
        for (uint64_t i = 0; i < length; ++i) {
          text += static_cast<char>(' ' + rng.below(95));
        }
        return Json(text);
      }
      case 5: {
        Json array = Json::array();
        const uint64_t count = rng.below(5);
        for (uint64_t i = 0; i < count; ++i) {
          array.push_back(random_value(rng, depth + 1));
        }
        return array;
      }
      default: {
        Json object = Json::object();
        const uint64_t count = rng.below(5);
        for (uint64_t i = 0; i < count; ++i) {
          object["k" + std::to_string(rng.below(100))] = random_value(rng, depth + 1);
        }
        return object;
      }
    }
  }
};

TEST_P(JsonFuzz, RandomDocumentsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Json document = random_value(rng, 0);
    EXPECT_EQ(Json::parse(document.dump()), document);
    EXPECT_EQ(Json::parse(document.pretty()), document);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace ff
