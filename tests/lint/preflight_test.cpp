// End-to-end tests of the default-on lint preflights: cheetah's endpoint
// create and savanna's journal resume refuse bad artifacts *before* any
// side effect, with the full lint report in the exception text.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cheetah/endpoint.hpp"
#include "savanna/campaign_runner.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff {
namespace {

cheetah::Campaign overcommitted_campaign() {
  cheetah::AppSpec app;
  app.name = "toy";
  app.executable = "toy_exe";
  app.args_template = "--x {{x}}";
  cheetah::Campaign campaign("toy-campaign", app);
  campaign.set_machine("workstation");  // 1 node
  cheetah::Sweep sweep("xs");
  sweep.add(cheetah::Parameter::int_range("x", cheetah::ParamLayer::Application,
                                          0, 3));
  cheetah::SweepGroup group("g1");
  group.add(std::move(sweep));
  group.set_nodes(2);  // > workstation capacity → FF202
  campaign.add_group(std::move(group));
  return campaign;
}

TEST(EndpointPreflight, RefusesOvercommittedCampaignBeforeCreatingAnything) {
  TempDir dir("preflight");
  try {
    cheetah::CampaignEndpoint::create(overcommitted_campaign(), dir.str());
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("FF202"), std::string::npos) << what;
    EXPECT_NE(what.find("nothing was created"), std::string::npos) << what;
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));
}

TEST(EndpointPreflight, OptOutStillCreatesTheEndpoint) {
  TempDir dir("preflight");
  cheetah::CampaignEndpoint::CreateOptions options;
  options.lint = false;
  const cheetah::CampaignEndpoint endpoint = cheetah::CampaignEndpoint::create(
      overcommitted_campaign(), dir.str(), options);
  EXPECT_FALSE(std::filesystem::is_empty(dir.path()));
  (void)endpoint;
}

std::vector<sim::TaskSpec> one_task() {
  sim::TaskSpec task;
  task.id = "t0";
  task.duration_s = 10;
  return {task};
}

TEST(ResumePreflight, RefusesUnknownSchemaWithFullLintReport) {
  TempDir dir("preflight");
  const std::string path = dir.file("journal.jsonl");
  write_file(path, R"({"kind":"header","schema":99,"campaign":"c","runs":[]})"
                   "\n");
  sim::Simulation sim;
  savanna::RunTracker tracker;
  savanna::CampaignRunOptions options;
  try {
    savanna::resume_campaign(sim, one_task(), options, tracker, path);
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("preflight lint"), std::string::npos) << what;
    EXPECT_NE(what.find("FF205"), std::string::npos) << what;
  }
}

TEST(ResumePreflight, OptOutFallsThroughToReplayWhichStillRejects) {
  TempDir dir("preflight");
  const std::string path = dir.file("journal.jsonl");
  write_file(path, R"({"kind":"header","schema":99,"campaign":"c","runs":[]})"
                   "\n");
  sim::Simulation sim;
  savanna::RunTracker tracker;
  savanna::CampaignRunOptions options;
  options.preflight_lint = false;
  try {
    savanna::resume_campaign(sim, one_task(), options, tracker, path);
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& error) {
    // Replay's own message, not the lint report.
    EXPECT_EQ(std::string(error.what()).find("preflight lint"),
              std::string::npos)
        << error.what();
  }
}

TEST(ResumePreflight, TornTailIsANoteAndResumeStillCompletes) {
  TempDir dir("preflight");
  const std::string path = dir.file("journal.jsonl");
  write_file(path,
             R"({"kind":"header","schema":2,"campaign":"campaign","runs":["t0"]})"
             "\n{\"kind\":\"all");  // torn mid-append
  sim::Simulation sim;
  savanna::RunTracker tracker;
  savanna::CampaignRunOptions options;
  const savanna::ResumeReport report =
      savanna::resume_campaign(sim, one_task(), options, tracker, path);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.result.completed_runs, 1u);
}

TEST(ResumePreflight, MissingJournalMeansNeverStartedAndIsNotLinted) {
  TempDir dir("preflight");
  sim::Simulation sim;
  savanna::RunTracker tracker;
  savanna::CampaignRunOptions options;
  const savanna::ResumeReport report = savanna::resume_campaign(
      sim, one_task(), options, tracker, dir.file("journal.jsonl"));
  EXPECT_EQ(report.allocations_replayed, 0u);
  EXPECT_EQ(report.result.completed_runs, 1u);
}

}  // namespace
}  // namespace ff
