#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/engine.hpp"
#include "lint/rules.hpp"
#include "lint_test_util.hpp"
#include "service/protocol.hpp"

namespace ff::lint {
namespace {

LintReport lint_request_text(const std::string& text) {
  const LintEngine engine;
  LintReport report = engine.lint_text(text, "request.json");
  report.sort();
  return report;
}

std::vector<std::string> codes(const LintReport& report) {
  std::vector<std::string> out;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    out.push_back(diagnostic.code);
  }
  return out;
}

TEST(ServiceRules, CmdKeyRoutesToServiceRequestKind) {
  EXPECT_EQ(detect_kind(Json::parse(R"({"cmd": "ping"})")),
            ArtifactKind::ServiceRequest);
  // A manifest-shaped document keeps winning even with a stray "cmd".
  EXPECT_EQ(detect_kind(Json::parse(R"({"app": {}, "groups": [], "cmd": 1})")),
            ArtifactKind::CampaignManifest);
}

TEST(ServiceRules, WellFormedRequestsAreClean) {
  EXPECT_TRUE(lint_request_text(R"({"cmd": "ping", "id": 1})").empty());
  EXPECT_TRUE(lint_request_text(R"({"cmd": "status", "campaign": "x"})")
                  .empty());
  EXPECT_TRUE(
      lint_request_text(
          R"({"cmd": "submit", "manifest": {}, "group": "g", "id": 7})")
          .empty());
}

TEST(ServiceRules, NonStringCmdIsFF501) {
  const LintReport report = lint_request_text(R"({"cmd": 42})");
  ASSERT_EQ(codes(report), std::vector<std::string>{"FF501"});
  EXPECT_TRUE(report.has_errors());
}

TEST(ServiceRules, UnknownCommandIsFF502) {
  const LintReport report = lint_request_text(R"({"cmd": "submitt"})");
  ASSERT_EQ(codes(report), std::vector<std::string>{"FF502"});
  // The fixit enumerates the live registry so the message tracks additions.
  EXPECT_NE(report.diagnostics()[0].fixit.find("submit"), std::string::npos);
}

TEST(ServiceRules, MissingRequiredFieldIsFF503) {
  const LintReport report = lint_request_text(R"({"cmd": "submit", "id": 3})");
  ASSERT_EQ(codes(report), std::vector<std::string>{"FF503"});
  EXPECT_NE(report.diagnostics()[0].message.find("manifest"),
            std::string::npos);
}

TEST(ServiceRules, FieldTypeMismatchIsFF504) {
  const LintReport report =
      lint_request_text(R"({"cmd": "submit", "manifest": "not-an-object"})");
  ASSERT_EQ(codes(report), std::vector<std::string>{"FF504"});
  EXPECT_NE(report.diagnostics()[0].message.find("object"), std::string::npos);
}

TEST(ServiceRules, UnknownExtraFieldIsFF505Warning) {
  const LintReport report =
      lint_request_text(R"({"cmd": "status", "campaign": "x", "campain": "y"})");
  ASSERT_EQ(codes(report), std::vector<std::string>{"FF505"});
  EXPECT_FALSE(report.has_errors());
  EXPECT_NE(report.diagnostics()[0].message.find("campain"), std::string::npos);
}

// The registry itself is the contract the daemon dispatches from; pin the
// command set so an accidental registry edit fails loudly here too (the
// doc-sync test pins it against docs/service_protocol.md).
TEST(ServiceRules, RegistryPinsTheCommandSet) {
  std::vector<std::string> names;
  for (const service::CommandInfo& command :
       service::service_command_registry()) {
    names.emplace_back(command.cmd);
  }
  const std::vector<std::string> expected = {
      "hello", "ping",      "submit", "status", "list",    "lint",
      "trace", "subscribe", "cancel", "resume", "shutdown"};
  EXPECT_EQ(names, expected);
  // Every registered field type must be in json_matches_type's vocabulary.
  for (const service::CommandInfo& command :
       service::service_command_registry()) {
    for (const service::FieldInfo& field : command.fields) {
      EXPECT_TRUE(field.type == "string" || field.type == "int" ||
                  field.type == "number" || field.type == "bool" ||
                  field.type == "object")
          << command.cmd << "." << field.name;
    }
  }
}

}  // namespace
}  // namespace ff::lint
