// Whole-workspace analysis: cross-artifact resolution (FF601-FF604), the
// fixpoint dataflow pass (FF610-FF612), the digest cache, and SARIF
// baselines. Fixture trees live in tests/lint/workspaces (FF_LINT_WORKSPACES).

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "lint/sarif.hpp"
#include "lint/workspace.hpp"
#include "lint_test_util.hpp"
#include "util/fs.hpp"

namespace ff::lint {
namespace {

std::string workspace_path(const std::string& name) {
  return std::string(FF_LINT_WORKSPACES) + "/" + name;
}

std::map<std::string, size_t> count_by_code(const LintReport& report) {
  std::map<std::string, size_t> counts;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    ++counts[diagnostic.code];
  }
  return counts;
}

TEST(WorkspaceTest, BrokenTreeResolvesEveryCrossArtifactRule) {
  WorkspaceAnalyzer analyzer;
  WorkspaceStats stats;
  LintReport report = analyzer.analyze(workspace_path("broken"), &stats);
  report.sort();

  EXPECT_EQ(stats.artifacts, 5u);
  const auto counts = count_by_code(report);
  EXPECT_EQ(counts.at("FF601"), 2u) << report.render_text();  // model + plane
  EXPECT_EQ(counts.at("FF602"), 1u) << report.render_text();  // bp:ghost:v1
  EXPECT_EQ(counts.at("FF603"), 2u) << report.render_text();  // journal+trace
  EXPECT_EQ(counts.at("FF604"), 1u) << report.render_text();  // tier-3 claim
  EXPECT_EQ(report.size(), 6u) << report.render_text();

  // The trace also names campaign 'demo', which campaign.json defines —
  // the resolved leg of the triangle must stay silent.
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    EXPECT_EQ(diagnostic.message.find("'demo'"), std::string::npos)
        << diagnostic.message;
  }
}

// The tentpole golden: the diamond plane is acyclic, so the per-file cycle
// check (FF301) passes it clean, yet the fixpoint proves deadlock is
// feasible — reconverging blocking branches at 1000 vs 10 rec/s.
TEST(WorkspaceTest, DeadlockFeasibleWhereCycleCheckPassesClean) {
  const std::string plane = workspace_path("diamond") + "/plane.json";
  LintReport per_file = LintEngine{}.lint_file(plane);
  EXPECT_EQ(per_file.size(), 0u) << per_file.render_text();

  WorkspaceAnalyzer analyzer;
  LintReport report = analyzer.analyze(workspace_path("diamond"));
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  const Diagnostic& finding = report.diagnostics()[0];
  EXPECT_EQ(finding.code, "FF610");
  EXPECT_EQ(finding.severity, Severity::Error);
  EXPECT_NE(finding.message.find("reconverging from 'src'"),
            std::string::npos);
  // The queue bound to a.out->join.l overrides the default capacity.
  EXPECT_NE(finding.message.find("capacity-8"), std::string::npos)
      << finding.message;
  // Both offending paths, ancestor -> branch head -> join, ride along as
  // related locations (SARIF relatedLocations): 2 edges per branch.
  ASSERT_EQ(finding.related.size(), 4u);
  std::set<std::string> related_paths;
  for (const SourceLocation& location : finding.related) {
    related_paths.insert(location.json_path);
  }
  EXPECT_EQ(related_paths.size(), 4u);  // all four graph edges, no dupes
  for (const std::string& path : related_paths) {
    EXPECT_EQ(path.rfind("graph.edges[", 0), 0u) << path;
  }
}

TEST(WorkspaceTest, RateImbalanceNamesTheInboundEdges) {
  WorkspaceAnalyzer analyzer;
  LintReport report = analyzer.analyze(workspace_path("overload"));
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  const Diagnostic& finding = report.diagnostics()[0];
  EXPECT_EQ(finding.code, "FF611");
  EXPECT_EQ(finding.severity, Severity::Warning);
  EXPECT_NE(finding.message.find("100.0 rec/s"), std::string::npos);
  EXPECT_NE(finding.message.find("\"service_hz\": 50.0"), std::string::npos);
  ASSERT_EQ(finding.related.size(), 1u);
  EXPECT_EQ(finding.related[0].json_path, "graph.edges[0]");
}

// A feedback loop with gain (inbound sums keep climbing) plus a fed-by-
// nobody self-loop: the widening must terminate the fixpoint, FF301 still
// owns the cycle itself, and FF612 flags the component no source reaches.
TEST(WorkspaceTest, FixpointTerminatesOnCyclesAndSelfLoops) {
  WorkspaceAnalyzer analyzer;
  LintReport report = analyzer.analyze(workspace_path("cyclic"));
  const auto counts = count_by_code(report);
  EXPECT_EQ(counts.at("FF301"), 1u) << report.render_text();
  EXPECT_EQ(counts.at("FF612"), 1u) << report.render_text();
  bool flagged_self_loop = false;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.code == "FF612") {
      flagged_self_loop =
          diagnostic.message.find("'c'") != std::string::npos;
    }
  }
  EXPECT_TRUE(flagged_self_loop) << report.render_text();
  // The widened feedback rate is Top (unknown), so FF610/FF611 must not
  // guess at it.
  EXPECT_EQ(counts.count("FF610"), 0u) << report.render_text();
  EXPECT_EQ(counts.count("FF611"), 0u) << report.render_text();
}

TEST(WorkspaceTest, SecondAnalyzeReplaysFromTheDigestCache) {
  WorkspaceAnalyzer analyzer;
  WorkspaceStats cold;
  LintReport first = analyzer.analyze(workspace_path("broken"), &cold);
  EXPECT_EQ(cold.reparsed, 5u);
  EXPECT_EQ(cold.cached, 0u);

  WorkspaceStats warm;
  LintReport second = analyzer.analyze(workspace_path("broken"), &warm);
  EXPECT_EQ(warm.reparsed, 0u);
  EXPECT_EQ(warm.cached, 5u);
  first.sort();
  second.sort();
  EXPECT_EQ(first.render_jsonl(), second.render_jsonl());
}

TEST(WorkspaceTest, CacheRoundTripsThroughDiskBetweenAnalyzers) {
  TempDir tmp("lint-cache");
  const std::string cache_file = tmp.file("cache.json");
  {
    WorkspaceAnalyzer analyzer;
    analyzer.analyze(workspace_path("broken"));
    analyzer.save_cache(cache_file);
  }
  WorkspaceAnalyzer analyzer;
  analyzer.load_cache(cache_file);
  WorkspaceStats stats;
  LintReport replayed = analyzer.analyze(workspace_path("broken"), &stats);
  EXPECT_EQ(stats.reparsed, 0u);
  EXPECT_EQ(stats.cached, 5u);

  WorkspaceAnalyzer fresh;
  LintReport reference = fresh.analyze(workspace_path("broken"));
  replayed.sort();
  reference.sort();
  EXPECT_EQ(replayed.render_jsonl(), reference.render_jsonl());
}

TEST(WorkspaceTest, CorruptCacheLoadsAsEmpty) {
  TempDir tmp("lint-cache");
  const std::string cache_file = tmp.file("cache.json");
  write_file(cache_file, "{\"version\": 1, \"artifacts\": 7}");
  WorkspaceAnalyzer analyzer;
  analyzer.load_cache(cache_file);
  EXPECT_EQ(analyzer.cache_size(), 0u);
  WorkspaceStats stats;
  analyzer.analyze(workspace_path("overload"), &stats);
  EXPECT_EQ(stats.reparsed, 1u);  // everything re-parses, no error
}

TEST(WorkspaceTest, EditingAnArtifactInvalidatesOnlyItsDigest) {
  TempDir tmp("lint-ws");
  const std::string plane = tmp.file("plane.json");
  write_file(plane, read_file(workspace_path("overload") + "/plane.json"));
  write_file(tmp.file("catalog.json"),
             read_file(workspace_path("broken") + "/catalog.json"));

  WorkspaceAnalyzer analyzer;
  WorkspaceStats cold;
  LintReport before = analyzer.analyze(tmp.str(), &cold);
  EXPECT_EQ(cold.reparsed, 2u);
  EXPECT_EQ(before.count(Severity::Warning), 1u)
      << before.render_text();  // FF611

  // Raise the worker's service rate: the finding must disappear and only
  // the edited artifact may re-parse.
  std::string text = read_file(plane);
  const size_t at = text.find("\"service_hz\": 50");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 16, "\"service_hz\": 500");
  write_file(plane, text);

  WorkspaceStats warm;
  LintReport after = analyzer.analyze(tmp.str(), &warm);
  EXPECT_EQ(warm.reparsed, 1u);
  EXPECT_EQ(warm.cached, 1u);
  EXPECT_EQ(after.size(), 0u) << after.render_text();
}

TEST(WorkspaceTest, BaselineSuppressesEveryKnownFinding) {
  WorkspaceAnalyzer analyzer;
  LintReport first = analyzer.analyze(workspace_path("broken"));
  first.sort();
  ASSERT_GT(first.size(), 0u);

  const std::set<std::string> baseline =
      sarif_fingerprints(to_sarif(first));
  EXPECT_EQ(baseline.size(), first.size());  // no fingerprint collisions

  LintReport second = analyzer.analyze(workspace_path("broken"));
  second.sort();
  apply_baseline(second, baseline);
  EXPECT_EQ(second.size(), 0u) << second.render_text();

  // An empty baseline is a no-op, not a filter-everything.
  LintReport third = analyzer.analyze(workspace_path("broken"));
  apply_baseline(third, {});
  EXPECT_EQ(third.size(), first.size());
}

}  // namespace
}  // namespace ff::lint
