#include <gtest/gtest.h>

#include "lint/rules.hpp"
#include "lint_test_util.hpp"

namespace ff::lint {
namespace {

// The FF40x family is all warnings: gauge debt is honest self-description,
// not a broken artifact — the linter surfaces it, CI decides via --werror.
TEST(GaugeRules, BadCatalogFiresAllFourDebtChecks) {
  const LintReport report = lint_fixture("catalog_bad.json");
  expect_findings(report, {
                              {"FF403", 9, 9, Severity::Warning},
                              {"FF401", 12, 9, Severity::Warning},
                              {"FF404", 12, 9, Severity::Warning},
                              {"FF402", 25, 44, Severity::Warning},
                          });
  EXPECT_FALSE(report.has_errors());
}

TEST(GaugeRules, CommittedSensorCatalogIsClean) {
  const LintEngine engine;
  const LintReport report =
      engine.lint_file(artifact_path("sensor_catalog.json"));
  EXPECT_TRUE(report.empty()) << report.render_text();
}

}  // namespace
}  // namespace ff::lint
