#include "lint/diagnostic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/json.hpp"

namespace ff::lint {
namespace {

TEST(RuleRegistry, EveryCodeIsUniqueAndWellFormed) {
  std::set<std::string> codes;
  for (const RuleInfo& rule : rule_registry()) {
    const std::string code{rule.code};
    EXPECT_EQ(code.size(), 5u) << code;
    EXPECT_EQ(code.substr(0, 2), "FF") << code;
    EXPECT_TRUE(codes.insert(code).second) << "duplicate " << code;
    EXPECT_FALSE(std::string(rule.name).empty()) << code;
    EXPECT_FALSE(std::string(rule.summary).empty()) << code;
  }
  EXPECT_GE(codes.size(), 26u);
}

TEST(RuleRegistry, FindRuleByCode) {
  const RuleInfo* rule = find_rule("FF203");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->name, "sweep-exceeds-walltime-budget");
  EXPECT_EQ(rule->default_severity, Severity::Error);
  EXPECT_EQ(find_rule("FF999"), nullptr);
}

TEST(LintReport, AddValidatesAgainstRegistry) {
  LintReport report;
  EXPECT_THROW(report.add("FF999", SourceLocation{}, "nope"), NotFoundError);
  report.add("FF206", SourceLocation{"m.json", 3, 1, "machine"}, "unknown");
  EXPECT_EQ(report.count(Severity::Warning), 1u);
  EXPECT_FALSE(report.has_errors());
  report.add("FF202", SourceLocation{"m.json", 9, 7, "groups[0].nodes"},
             "too many");
  EXPECT_TRUE(report.has_errors());
}

TEST(LintReport, RenderTextFormat) {
  LintReport report;
  report.add("FF201", SourceLocation{"file.json", 12, 5, "app.args_template"},
             "bad ref", "declare it");
  const std::string text = report.render_text();
  EXPECT_NE(text.find("file.json:12:5: error[FF201]: bad ref"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fix-it: declare it"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error(s), 0 warning(s), 0 note(s)"),
            std::string::npos)
      << text;
}

TEST(LintReport, RenderJsonlRoundTrips) {
  LintReport report;
  report.add("FF207", SourceLocation{"c.json", 20, 47, "p.values"}, "empty");
  const std::string jsonl = report.render_jsonl();
  const Json record = Json::parse(jsonl.substr(0, jsonl.find('\n')));
  EXPECT_EQ(record["code"].as_string(), "FF207");
  EXPECT_EQ(record["severity"].as_string(), "error");
  EXPECT_EQ(record["file"].as_string(), "c.json");
  EXPECT_EQ(record["line"].as_int(), 20);
  EXPECT_EQ(record["column"].as_int(), 47);
}

TEST(LintReport, PromoteWarningsAndRemoveCodes) {
  LintReport report;
  report.add("FF206", SourceLocation{"m.json", 1, 1, ""}, "warn");
  report.add("FF102", SourceLocation{"m.json", 2, 1, ""}, "warn too");
  EXPECT_FALSE(report.has_errors());
  report.promote_warnings();
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.count(Severity::Error), 2u);

  report.remove_codes({"FF102"});
  EXPECT_EQ(report.diagnostics().size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].code, "FF206");
}

TEST(LintReport, SortOrdersByFileThenLine) {
  LintReport report;
  report.add("FF206", SourceLocation{"b.json", 9, 1, ""}, "later file");
  report.add("FF206", SourceLocation{"a.json", 20, 1, ""}, "high line");
  report.add("FF206", SourceLocation{"a.json", 3, 1, ""}, "low line");
  report.sort();
  EXPECT_EQ(report.diagnostics()[0].location.line, 3u);
  EXPECT_EQ(report.diagnostics()[1].location.line, 20u);
  EXPECT_EQ(report.diagnostics()[2].location.file, "b.json");
}

}  // namespace
}  // namespace ff::lint
