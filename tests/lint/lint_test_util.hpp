#pragma once

// Shared helpers for the fairflow-lint test battery. Fixtures live in
// tests/lint/fixtures (FF_LINT_FIXTURES); the committed clean artifacts in
// examples/artifacts (under FF_REPO_ROOT) double as negative fixtures.

#include <gtest/gtest.h>

#include <string>

#include "lint/engine.hpp"

namespace ff::lint {

inline std::string fixture_path(const std::string& name) {
  return std::string(FF_LINT_FIXTURES) + "/" + name;
}

inline std::string artifact_path(const std::string& name) {
  return std::string(FF_REPO_ROOT) + "/examples/artifacts/" + name;
}

inline LintReport lint_fixture(const std::string& name,
                               const LintEngine& engine = LintEngine{}) {
  LintReport report = engine.lint_file(fixture_path(name));
  report.sort();
  return report;
}

/// A finding expectation in golden-output form: code + exact location.
struct Expected {
  std::string code;
  size_t line;
  size_t column;
  Severity severity;
};

/// Assert the report contains exactly `expected` (same order after sort()).
inline void expect_findings(const LintReport& report,
                            const std::vector<Expected>& expected) {
  ASSERT_EQ(report.size(), expected.size()) << report.render_text();
  for (size_t i = 0; i < expected.size(); ++i) {
    const Diagnostic& got = report.diagnostics()[i];
    EXPECT_EQ(got.code, expected[i].code) << report.render_text();
    EXPECT_EQ(got.location.line, expected[i].line) << got.code;
    EXPECT_EQ(got.location.column, expected[i].column) << got.code;
    EXPECT_EQ(got.severity, expected[i].severity) << got.code;
  }
}

}  // namespace ff::lint
