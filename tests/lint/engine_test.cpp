#include "lint/engine.hpp"

#include <gtest/gtest.h>

#include "gwas/workflow.hpp"
#include "lint_test_util.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace ff::lint {
namespace {

TEST(DetectKind, RecognizesEveryArtifactShape) {
  EXPECT_EQ(detect_kind(Json::parse(R"({"$model-schema": "x"})")),
            ArtifactKind::SkelModel);
  EXPECT_EQ(detect_kind(Json::parse(R"({"app": {}, "groups": []})")),
            ArtifactKind::CampaignManifest);
  EXPECT_EQ(detect_kind(Json::parse(R"({"queues": []})")),
            ArtifactKind::StreamPlane);
  EXPECT_EQ(detect_kind(Json::parse(R"({"components": [], "schemas": []})")),
            ArtifactKind::Catalog);
  EXPECT_EQ(detect_kind(Json::parse(R"({"anything": "else"})")),
            ArtifactKind::Unknown);
}

TEST(LintEngine, ParseFailureIsFF001AtTheFailurePoint) {
  const LintReport report = lint_fixture("bad_syntax.json");
  expect_findings(report, {{"FF001", 4, 1, Severity::Error}});
}

TEST(LintEngine, UnknownArtifactKindIsOnlyANote) {
  const LintReport report = lint_fixture("unknown_kind.json");
  expect_findings(report, {{"FF002", 1, 1, Severity::Note}});
  EXPECT_FALSE(report.has_errors());
}

TEST(LintEngine, LintPathsWalksDirectoriesRecursively) {
  LintEngine engine;
  engine.register_model(
      {"gwas-paste", gwas::paste_model_schema(), gwas::make_paste_generator()});
  LintReport report = engine.lint_paths({fixture_path("")});
  // The fixture directory's full golden sweep: all nine files.
  EXPECT_EQ(report.count(Severity::Error), 16u) << report.render_text();
  EXPECT_EQ(report.count(Severity::Warning), 9u) << report.render_text();
  EXPECT_EQ(report.count(Severity::Note), 1u) << report.render_text();
}

TEST(LintEngine, JournalPicksUpSiblingManifestAutomatically) {
  TempDir dir("lintengine");
  // The cheetah .campaign/ layout: manifest.json next to journal.jsonl.
  // The journal names a campaign the manifest doesn't → FF205 only fires
  // if the sibling manifest was actually discovered and used.
  write_file(dir.file("manifest.json"), R"({
    "name": "real-campaign",
    "app": {"name": "a", "executable": "e", "args_template": ""},
    "groups": []
  })");
  write_file(dir.file("journal.jsonl"),
             "{\"kind\":\"header\",\"schema\":2,\"campaign\":\"impostor\","
             "\"runs\":[]}\n");
  const LintEngine engine;
  const LintReport report = engine.lint_file(dir.file("journal.jsonl"));
  ASSERT_FALSE(report.empty()) << report.render_text();
  bool saw_drift = false;
  for (const Diagnostic& diag : report.diagnostics()) {
    if (diag.code == "FF205" &&
        diag.message.find("impostor") != std::string::npos) {
      saw_drift = true;
    }
  }
  EXPECT_TRUE(saw_drift) << report.render_text();
}

TEST(LintEngine, JournalWithoutSiblingManifestSkipsDriftChecks) {
  TempDir dir("lintengine");
  write_file(dir.file("journal.jsonl"),
             "{\"kind\":\"header\",\"schema\":2,\"campaign\":\"solo\","
             "\"runs\":[]}\n");
  const LintEngine engine;
  const LintReport report = engine.lint_file(dir.file("journal.jsonl"));
  EXPECT_TRUE(report.empty()) << report.render_text();
}

// A typo'd --disable must be a usage error naming the bad code, never a
// silent no-op that quietly disables nothing.
TEST(LintReport, RemoveCodesRejectsUnregisteredRuleByName) {
  LintReport report;
  report.add("FF001", SourceLocation{"x.json", 1, 1, ""}, "broken");
  try {
    report.remove_codes({"FF001", "FF999"});
    FAIL() << "expected NotFoundError for FF999";
  } catch (const NotFoundError& error) {
    EXPECT_NE(std::string(error.what()).find("FF999"), std::string::npos)
        << error.what();
  }
  EXPECT_EQ(report.size(), 1u);  // the throw left the report untouched
  report.remove_codes({"FF001"});
  EXPECT_TRUE(report.empty());
}

}  // namespace
}  // namespace ff::lint
