#include <gtest/gtest.h>

#include "lint/rules.hpp"
#include "lint_test_util.hpp"

namespace ff::lint {
namespace {

TEST(StreamRules, BadPlaneFiresEveryFF30xRule) {
  const LintReport report = lint_fixture("stream_bad.json");
  expect_findings(report, {
                              {"FF301", 8, 5, Severity::Error},
                              {"FF305", 11, 8, Severity::Error},
                              {"FF302", 15, 21, Severity::Error},
                              {"FF303", 17, 6, Severity::Error},
                              {"FF306", 18, 44, Severity::Error},
                              {"FF304", 20, 22, Severity::Warning},
                              {"FF306", 21, 44, Severity::Error},   // batch 0
                              {"FF306", 21, 56, Severity::Error},   // bad channel
                              {"FF306", 22, 44, Severity::Error},   // bad format
                              {"FF307", 23, 44, Severity::Warning}, // binary, no schema
                          });
  EXPECT_NE(report.diagnostics()[0].message.find("cycle through {a, b}"),
            std::string::npos)
      << report.diagnostics()[0].message;
}

TEST(StreamRules, CommittedFig5PlaneIsClean) {
  const LintEngine engine;
  const LintReport report =
      engine.lint_file(artifact_path("fig5_stream_plane.json"));
  EXPECT_TRUE(report.empty()) << report.render_text();
}

}  // namespace
}  // namespace ff::lint
