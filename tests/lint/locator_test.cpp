#include "lint/locator.hpp"

#include <gtest/gtest.h>

namespace ff::lint {
namespace {

constexpr const char* kText =
    "{\n"
    "  \"a\": 1,\n"
    "  \"b\": {\"c\": [10, 20, {\"d\": true}]},\n"
    "  \"e\": \"x\"\n"
    "}\n";

bool known(JsonLocator::Position position) { return position.line > 0; }

TEST(JsonLocator, RecordsObjectMembersAtTheirKey) {
  const JsonLocator locator = JsonLocator::scan(kText);
  const auto a = locator.position("a");
  ASSERT_TRUE(known(a));
  EXPECT_EQ(a.line, 2u);
  EXPECT_EQ(a.column, 3u);
  const auto nested = locator.position("b.c");
  ASSERT_TRUE(known(nested));
  EXPECT_EQ(nested.line, 3u);
  const auto root = locator.position("");
  ASSERT_TRUE(known(root));
  EXPECT_EQ(root.line, 1u);
  EXPECT_EQ(root.column, 1u);
}

TEST(JsonLocator, RecordsArrayElementsAtValueStart) {
  const JsonLocator locator = JsonLocator::scan(kText);
  const auto first = locator.position("b.c[0]");
  const auto second = locator.position("b.c[1]");
  const auto third = locator.position("b.c[2]");
  ASSERT_TRUE(known(first) && known(second) && known(third));
  EXPECT_EQ(first.line, 3u);
  EXPECT_LT(first.column, second.column);
  EXPECT_LT(second.column, third.column);
  const auto inner = locator.position("b.c[2].d");
  ASSERT_TRUE(known(inner));
  EXPECT_EQ(inner.line, 3u);
}

TEST(JsonLocator, LocateFallsBackToNearestAncestor) {
  const JsonLocator locator = JsonLocator::scan(kText);
  const SourceLocation location =
      locator.locate("f.json", "b.c[2].missing.deep");
  EXPECT_EQ(location.file, "f.json");
  EXPECT_EQ(location.json_path, "b.c[2].missing.deep");  // request preserved
  const auto anchor = locator.position("b.c[2]");
  ASSERT_TRUE(known(anchor));
  EXPECT_EQ(location.line, anchor.line);
  EXPECT_EQ(location.column, anchor.column);
}

TEST(JsonLocator, LocateUnknownPathFallsBackToRoot) {
  const JsonLocator locator = JsonLocator::scan(kText);
  const SourceLocation location = locator.locate("f.json", "zzz.nope");
  EXPECT_EQ(location.line, 1u);
  EXPECT_EQ(location.column, 1u);
}

TEST(JsonLocator, ToleratesMalformedInputKeepingPartialResults) {
  const JsonLocator locator = JsonLocator::scan("{\"a\": [1, 2");
  const auto a = locator.position("a");
  ASSERT_TRUE(known(a));
  EXPECT_EQ(a.line, 1u);
  EXPECT_TRUE(known(locator.position("a[1]")));
}

TEST(JsonLocator, EmptyTextLocatesNowhereButNeverThrows) {
  const JsonLocator locator = JsonLocator::scan("");
  EXPECT_FALSE(known(locator.position("a")));
  const SourceLocation location = locator.locate("f.json", "a");
  EXPECT_EQ(location.file, "f.json");
}

TEST(JsonLocator, CrlfLineEndingsAdvanceLinesNotColumns) {
  const JsonLocator locator =
      JsonLocator::scan("{\r\n  \"a\": 1,\r\n  \"b\": {\"c\": 2}\r\n}\r\n");
  const auto a = locator.position("a");
  ASSERT_TRUE(known(a));
  EXPECT_EQ(a.line, 2u);
  EXPECT_EQ(a.column, 3u);  // the \r belongs to line 1, not this column
  const auto c = locator.position("b.c");
  ASSERT_TRUE(known(c));
  EXPECT_EQ(c.line, 3u);
  EXPECT_EQ(c.column, 9u);
}

// Columns are 1-based BYTE offsets into the line (locator.hpp documents
// this): a multi-byte UTF-8 key shifts later keys by its encoded size, so
// editors seeking byte offsets land exactly on the reported position.
TEST(JsonLocator, MultiByteKeysKeepByteOffsetStableColumns) {
  // "π" is 2 bytes (0xCF 0x80); "数" is 3 bytes (0xE6 0x95 0xB0).
  const JsonLocator locator =
      JsonLocator::scan("{\n  \"\xCF\x80\": 1, \"after\": 2,\n"
                        "  \"\xE6\x95\xB0\": {\"k\": 3}\n}\n");
  const auto pi = locator.position("\xCF\x80");
  ASSERT_TRUE(known(pi));
  EXPECT_EQ(pi.line, 2u);
  EXPECT_EQ(pi.column, 3u);
  const auto after = locator.position("after");
  ASSERT_TRUE(known(after));
  EXPECT_EQ(after.line, 2u);
  EXPECT_EQ(after.column, 12u);  // byte offset: 11 if columns counted chars
  const auto nested = locator.position("\xE6\x95\xB0.k");
  ASSERT_TRUE(known(nested));
  EXPECT_EQ(nested.line, 3u);
  EXPECT_EQ(nested.column, 11u);  // "数" spans bytes 4-6 of its line
}

}  // namespace
}  // namespace ff::lint
