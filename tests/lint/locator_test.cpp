#include "lint/locator.hpp"

#include <gtest/gtest.h>

namespace ff::lint {
namespace {

constexpr const char* kText =
    "{\n"
    "  \"a\": 1,\n"
    "  \"b\": {\"c\": [10, 20, {\"d\": true}]},\n"
    "  \"e\": \"x\"\n"
    "}\n";

bool known(JsonLocator::Position position) { return position.line > 0; }

TEST(JsonLocator, RecordsObjectMembersAtTheirKey) {
  const JsonLocator locator = JsonLocator::scan(kText);
  const auto a = locator.position("a");
  ASSERT_TRUE(known(a));
  EXPECT_EQ(a.line, 2u);
  EXPECT_EQ(a.column, 3u);
  const auto nested = locator.position("b.c");
  ASSERT_TRUE(known(nested));
  EXPECT_EQ(nested.line, 3u);
  const auto root = locator.position("");
  ASSERT_TRUE(known(root));
  EXPECT_EQ(root.line, 1u);
  EXPECT_EQ(root.column, 1u);
}

TEST(JsonLocator, RecordsArrayElementsAtValueStart) {
  const JsonLocator locator = JsonLocator::scan(kText);
  const auto first = locator.position("b.c[0]");
  const auto second = locator.position("b.c[1]");
  const auto third = locator.position("b.c[2]");
  ASSERT_TRUE(known(first) && known(second) && known(third));
  EXPECT_EQ(first.line, 3u);
  EXPECT_LT(first.column, second.column);
  EXPECT_LT(second.column, third.column);
  const auto inner = locator.position("b.c[2].d");
  ASSERT_TRUE(known(inner));
  EXPECT_EQ(inner.line, 3u);
}

TEST(JsonLocator, LocateFallsBackToNearestAncestor) {
  const JsonLocator locator = JsonLocator::scan(kText);
  const SourceLocation location =
      locator.locate("f.json", "b.c[2].missing.deep");
  EXPECT_EQ(location.file, "f.json");
  EXPECT_EQ(location.json_path, "b.c[2].missing.deep");  // request preserved
  const auto anchor = locator.position("b.c[2]");
  ASSERT_TRUE(known(anchor));
  EXPECT_EQ(location.line, anchor.line);
  EXPECT_EQ(location.column, anchor.column);
}

TEST(JsonLocator, LocateUnknownPathFallsBackToRoot) {
  const JsonLocator locator = JsonLocator::scan(kText);
  const SourceLocation location = locator.locate("f.json", "zzz.nope");
  EXPECT_EQ(location.line, 1u);
  EXPECT_EQ(location.column, 1u);
}

TEST(JsonLocator, ToleratesMalformedInputKeepingPartialResults) {
  const JsonLocator locator = JsonLocator::scan("{\"a\": [1, 2");
  const auto a = locator.position("a");
  ASSERT_TRUE(known(a));
  EXPECT_EQ(a.line, 1u);
  EXPECT_TRUE(known(locator.position("a[1]")));
}

TEST(JsonLocator, EmptyTextLocatesNowhereButNeverThrows) {
  const JsonLocator locator = JsonLocator::scan("");
  EXPECT_FALSE(known(locator.position("a")));
  const SourceLocation location = locator.locate("f.json", "a");
  EXPECT_EQ(location.file, "f.json");
}

}  // namespace
}  // namespace ff::lint
