#include <gtest/gtest.h>

#include <algorithm>

#include "lint/rules.hpp"
#include "lint_test_util.hpp"
#include "util/json.hpp"

namespace ff::lint {
namespace {

// ---------------------------------------------------------------------------
// Manifest rules over fixtures (golden locations)
// ---------------------------------------------------------------------------

TEST(CampaignRules, BadManifestFiresFourErrors) {
  const LintReport report = lint_fixture("campaign_bad.json");
  expect_findings(report, {
                              {"FF201", 6, 5, Severity::Error},
                              {"FF202", 12, 7, Severity::Error},
                              {"FF204", 19, 14, Severity::Error},
                              {"FF207", 20, 47, Severity::Error},
                          });
}

TEST(CampaignRules, WalltimeBudgetBoundIsConservative) {
  const LintReport report = lint_fixture("campaign_overbudget.json");
  expect_findings(report, {{"FF203", 13, 7, Severity::Error}});
  EXPECT_NE(report.diagnostics()[0].message.find("at least 10 waves"),
            std::string::npos)
      << report.diagnostics()[0].message;
}

TEST(CampaignRules, UnknownMachineIsAWarningNotAnError) {
  const LintReport report = lint_fixture("campaign_unknown_machine.json");
  expect_findings(report, {{"FF206", 8, 3, Severity::Warning}});
  EXPECT_FALSE(report.has_errors());
}

TEST(CampaignRules, MalformedGroupEntryIsFF004) {
  const Json manifest = Json::parse(R"({
    "name": "m", "app": {"name": "a", "executable": "e", "args_template": ""},
    "groups": [42]
  })");
  const LintReport report = lint_campaign_manifest(
      manifest, JsonLocator::scan(""), "<inline>");
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.diagnostics()[0].code, "FF004");
  EXPECT_TRUE(report.has_errors());
}

TEST(CampaignRules, CommittedIrfManifestIsClean) {
  const LintEngine engine;
  const LintReport report =
      engine.lint_file(artifact_path("irf_campaign_manifest.json"));
  EXPECT_TRUE(report.empty()) << report.render_text();
}

namespace {
/// A manifest whose one sweep multiplies `wide` 128-value parameters with
/// one `tail_cardinality`-value parameter — the cross product is
/// tail_cardinality × 2^(7·wide), which wraps size_t once that passes 2^64.
Json overflow_manifest(int wide, int64_t tail_cardinality) {
  Json values = Json::array();
  for (int64_t i = 0; i < 128; ++i) values.push_back(Json(i));
  Json parameters = Json::array();
  for (int p = 0; p < wide; ++p) {
    Json parameter = Json::object();
    parameter["name"] = "p" + std::to_string(p);
    parameter["values"] = values;
    parameters.push_back(std::move(parameter));
  }
  Json tail = Json::object();
  tail["name"] = "tail";
  Json tail_values = Json::array();
  for (int64_t i = 0; i < tail_cardinality; ++i) tail_values.push_back(Json(i));
  tail["values"] = std::move(tail_values);
  parameters.push_back(std::move(tail));
  Json sweep = Json::object();
  sweep["name"] = "huge";
  sweep["parameters"] = std::move(parameters);
  Json sweeps = Json::array();
  sweeps.push_back(std::move(sweep));
  Json group = Json::object();
  group["name"] = "g";
  group["nodes"] = int64_t{1};
  group["walltime_s"] = 1.0;  // would trip FF203 if a wrapped count leaked
  group["sweeps"] = std::move(sweeps);
  Json groups = Json::array();
  groups.push_back(std::move(group));
  Json app = Json::object();
  app["name"] = "a";
  app["executable"] = "e";
  app["args_template"] = "";
  Json manifest = Json::object();
  manifest["name"] = "m";
  manifest["machine"] = "workstation";
  manifest["app"] = std::move(app);
  manifest["groups"] = std::move(groups);
  return manifest;
}
}  // namespace

TEST(CampaignRules, SweepCardinalityOverflowIsFF210) {
  // 9 × 128 values × one 3-value tail is 3·2^63 runs — past size_t. The old
  // counter wrapped and fed FF203 a bogus "small" sweep; the rule now fires
  // FF210 once per sweep and withdraws the group from the budget math.
  const LintReport report = lint_campaign_manifest(
      overflow_manifest(9, 3), JsonLocator::scan(""), "<inline>");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF210");
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::Warning);
  EXPECT_FALSE(report.has_errors());
  // One parameter short of the wrap: counted normally, and the walltime
  // budget rule sees the genuine (astronomically over-budget) product.
  const LintReport fits = lint_campaign_manifest(
      overflow_manifest(8, 3), JsonLocator::scan(""), "<inline>");
  ASSERT_EQ(fits.size(), 1u) << fits.render_text();
  EXPECT_EQ(fits.diagnostics()[0].code, "FF203");
}

TEST(CampaignRules, ManifestRunIdsSkipOverflowingSweep) {
  // Enumerating a wrapped count would either loop ~2^63 times or emit ids
  // the real sweep could never produce — an overflowing sweep yields none.
  EXPECT_TRUE(manifest_run_ids(overflow_manifest(9, 3)).empty());
}

// ---------------------------------------------------------------------------
// manifest_run_ids mirrors SweepGroup::generate()
// ---------------------------------------------------------------------------

TEST(CampaignRules, ManifestRunIdsExpandTheCartesianProduct) {
  const Json manifest = Json::parse(R"({
    "name": "camp",
    "groups": [{"name": "g", "sweeps": [{
      "name": "s",
      "parameters": [{"name": "x", "values": [1, 2]},
                      {"name": "y", "values": [10, 20, 30]}]
    }]}]
  })");
  const std::vector<std::string> ids = manifest_run_ids(manifest);
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(ids.front(), "g/s/run-0000");
  EXPECT_EQ(ids.back(), "g/s/run-0005");
}

// ---------------------------------------------------------------------------
// Journal preflight (lint_journal_text) — mirrors CampaignJournal::replay()
// ---------------------------------------------------------------------------

constexpr const char* kHeader =
    R"({"kind":"header","schema":2,"campaign":"camp","runs":["g/s/run-0000"]})";

Json matching_manifest() {
  return Json::parse(R"({
    "name": "camp",
    "app": {"name": "a", "executable": "e", "args_template": ""},
    "groups": [{"name": "g", "sweeps": [{
      "name": "s", "parameters": [{"name": "x", "values": [1]}]
    }]}]
  })");
}

std::vector<std::string> codes_of(const LintReport& report) {
  std::vector<std::string> codes;
  for (const Diagnostic& diag : report.diagnostics()) codes.push_back(diag.code);
  return codes;
}

TEST(JournalLint, HealthyJournalAndManifestAreClean) {
  const std::string text = std::string(kHeader) + "\n";
  const LintReport report =
      lint_journal_text(text, "j.jsonl", matching_manifest(), "manifest.json");
  EXPECT_TRUE(report.empty()) << report.render_text();
}

TEST(JournalLint, EmptyJournalMeansNeverStartedAndIsClean) {
  const LintReport report = lint_journal_text("", "j.jsonl", Json(), "");
  EXPECT_TRUE(report.empty());
}

TEST(JournalLint, UnknownSchemaVersionIsFF205) {
  const std::string text =
      R"({"kind":"header","schema":99,"campaign":"camp","runs":[]})"
      "\n";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF205");
  EXPECT_EQ(report.diagnostics()[0].location.json_path, "schema");
  EXPECT_TRUE(report.has_errors());
}

TEST(JournalLint, SecondHeaderIsFF205) {
  const std::string text = std::string(kHeader) + "\n" + kHeader + "\n";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF205");
  EXPECT_EQ(report.diagnostics()[0].location.line, 2u);
}

TEST(JournalLint, NonHeaderFirstLineIsFF205) {
  const LintReport report =
      lint_journal_text("{\"kind\":\"alloc\"}\n", "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].code, "FF205");
}

TEST(JournalLint, CorruptMiddleLineIsFF001Error) {
  const std::string text = std::string(kHeader) +
                           "\n{not json\n{\"kind\":\"alloc\"}\n";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF001");
  EXPECT_EQ(report.diagnostics()[0].location.line, 2u);
  EXPECT_TRUE(report.has_errors());
}

TEST(JournalLint, TornUnparseableTailIsOnlyANote) {
  const std::string text = std::string(kHeader) + "\n{\"kind\":\"all";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF208");
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::Note);
  EXPECT_FALSE(report.has_errors());  // resume repairs this on its own
}

TEST(JournalLint, UnterminatedButParseableTailIsFF208) {
  const std::string text = std::string(kHeader) + "\n{\"kind\":\"alloc\"}";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF208");
  EXPECT_EQ(report.diagnostics()[0].location.line, 2u);
}

TEST(JournalLint, CampaignNameMismatchIsFF205) {
  const std::string text = std::string(kHeader) + "\n";
  Json manifest = matching_manifest();
  manifest["name"] = Json("other-campaign");
  const LintReport report =
      lint_journal_text(text, "j.jsonl", manifest, "manifest.json");
  const std::vector<std::string> codes = codes_of(report);
  ASSERT_FALSE(codes.empty()) << report.render_text();
  EXPECT_NE(std::find(codes.begin(), codes.end(), "FF205"), codes.end());
}

TEST(JournalLint, RunSetDriftFiresInBothDirections) {
  // Journal registers a run the manifest no longer produces...
  const std::string shrunk =
      R"({"kind":"header","schema":2,"campaign":"camp",)"
      R"("runs":["g/s/run-0000","g/s/run-0001"]})"
      "\n";
  const LintReport gone =
      lint_journal_text(shrunk, "j.jsonl", matching_manifest(), "m.json");
  ASSERT_EQ(gone.size(), 1u) << gone.render_text();
  EXPECT_EQ(gone.diagnostics()[0].code, "FF205");
  EXPECT_NE(gone.diagnostics()[0].message.find("no longer produce"),
            std::string::npos);

  // ...and the manifest grew a run the journal never registered.
  const std::string stale =
      R"({"kind":"header","schema":2,"campaign":"camp","runs":[]})"
      "\n";
  const LintReport grew =
      lint_journal_text(stale, "j.jsonl", matching_manifest(), "m.json");
  ASSERT_EQ(grew.size(), 1u) << grew.render_text();
  EXPECT_EQ(grew.diagnostics()[0].code, "FF205");
  EXPECT_NE(grew.diagnostics()[0].message.find("never registered"),
            std::string::npos);
}

TEST(JournalLint, DigestDriftFiresWhenHeaderCarriesNoInlineRuns) {
  // A scale-sized journal header: count + digest, no inline run list. The
  // digest below is for a different run set than the manifest's.
  const std::string text =
      R"({"kind":"header","schema":2,"campaign":"camp",)"
      R"("run_count":2,"runs_digest":"0000000000000000"})"
      "\n";
  const LintReport report =
      lint_journal_text(text, "j.jsonl", matching_manifest(), "m.json");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF205");
  EXPECT_EQ(report.diagnostics()[0].location.json_path, "runs_digest");
  EXPECT_NE(report.diagnostics()[0].message.find("drifted"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FF209 checkpoint-coverage-gap
// ---------------------------------------------------------------------------

TEST(JournalLint, CheckpointedAndCompactedJournalIsClean) {
  const std::string text =
      std::string(kHeader) + "\n" +
      R"({"kind":"compact"})" "\n" +
      R"({"kind":"ckpt","next_index":2,"clock":80.0,"tracker":{}})" "\n" +
      R"({"kind":"alloc","index":2,"start":80.0,"end":120.0})" "\n";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  EXPECT_TRUE(report.empty()) << report.render_text();
}

TEST(JournalLint, CheckpointDisagreeingWithAllocCountIsFF209) {
  const std::string text =
      std::string(kHeader) + "\n" +
      R"({"kind":"alloc","index":0})" "\n" +
      R"({"kind":"ckpt","next_index":5,"clock":10.0,"tracker":{}})" "\n";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF209");
  EXPECT_EQ(report.diagnostics()[0].location.line, 3u);
  EXPECT_TRUE(report.has_errors());
}

TEST(JournalLint, AllocAfterCompactWithoutCheckpointIsFF209) {
  // A compaction marker voids index coverage; an alloc record arriving
  // before any checkpoint means history was dropped unsummarized.
  const std::string text =
      std::string(kHeader) + "\n" +
      R"({"kind":"compact"})" "\n" +
      R"({"kind":"alloc","index":7})" "\n";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF209");
  EXPECT_NE(report.diagnostics()[0].message.find("compaction marker"),
            std::string::npos);
}

TEST(JournalLint, AllocIndexGapIsFF209) {
  const std::string text =
      std::string(kHeader) + "\n" +
      R"({"kind":"alloc","index":0})" "\n" +
      R"({"kind":"alloc","index":3})" "\n";
  const LintReport report = lint_journal_text(text, "j.jsonl", Json(), "");
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  EXPECT_EQ(report.diagnostics()[0].code, "FF209");
  EXPECT_EQ(report.diagnostics()[0].location.line, 3u);
}

}  // namespace
}  // namespace ff::lint
