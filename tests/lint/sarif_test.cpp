#include "lint/sarif.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lint_test_util.hpp"
#include "util/json.hpp"

namespace ff::lint {
namespace {

// Round-trip the campaign_bad fixture through render_sarif and verify the
// log against the SARIF 2.1.0 shape CI annotators consume.
TEST(Sarif, RoundTripsTheCampaignFixture) {
  const LintReport report = lint_fixture("campaign_bad.json");
  ASSERT_EQ(report.size(), 4u) << report.render_text();

  const Json log = Json::parse(render_sarif(report));
  EXPECT_EQ(log["$schema"].as_string(),
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json");
  EXPECT_EQ(log["version"].as_string(), "2.1.0");

  const Json& run = log["runs"][0];
  const Json& driver = run["tool"]["driver"];
  EXPECT_EQ(driver["name"].as_string(), "fairflow-lint");

  // Rules are deduped, listed in first-appearance order, with registry
  // metadata attached.
  const Json& rules = driver["rules"];
  std::set<std::string> rule_ids;
  for (const Json& rule : rules.as_array()) {
    EXPECT_TRUE(rule_ids.insert(rule["id"].as_string()).second);
    EXPECT_FALSE(rule["shortDescription"]["text"].as_string().empty());
    EXPECT_FALSE(rule["defaultConfiguration"]["level"].as_string().empty());
    EXPECT_EQ(rule["properties"]["family"].as_string(), "campaign");
  }
  EXPECT_EQ(rule_ids.size(), 4u);  // FF201, FF202, FF204, FF207

  // Every result points back into the rules array consistently and carries
  // the physical + logical location of its diagnostic.
  const Json& results = run["results"];
  ASSERT_EQ(results.as_array().size(), report.size());
  for (size_t i = 0; i < report.size(); ++i) {
    const Diagnostic& diag = report.diagnostics()[i];
    const Json& result = results[i];
    EXPECT_EQ(result["ruleId"].as_string(), diag.code);
    const int64_t index = result["ruleIndex"].as_int();
    ASSERT_GE(index, 0);
    ASSERT_LT(static_cast<size_t>(index), rules.as_array().size());
    EXPECT_EQ(rules[static_cast<size_t>(index)]["id"].as_string(), diag.code);
    EXPECT_EQ(result["level"].as_string(), "error");

    const Json& physical = result["locations"][0]["physicalLocation"];
    EXPECT_NE(physical["artifactLocation"]["uri"].as_string().find(
                  "campaign_bad.json"),
              std::string::npos);
    EXPECT_EQ(physical["region"]["startLine"].as_int(),
              static_cast<int64_t>(diag.location.line));
    EXPECT_EQ(physical["region"]["startColumn"].as_int(),
              static_cast<int64_t>(diag.location.column));
    const Json& logical = result["locations"][0]["logicalLocations"][0];
    EXPECT_EQ(logical["fullyQualifiedName"].as_string(),
              diag.location.json_path);
  }
}

TEST(Sarif, EmptyReportIsStillAValidLog) {
  const Json log = to_sarif(LintReport{});
  EXPECT_EQ(log["version"].as_string(), "2.1.0");
  EXPECT_TRUE(log["runs"][0]["results"].as_array().empty());
  EXPECT_TRUE(log["runs"][0]["tool"]["driver"]["rules"].as_array().empty());
}

TEST(Sarif, FixitIsFoldedIntoTheMessageAndLevelTracksSeverity) {
  LintReport report;
  report.add("FF206", SourceLocation{"m.json", 8, 3, "machine"},
             "machine 'frontier' is not a known preset",
             "pick one of summit/institutional-cluster/workstation");
  const Json log = to_sarif(report);
  const Json& result = log["runs"][0]["results"][0];
  EXPECT_EQ(result["level"].as_string(), "warning");
  EXPECT_NE(result["message"]["text"].as_string().find("Fix: pick one of"),
            std::string::npos);
}

LintReport one_finding_report() {
  LintReport report;
  Diagnostic& diagnostic = report.add(
      "FF610", SourceLocation{"plane.json", 32, 7, "graph.components[3]"},
      "join 'join' is fed by blocking paths reconverging at different rates",
      "balance the branch rates");
  diagnostic.related.push_back(
      SourceLocation{"plane.json", 43, 7, "graph.edges[0]"});
  diagnostic.related.push_back(
      SourceLocation{"plane.json", 45, 7, "graph.edges[2]"});
  return report;
}

TEST(Sarif, FingerprintIsStableAndKeyedOnTheFinding) {
  const LintReport report = one_finding_report();
  const Diagnostic& diagnostic = report.diagnostics()[0];
  const std::string fingerprint = diagnostic_fingerprint(diagnostic);
  EXPECT_EQ(fingerprint.size(), 16u);
  EXPECT_EQ(fingerprint.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_EQ(diagnostic_fingerprint(diagnostic), fingerprint);  // deterministic

  Diagnostic moved = diagnostic;
  moved.location.line = 99;  // same finding, reflowed file: same fingerprint
  EXPECT_EQ(diagnostic_fingerprint(moved), fingerprint);
  Diagnostic reworded = diagnostic;
  reworded.message += " (now worse)";
  EXPECT_NE(diagnostic_fingerprint(reworded), fingerprint);
  Diagnostic elsewhere = diagnostic;
  elsewhere.location.json_path = "graph.components[2]";
  EXPECT_NE(diagnostic_fingerprint(elsewhere), fingerprint);
}

TEST(Sarif, ResultsCarryFingerprintsAndRelatedLocations) {
  const LintReport report = one_finding_report();
  const Json log = to_sarif(report);
  const Json& result = log["runs"][0]["results"][0];
  EXPECT_EQ(result["fingerprints"]["fairflow/v1"].as_string(),
            diagnostic_fingerprint(report.diagnostics()[0]));
  const Json& related = result["relatedLocations"];
  ASSERT_EQ(related.as_array().size(), 2u);
  EXPECT_EQ(related[0]["physicalLocation"]["artifactLocation"]["uri"]
                .as_string(),
            "plane.json");
  EXPECT_EQ(related[0]["logicalLocations"][0]["fullyQualifiedName"]
                .as_string(),
            "graph.edges[0]");
  EXPECT_EQ(related[1]["physicalLocation"]["region"]["startLine"].as_int(),
            45);
}

TEST(Sarif, FingerprintHarvestReadsStoredAndRecomputesForeignLogs) {
  const LintReport report = one_finding_report();
  const std::set<std::string> stored = sarif_fingerprints(to_sarif(report));
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_EQ(*stored.begin(),
            diagnostic_fingerprint(report.diagnostics()[0]));

  // A SARIF log another tool wrote: no "fingerprints" property, so the
  // harvest recomputes one from ruleId + location + message.
  const Json foreign = Json::parse(R"({
    "version": "2.1.0",
    "runs": [{"results": [{
      "ruleId": "FF610",
      "message": {"text": "join starves"},
      "locations": [{
        "physicalLocation": {"artifactLocation": {"uri": "plane.json"}},
        "logicalLocations": [{"fullyQualifiedName": "graph.components[3]"}]
      }]
    }]}]
  })");
  const std::set<std::string> recomputed = sarif_fingerprints(foreign);
  ASSERT_EQ(recomputed.size(), 1u);
  EXPECT_EQ(recomputed.begin()->size(), 16u);
  EXPECT_EQ(sarif_fingerprints(foreign), recomputed);  // stable
}

TEST(Sarif, ApplyBaselineFiltersOnlyMatchingFindings) {
  LintReport report = one_finding_report();
  report.add("FF001", SourceLocation{"other.json", 1, 1, ""},
             "not parseable");
  const std::string keep =
      diagnostic_fingerprint(report.diagnostics()[1]);
  apply_baseline(report,
                 {diagnostic_fingerprint(report.diagnostics()[0])});
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(diagnostic_fingerprint(report.diagnostics()[0]), keep);

  apply_baseline(report, {});  // empty baseline suppresses nothing
  EXPECT_EQ(report.size(), 1u);
}

}  // namespace
}  // namespace ff::lint
