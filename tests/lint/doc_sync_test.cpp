// docs/lint_codes.md is the normative rule catalog; the registry in
// lint/diagnostic.cpp is the implementation. This test pins the two
// together in both directions — the same contract tests/obs/trace_lint
// enforces for the trace event schema.

#include <gtest/gtest.h>

#include <regex>
#include <set>
#include <string>

#include "lint/diagnostic.hpp"
#include "util/fs.hpp"

namespace ff::lint {
namespace {

std::set<std::string> documented_codes() {
  const std::string text =
      read_file(std::string(FF_REPO_ROOT) + "/docs/lint_codes.md");
  std::set<std::string> codes;
  const std::regex pattern("`(FF\\d{3})`");
  for (std::sregex_iterator it(text.begin(), text.end(), pattern), end;
       it != end; ++it) {
    codes.insert((*it)[1].str());
  }
  return codes;
}

TEST(DocSync, EveryRegisteredRuleIsDocumented) {
  const std::set<std::string> documented = documented_codes();
  for (const RuleInfo& rule : rule_registry()) {
    EXPECT_TRUE(documented.count(std::string(rule.code)))
        << "rule " << rule.code << " (" << rule.name
        << ") is missing from docs/lint_codes.md — add a table row";
  }
}

TEST(DocSync, EveryDocumentedCodeIsRegistered) {
  for (const std::string& code : documented_codes()) {
    EXPECT_NE(find_rule(code), nullptr)
        << "docs/lint_codes.md documents " << code
        << " but the registry in lint/diagnostic.cpp has no such rule — "
           "delete the row or implement the rule";
  }
}

}  // namespace
}  // namespace ff::lint
