#include <gtest/gtest.h>

#include "gwas/workflow.hpp"
#include "lint/rules.hpp"
#include "lint_test_util.hpp"
#include "util/fs.hpp"

namespace ff::lint {
namespace {

LintEngine gwas_engine() {
  LintEngine engine;
  engine.register_model(
      {"gwas-paste", gwas::paste_model_schema(), gwas::make_paste_generator()});
  return engine;
}

// model_bad.json against the registered gwas-paste schema: a required field
// missing (dataset.count), a type mismatch (machine.nodes as string), and a
// model key no template or schema entry consumes ("notes").
TEST(ModelRules, BadModelFiresMissingMismatchAndUnusedKey) {
  const LintReport report = lint_fixture("model_bad.json", gwas_engine());
  expect_findings(report, {
                              {"FF104", 3, 3, Severity::Error},
                              {"FF103", 10, 5, Severity::Error},
                              {"FF102", 12, 3, Severity::Warning},
                          });
}

// FF101 needs a registration whose generator references a variable the
// schema never declares — built locally so the fixture stays tiny.
TEST(ModelRules, UnboundTemplateVariableFiresAgainstToySchema) {
  skel::ModelSchema schema;
  schema.require("title", "string", "report title");
  skel::Generator generator("toy");
  generator.add_template("out.txt", "{{title}} {{missing.thing}}\n", false);

  LintEngine engine;
  engine.register_model({"toy-report", std::move(schema), std::move(generator)});

  const LintReport report = lint_fixture("model_unbound.json", engine);
  ASSERT_EQ(report.size(), 1u) << report.render_text();
  const Diagnostic& diag = report.diagnostics()[0];
  EXPECT_EQ(diag.code, "FF101");
  EXPECT_EQ(diag.severity, Severity::Error);
  EXPECT_NE(diag.message.find("missing.thing"), std::string::npos)
      << diag.message;
}

// Without any matching registration the same file is only FF003: the model
// claims a schema nobody told the linter about — a warning, not an error,
// because the registration may simply live in another binary.
TEST(ModelRules, UnregisteredModelSchemaIsAWarning) {
  const LintReport report = lint_fixture("model_unbound.json");
  expect_findings(report, {{"FF003", 2, 3, Severity::Warning}});
}

// The committed Fig. 2 artifact must stay clean — it is what the README
// points users at and what the lint_self ctest sweeps.
TEST(ModelRules, CommittedGwasArtifactIsClean) {
  const LintEngine engine = gwas_engine();
  const LintReport report =
      engine.lint_file(artifact_path("fig2_gwas_paste_model.json"));
  EXPECT_TRUE(report.empty()) << report.render_text();
}

}  // namespace
}  // namespace ff::lint
