#include "skel/model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::skel {
namespace {

ModelSchema paste_schema() {
  ModelSchema schema;
  schema.require("dataset.path", "string", "directory containing input shards")
      .require("dataset.count", "int", "number of shard files")
      .require("machine.account", "string")
      .optional("machine.nodes", "int", Json(1))
      .optional("strategy.fan_in", "int", Json(16), "files per sub-paste");
  return schema;
}

TEST(ModelSchema, ValidModelPasses) {
  const Json doc = Json::parse(
      R"({"dataset":{"path":"/data","count":100},"machine":{"account":"X"}})");
  EXPECT_TRUE(paste_schema().validate(doc).empty());
}

TEST(ModelSchema, MissingRequiredFieldReported) {
  const Json doc = Json::parse(R"({"dataset":{"path":"/data"}})");
  const auto problems = paste_schema().validate(doc);
  ASSERT_EQ(problems.size(), 2u);  // dataset.count and machine.account
  EXPECT_NE(problems[0].find("dataset.count"), std::string::npos);
}

TEST(ModelSchema, TypeMismatchReported) {
  const Json doc = Json::parse(
      R"({"dataset":{"path":7,"count":100},"machine":{"account":"X"}})");
  const auto problems = paste_schema().validate(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("must be string"), std::string::npos);
}

TEST(ModelSchema, NonObjectModelReported) {
  EXPECT_FALSE(paste_schema().validate(Json::parse("[1,2]")).empty());
}

TEST(ModelSchema, DoubleAcceptsInt) {
  ModelSchema schema;
  schema.require("x", "double");
  EXPECT_TRUE(schema.validate(Json::parse(R"({"x":3})")).empty());
  EXPECT_TRUE(schema.validate(Json::parse(R"({"x":3.5})")).empty());
}

TEST(ModelSchema, UnknownTypeThrows) {
  ModelSchema schema;
  schema.require("x", "quaternion");
  EXPECT_THROW(schema.validate(Json::parse(R"({"x":1})")), ValidationError);
}

TEST(ModelSchema, WithDefaultsFillsMissingOptionals) {
  const Json doc = Json::parse(
      R"({"dataset":{"path":"/d","count":2},"machine":{"account":"X"}})");
  const Json filled = paste_schema().with_defaults(doc);
  EXPECT_EQ(filled.at_path("machine.nodes").as_int(), 1);
  EXPECT_EQ(filled.at_path("strategy.fan_in").as_int(), 16);
  // Existing values are never overwritten.
  const Json doc2 = Json::parse(
      R"({"dataset":{"path":"/d","count":2},"machine":{"account":"X","nodes":8}})");
  EXPECT_EQ(paste_schema().with_defaults(doc2).at_path("machine.nodes").as_int(), 8);
}

TEST(ModelSchema, DocumentListsEveryField) {
  const std::string text = paste_schema().document();
  EXPECT_NE(text.find("`dataset.path`"), std::string::npos);
  EXPECT_NE(text.find("optional, default 16"), std::string::npos);
  EXPECT_NE(text.find("files per sub-paste"), std::string::npos);
}

TEST(Model, ConstructionValidatesAndFillsDefaults) {
  const Model model(Json::parse(R"({"dataset":{"path":"/d","count":2},
                                    "machine":{"account":"X"}})"),
                    paste_schema());
  EXPECT_EQ(model.at("strategy.fan_in").as_int(), 16);
  EXPECT_THROW(Model(Json::parse("{}"), paste_schema()), ValidationError);
}

TEST(Model, LoadFromFile) {
  TempDir dir;
  write_file(dir.file("model.json"),
             R"({"dataset":{"path":"/d","count":5},"machine":{"account":"A"}})");
  const Model model = Model::load(dir.file("model.json"), paste_schema());
  EXPECT_EQ(model.at("dataset.count").as_int(), 5);
  EXPECT_THROW(Model::load(dir.file("missing.json"), paste_schema()), IoError);
}

}  // namespace
}  // namespace ff::skel
