#include "skel/template_engine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::skel {
namespace {

Json model(const char* text) { return Json::parse(text); }

TEST(Template, PlainTextPassesThrough) {
  EXPECT_EQ(Template::parse("#!/bin/bash\necho hi\n").render(model("{}")),
            "#!/bin/bash\necho hi\n");
}

TEST(Template, SimpleSubstitution) {
  EXPECT_EQ(Template::parse("hello {{name}}!").render(model(R"({"name":"world"})")),
            "hello world!");
}

TEST(Template, DottedPathAndIndexing) {
  const Json m = model(R"({"machine":{"queues":[{"name":"batch"}]}})");
  EXPECT_EQ(Template::parse("{{machine.queues[0].name}}").render(m), "batch");
}

TEST(Template, NumberRendering) {
  const Json m = model(R"({"n":16,"x":2.5,"flag":true})");
  EXPECT_EQ(Template::parse("{{n}} {{x}} {{flag}}").render(m), "16 2.5 true");
}

TEST(Template, UnknownVariableIsAnError) {
  EXPECT_THROW(Template::parse("{{missing}}").render(model("{}")), ValidationError);
}

TEST(Template, Filters) {
  const Json m = model(R"({"s":" MiXeD ","l":[1,2]})");
  EXPECT_EQ(Template::parse("{{s|upper}}").render(m), " MIXED ");
  EXPECT_EQ(Template::parse("{{s|lower}}").render(m), " mixed ");
  EXPECT_EQ(Template::parse("{{s|trim}}").render(m), "MiXeD");
  EXPECT_EQ(Template::parse("{{l|json}}").render(m), "[1,2]");
}

TEST(Template, AggregateWithoutJsonFilterIsAnError) {
  EXPECT_THROW(Template::parse("{{l}}").render(model(R"({"l":[1]})")),
               ValidationError);
}

TEST(Template, UnknownFilterIsAParseError) {
  EXPECT_THROW(Template::parse("{{x|rot13}}"), ParseError);
}

TEST(Template, EachIteratesWithMetavariables) {
  const Json m = model(R"({"jobs":[{"id":"a"},{"id":"b"},{"id":"c"}]})");
  const std::string out = Template::parse(
      "{{#each jobs}}{{@index}}:{{id}}{{#if @last}}.{{else}},{{/if}}{{/each}}")
      .render(m);
  EXPECT_EQ(out, "0:a,1:b,2:c.");
}

TEST(Template, EachOverScalarsUsesThis) {
  const Json m = model(R"({"files":["x.csv","y.csv"]})");
  EXPECT_EQ(Template::parse("{{#each files}}[{{this}}]{{/each}}").render(m),
            "[x.csv][y.csv]");
}

TEST(Template, EachFirstMetavariable) {
  const Json m = model(R"({"v":[1,2,3]})");
  EXPECT_EQ(
      Template::parse("{{#each v}}{{#if @first}}^{{/if}}{{this}}{{/each}}").render(m),
      "^123");
}

TEST(Template, ParentScopeVisibleInsideEach) {
  const Json m = model(R"({"account":"BIF101","jobs":[{"id":1},{"id":2}]})");
  EXPECT_EQ(
      Template::parse("{{#each jobs}}{{id}}@{{account}} {{/each}}").render(m),
      "1@BIF101 2@BIF101 ");
}

TEST(Template, NestedEach) {
  const Json m = model(R"({"groups":[{"items":[1,2]},{"items":[3]}]})");
  EXPECT_EQ(
      Template::parse("{{#each groups}}({{#each items}}{{this}}{{/each}}){{/each}}")
          .render(m),
      "(12)(3)");
}

TEST(Template, IfElseBranches) {
  const Template t = Template::parse("{{#if debug}}DBG{{else}}REL{{/if}}");
  EXPECT_EQ(t.render(model(R"({"debug":true})")), "DBG");
  EXPECT_EQ(t.render(model(R"({"debug":false})")), "REL");
  EXPECT_EQ(t.render(model("{}")), "REL");  // missing path is falsy
}

TEST(Template, Truthiness) {
  EXPECT_FALSE(truthy(Json()));
  EXPECT_FALSE(truthy(Json(0)));
  EXPECT_FALSE(truthy(Json(0.0)));
  EXPECT_FALSE(truthy(Json("")));
  EXPECT_FALSE(truthy(Json::array()));
  EXPECT_FALSE(truthy(Json::object()));
  EXPECT_TRUE(truthy(Json(1)));
  EXPECT_TRUE(truthy(Json("x")));
  EXPECT_TRUE(truthy(Json::array({1})));
}

TEST(Template, CommentsAreDropped) {
  EXPECT_EQ(Template::parse("a{{! ignore me }}b").render(model("{}")), "ab");
}

TEST(Template, PartialsRenderInCurrentContext) {
  std::map<std::string, Template> partials;
  partials.emplace("header", Template::parse("#SBATCH -A {{account}}\n"));
  const Json m = model(R"({"account":"CSC123"})");
  EXPECT_EQ(Template::parse("{{> header}}srun ...\n").render(m, partials),
            "#SBATCH -A CSC123\nsrun ...\n");
}

TEST(Template, MissingPartialIsAnError) {
  EXPECT_THROW(Template::parse("{{> nope}}").render(model("{}")), ValidationError);
}

TEST(Template, ParseErrors) {
  EXPECT_THROW(Template::parse("{{unclosed"), ParseError);
  EXPECT_THROW(Template::parse("{{}}"), ParseError);
  EXPECT_THROW(Template::parse("{{#each}}{{/each}}"), ParseError);
  EXPECT_THROW(Template::parse("{{#each x}}no close"), ParseError);
  EXPECT_THROW(Template::parse("{{#if x}}no close"), ParseError);
  EXPECT_THROW(Template::parse("{{/each}}"), ParseError);
  EXPECT_THROW(Template::parse("{{#unknown x}}{{/unknown}}"), ParseError);
  EXPECT_THROW(Template::parse("{{>}}"), ParseError);
}

TEST(Template, ErrorsCarryLineNumbers) {
  try {
    Template::parse("line1\nline2\n{{oops").render(model("{}"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Template, ReferencedPathsAreSortedUnique) {
  const Template t = Template::parse(
      "{{a}} {{#each list}}{{x}}{{/each}} {{#if a}}{{b.c}}{{/if}} {{a}}");
  EXPECT_EQ(t.referenced_paths(),
            (std::vector<std::string>{"a", "b.c", "list", "x"}));
}

TEST(Template, RenderScalarForms) {
  EXPECT_EQ(render_scalar(Json()), "");
  EXPECT_EQ(render_scalar(Json(true)), "true");
  EXPECT_EQ(render_scalar(Json(7)), "7");
  EXPECT_EQ(render_scalar(Json("s")), "s");
  EXPECT_THROW(render_scalar(Json::array()), ValidationError);
}

TEST(Template, RealisticSubmitScript) {
  // A representative Skel use: generate an LSF-style submit script.
  const char* body =
      "#!/bin/bash\n"
      "#BSUB -P {{machine.account}}\n"
      "#BSUB -nnodes {{machine.nodes}}\n"
      "#BSUB -W {{machine.walltime}}\n"
      "{{#each tasks}}jsrun -n {{ranks}} {{exe}} {{args}}\n{{/each}}";
  const Json m = model(R"({
    "machine": {"account": "BIF101", "nodes": 4, "walltime": "2:00"},
    "tasks": [
      {"ranks": 32, "exe": "paste_subset", "args": "--group 0"},
      {"ranks": 32, "exe": "paste_subset", "args": "--group 1"}
    ]})");
  const std::string out = Template::parse(body).render(m);
  EXPECT_NE(out.find("#BSUB -P BIF101"), std::string::npos);
  EXPECT_NE(out.find("jsrun -n 32 paste_subset --group 1"), std::string::npos);
}

}  // namespace
}  // namespace ff::skel
