#include "skel/generator.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::skel {
namespace {

ModelSchema any_schema() { return ModelSchema{}; }

Model make_model(const char* text) { return Model(Json::parse(text), any_schema()); }

TEST(Generator, SingleArtifact) {
  Generator generator("test");
  generator.add_template("run.sh", "#!/bin/bash\necho {{msg}}\n", true);
  const auto artifacts = generator.generate(make_model(R"({"msg":"hi"})"));
  ASSERT_EQ(artifacts.size(), 2u);  // run.sh + manifest.json
  EXPECT_EQ(artifacts[0].path, "run.sh");
  EXPECT_EQ(artifacts[0].content, "#!/bin/bash\necho hi\n");
  EXPECT_TRUE(artifacts[0].executable);
  EXPECT_EQ(artifacts[1].path, "manifest.json");
}

TEST(Generator, ManifestRecordsModelAndArtifacts) {
  Generator generator("gwas-paste");
  generator.add_template("a.txt", "x");
  const auto artifacts = generator.generate(make_model(R"({"k":1})"));
  const Json manifest = Json::parse(artifacts.back().content);
  EXPECT_EQ(manifest["generator"].as_string(), "gwas-paste");
  EXPECT_EQ(manifest["model"]["k"].as_int(), 1);
  EXPECT_EQ(manifest["artifacts"][0].as_string(), "a.txt");
}

TEST(Generator, PerItemTemplatesExpandPerElement) {
  Generator generator;
  generator.add_template_per_item(
      "groups", "jobs/paste_{{item_index}}.sh",
      "#!/bin/bash\n# group {{name}} of {{total}}\npaste {{files|json}}\n", true);
  const auto artifacts = generator.generate(make_model(
      R"({"total":2,
          "groups":[{"name":"g0","files":["a","b"]},{"name":"g1","files":["c"]}]})"));
  ASSERT_EQ(artifacts.size(), 3u);
  EXPECT_EQ(artifacts[0].path, "jobs/paste_0.sh");
  EXPECT_EQ(artifacts[1].path, "jobs/paste_1.sh");
  EXPECT_NE(artifacts[0].content.find("group g0 of 2"), std::string::npos);
  EXPECT_NE(artifacts[1].content.find("paste [\"c\"]"), std::string::npos);
}

TEST(Generator, PerItemScalarElements) {
  Generator generator;
  generator.add_template_per_item("files", "f{{item_index}}", "{{item}}");
  const auto artifacts = generator.generate(make_model(R"({"files":["x","y"]})"));
  EXPECT_EQ(artifacts[0].content, "x");
  EXPECT_EQ(artifacts[1].content, "y");
}

TEST(Generator, PerItemMissingArrayThrows) {
  Generator generator;
  generator.add_template_per_item("nope", "f", "x");
  EXPECT_THROW(generator.generate(make_model("{}")), ValidationError);
  EXPECT_THROW(Generator{}.add_template_per_item("", "f", "x"), ValidationError);
}

TEST(Generator, DuplicatePathsRejected) {
  Generator generator;
  generator.add_template("same.txt", "a");
  generator.add_template("same.txt", "b");
  EXPECT_THROW(generator.generate(make_model("{}")), ValidationError);
}

TEST(Generator, PartialsSharedAcrossTemplates) {
  Generator generator;
  generator.add_partial("hdr", "# account {{account}}\n");
  generator.add_template("a.sh", "{{> hdr}}echo a\n");
  generator.add_template("b.sh", "{{> hdr}}echo b\n");
  const auto artifacts = generator.generate(make_model(R"({"account":"Z9"})"));
  EXPECT_NE(artifacts[0].content.find("# account Z9"), std::string::npos);
  EXPECT_NE(artifacts[1].content.find("# account Z9"), std::string::npos);
}

TEST(Generator, WriteAllCreatesFilesAndDirectories) {
  Generator generator;
  generator.add_template("nested/dir/run.sh", "#!/bin/bash\n", true);
  const auto artifacts = generator.generate(make_model("{}"));
  TempDir dir;
  Generator::write_all(artifacts, dir.str());
  EXPECT_EQ(read_file(dir.file("nested/dir/run.sh")), "#!/bin/bash\n");
  const auto perms =
      std::filesystem::status(dir.file("nested/dir/run.sh")).permissions();
  EXPECT_NE(perms & std::filesystem::perms::owner_exec,
            std::filesystem::perms::none);
  EXPECT_TRUE(std::filesystem::exists(dir.file("manifest.json")));
}

TEST(Generator, CustomizationSurfaceUnionsTemplatePaths) {
  Generator generator;
  generator.add_template("{{name}}.sh", "{{account}} {{#each jobs}}{{id}}{{/each}}");
  generator.add_template("fixed.txt", "{{account}}");
  const auto surface = generator.customization_surface();
  EXPECT_EQ(surface,
            (std::vector<std::string>{"account", "id", "jobs", "name"}));
}

TEST(Generator, ModelDrivenPathTemplates) {
  Generator generator;
  generator.add_template("{{campaign}}/run.sh", "x");
  const auto artifacts = generator.generate(make_model(R"({"campaign":"c042"})"));
  EXPECT_EQ(artifacts[0].path, "c042/run.sh");
}

}  // namespace
}  // namespace ff::skel
