#include "stream/codegen.hpp"

#include <gtest/gtest.h>

namespace ff::stream {
namespace {

StreamSchema schema_of(size_t fields) {
  StreamSchema schema;
  schema.name = "sensor";
  schema.version = 1;
  for (size_t i = 0; i < fields; ++i) {
    schema.fields.push_back({"f" + std::to_string(i), "double"});
  }
  return schema;
}

TEST(CommCodegen, EmitsAllComponents) {
  const auto artifacts = generate_comm_code(schema_of(3));
  std::vector<std::string> paths;
  for (const auto& artifact : artifacts) paths.push_back(artifact.path);
  EXPECT_NE(std::find(paths.begin(), paths.end(), "comm/sensor_marshal.cpp"),
            paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "comm/sensor_source.cpp"),
            paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "comm/sensor_sink.cpp"),
            paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "manifest.json"), paths.end());
}

TEST(CommCodegen, MarshalCodeListsEveryField) {
  const auto artifacts = generate_comm_code(schema_of(4));
  const auto& marshal = artifacts[0];
  ASSERT_EQ(marshal.path, "comm/sensor_marshal.cpp");
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NE(marshal.content.find("\"f" + std::to_string(i) + "\""),
              std::string::npos);
  }
  EXPECT_NE(marshal.content.find("schema.version = 1"), std::string::npos);
}

TEST(CommCodegen, SinkLeavesPolicyToRuntime) {
  const auto artifacts = generate_comm_code(schema_of(2));
  for (const auto& artifact : artifacts) {
    if (artifact.path != "comm/sensor_sink.cpp") continue;
    // The generated sink publishes into the scheduler but contains no
    // policy logic — that is installed through the control channel.
    EXPECT_NE(artifact.content.find("scheduler.publish"), std::string::npos);
    EXPECT_EQ(artifact.content.find("SlidingWindow"), std::string::npos);
    EXPECT_NE(artifact.content.find("installed at runtime"), std::string::npos);
  }
}

TEST(CommCodegen, RegenerationIsDeterministic) {
  const auto a = generate_comm_code(schema_of(3));
  const auto b = generate_comm_code(schema_of(3));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].content, b[i].content);
  }
}

TEST(CommCodegen, SchemaChangeOnlyTouchesGeneratedRegion) {
  // Adding a field changes the marshal artifact but the sink's control-flow
  // skeleton is identical — the "reuse of code which does not change often".
  const auto before = generate_comm_code(schema_of(2));
  const auto after = generate_comm_code(schema_of(3));
  std::string sink_before;
  std::string sink_after;
  for (const auto& artifact : before) {
    if (artifact.path == "comm/sensor_sink.cpp") sink_before = artifact.content;
  }
  for (const auto& artifact : after) {
    if (artifact.path == "comm/sensor_sink.cpp") sink_after = artifact.content;
  }
  EXPECT_EQ(sink_before, sink_after);
}

TEST(CommCodegen, LocCountIsPositiveAndGrowsWithSchema) {
  const size_t small = generated_loc(generate_comm_code(schema_of(2)));
  const size_t large = generated_loc(generate_comm_code(schema_of(20)));
  EXPECT_GT(small, 0u);
  EXPECT_GT(large, small);
}

TEST(CommCodegen, ModelExposesCustomizationSurface) {
  const Json model = comm_model(schema_of(2));
  EXPECT_EQ(model["name"].as_string(), "sensor");
  EXPECT_EQ(model["fields"].size(), 2u);
  EXPECT_EQ(model["fields"][size_t{0}]["field_name"].as_string(), "f0");
}

}  // namespace
}  // namespace ff::stream
