// Determinism sweep: the concurrent plane must not let worker scheduling
// leak into results. For a fixed seed, the same published record sequence
// through the same seeded policy mix must produce bit-identical *ordered*
// per-queue releases whether the plane runs 1, 2, 4, or 8 workers — the
// strand-per-queue design makes delivery order a function of the input
// alone (see stream/pipeline.hpp).

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stream/pipeline.hpp"
#include "util/rng.hpp"

namespace ff::stream {
namespace {

/// Transport knobs under sweep: which channel implementation carries the
/// queues and how many records one strand dispatch drains. Neither may
/// influence what consumers observe — only how fast they observe it.
struct Transport {
  ChannelKind channel = ChannelKind::Spsc;
  size_t batch = 64;
};

/// One full plane run: four queues with seed-derived policy parameters, a
/// single publisher emitting a seed-derived record stream with periodic
/// punctuation and one mid-stream direct-selection steering message.
/// Returns each queue's delivered (sequence, timestamp-bits) pairs in
/// delivery order.
std::map<std::string, std::vector<std::pair<uint64_t, uint64_t>>> run_plane(
    uint64_t seed, size_t workers, Transport transport = {}) {
  StreamPipeline pipeline(workers);
  std::mutex mutex;
  std::map<std::string, std::vector<std::pair<uint64_t, uint64_t>>> observed;
  pipeline.subscribe([&](const std::string& queue, const Record& record) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(record.timestamp));
    std::memcpy(&bits, &record.timestamp, sizeof(bits));
    std::lock_guard lock(mutex);
    observed[queue].emplace_back(record.sequence, bits);
  });

  Rng rng(seed);
  pipeline.install_queue("all", std::make_unique<ForwardAllPolicy>(),
                         {.capacity = 32,
                          .batch = transport.batch,
                          .channel = transport.channel});
  pipeline.install_queue(
      "window", std::make_unique<SlidingWindowCountPolicy>(1 + seed % 8),
      {.capacity = 64,
       .overflow = Overflow::Block,
       .batch = transport.batch,
       .channel = transport.channel});
  pipeline.install_queue("sample",
                         std::make_unique<SampleEveryNPolicy>(1 + seed % 5),
                         {.capacity = 16,
                          .batch = transport.batch,
                          .channel = transport.channel});
  pipeline.install_queue("direct", std::make_unique<DirectSelectionPolicy>(),
                         {.capacity = 512,
                          .batch = transport.batch,
                          .channel = transport.channel});

  const uint64_t punctuate_every = 5 + seed % 7;
  constexpr uint64_t kRecords = 300;
  for (uint64_t i = 0; i < kRecords; ++i) {
    Record record;
    record.sequence = i;
    record.timestamp = rng.uniform();  // content varies by seed
    pipeline.publish(record);
    if ((i + 1) % punctuate_every == 0) pipeline.punctuate(Json::object());
    if (i == kRecords / 2) {
      Json flush = Json::object();
      flush["flush"] = Json(true);
      pipeline.control("direct", flush);
    }
  }
  pipeline.wait_quiescent();
  pipeline.shutdown();
  return observed;
}

TEST(StreamDeterminism, ReleaseOrderIdenticalAcrossWorkerCounts) {
  constexpr uint64_t kSeeds = 20;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto reference = run_plane(seed, 1);
    // Sanity: the single-worker reference actually exercised every queue.
    ASSERT_EQ(reference.size(), 4u) << "seed=" << seed;
    ASSERT_EQ(reference.at("all").size(), 300u) << "seed=" << seed;
    ASSERT_FALSE(reference.at("window").empty()) << "seed=" << seed;
    ASSERT_FALSE(reference.at("sample").empty()) << "seed=" << seed;
    ASSERT_FALSE(reference.at("direct").empty()) << "seed=" << seed;

    for (size_t workers : {2u, 4u, 8u}) {
      const auto observed = run_plane(seed, workers);
      ASSERT_EQ(observed.size(), reference.size())
          << "seed=" << seed << " workers=" << workers;
      for (const auto& [queue, expected] : reference) {
        EXPECT_EQ(observed.at(queue), expected)
            << "per-queue release order diverged: seed=" << seed
            << " workers=" << workers << " queue=" << queue;
      }
    }
  }
}

TEST(StreamDeterminism, TransportConfigDoesNotChangeDeliveries) {
  // Channel implementation and drain batch size are pure performance
  // knobs: for a fixed seed, every (kind, batch, workers) combination must
  // deliver exactly what the default transport delivers. (All queues here
  // use Overflow::Block, so no transport-dependent eviction exists to
  // excuse a divergence.)
  for (uint64_t seed : {0u, 7u, 19u}) {
    const auto reference = run_plane(seed, 1);
    for (ChannelKind kind :
         {ChannelKind::Mutex, ChannelKind::Spsc, ChannelKind::Mpmc}) {
      for (size_t batch : {size_t{1}, size_t{8}, size_t{64}}) {
        for (size_t workers : {1u, 4u}) {
          const auto observed =
              run_plane(seed, workers, {.channel = kind, .batch = batch});
          ASSERT_EQ(observed.size(), reference.size())
              << "seed=" << seed << " kind=" << channel_kind_name(kind)
              << " batch=" << batch << " workers=" << workers;
          for (const auto& [queue, expected] : reference) {
            EXPECT_EQ(observed.at(queue), expected)
                << "deliveries diverged: seed=" << seed
                << " kind=" << channel_kind_name(kind) << " batch=" << batch
                << " workers=" << workers << " queue=" << queue;
          }
        }
      }
    }
  }
}

TEST(StreamDeterminism, RepeatedRunsAreBitIdentical) {
  // Same seed, same worker count, run twice: the plane itself must be a
  // pure function of its input (no time- or address-dependent behaviour).
  const auto first = run_plane(31337, 4);
  const auto second = run_plane(31337, 4);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace ff::stream
