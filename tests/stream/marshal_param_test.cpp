// Parameterized marshalling properties: every combination of field types
// and record counts round-trips bit-exactly through the self-describing
// wire format, and truncating the stream at any byte boundary inside the
// record section raises ParseError rather than returning garbage.

#include <gtest/gtest.h>

#include "stream/marshal.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ff::stream {
namespace {

struct MarshalCase {
  std::vector<std::string> types;
  size_t records;
  uint64_t seed;
};

class MarshalSweep : public ::testing::TestWithParam<MarshalCase> {
 protected:
  StreamSchema schema() const {
    StreamSchema out;
    out.name = "sweep";
    out.version = 3;
    for (size_t i = 0; i < GetParam().types.size(); ++i) {
      out.fields.push_back({"f" + std::to_string(i), GetParam().types[i]});
    }
    return out;
  }

  Value random_value(const std::string& type, Rng& rng) const {
    if (type == "int") return Value{static_cast<int64_t>(rng.range(-1e9, 1e9))};
    if (type == "double") return Value{rng.uniform(-1e9, 1e9)};
    if (type == "string") {
      std::string text;
      const uint64_t length = rng.below(20);
      for (uint64_t i = 0; i < length; ++i) {
        text += static_cast<char>(rng.below(256));  // arbitrary bytes
      }
      return Value{text};
    }
    std::vector<double> array(rng.below(8));
    for (double& element : array) element = rng.normal();
    return Value{array};
  }

  std::vector<Record> random_records() const {
    Rng rng(GetParam().seed);
    std::vector<Record> records;
    for (size_t i = 0; i < GetParam().records; ++i) {
      Record record;
      record.sequence = i;
      record.timestamp = rng.uniform(0, 1e6);
      for (const auto& type : GetParam().types) {
        record.values.push_back(random_value(type, rng));
      }
      records.push_back(std::move(record));
    }
    return records;
  }
};

TEST_P(MarshalSweep, RoundTripsExactly) {
  const StreamSchema wire_schema = schema();
  const std::vector<Record> records = random_records();
  Encoder encoder(wire_schema);
  for (const Record& record : records) encoder.append(record);
  const DecodedStream decoded = decode_stream(encoder.bytes());
  EXPECT_EQ(decoded.schema, wire_schema);
  ASSERT_EQ(decoded.records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.records[i], records[i]) << i;
  }
}

TEST_P(MarshalSweep, TruncationAlwaysDetected) {
  const std::vector<Record> records = random_records();
  if (records.empty()) return;
  Encoder probe(schema());
  const size_t header_size = probe.bytes().size();
  Encoder encoder(schema());
  for (const Record& record : records) encoder.append(record);
  const std::vector<uint8_t>& bytes = encoder.bytes();
  Rng rng(GetParam().seed ^ 0xdead);
  for (int trial = 0; trial < 16; ++trial) {
    // Cut somewhere strictly inside the record section.
    const size_t cut =
        header_size + 1 +
        static_cast<size_t>(rng.below(bytes.size() - header_size - 1));
    if (cut >= bytes.size()) continue;
    const std::vector<uint8_t> truncated(bytes.begin(),
                                         bytes.begin() + static_cast<long>(cut));
    // Either a clean prefix of whole records decodes, or ParseError — never
    // silent corruption of a record.
    try {
      const DecodedStream decoded = decode_stream(truncated);
      ASSERT_LE(decoded.records.size(), records.size());
      for (size_t i = 0; i < decoded.records.size(); ++i) {
        EXPECT_EQ(decoded.records[i], records[i]);
      }
    } catch (const ParseError&) {
      // expected for mid-record cuts
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypeGrid, MarshalSweep,
    ::testing::Values(
        MarshalCase{{"int"}, 10, 1}, MarshalCase{{"double"}, 10, 2},
        MarshalCase{{"string"}, 10, 3}, MarshalCase{{"double[]"}, 10, 4},
        MarshalCase{{"int", "double"}, 25, 5},
        MarshalCase{{"string", "double[]", "int"}, 25, 6},
        MarshalCase{{"int", "int", "int", "int"}, 50, 7},
        MarshalCase{{"double[]", "double[]"}, 5, 8},
        MarshalCase{{"int", "double", "string", "double[]"}, 100, 9},
        MarshalCase{{"string"}, 0, 10}),
    [](const ::testing::TestParamInfo<MarshalCase>& info) {
      std::string name = "r" + std::to_string(info.param.records) + "_s" +
                         std::to_string(info.param.seed) + "_t";
      for (const auto& type : info.param.types) {
        for (char c : type) {
          if (std::isalnum(static_cast<unsigned char>(c))) name += c;
        }
      }
      return name;
    });

}  // namespace
}  // namespace ff::stream
