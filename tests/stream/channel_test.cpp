// Channel API semantics, run identically against every implementation
// (mutex deque, SPSC ring, MPMC ring) via make_channel. Capacities in the
// shared suite are powers of two so the ring kinds (which round up) bound
// exactly like the mutex deque and the expectations stay implementation-
// independent. The SPSC kind is exercised with a single producer thread
// throughout, per its contract.

#include "stream/channel.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"

namespace ff::stream {
namespace {

Record record_at(uint64_t sequence) {
  Record record;
  record.sequence = sequence;
  return record;
}

class ChannelApi : public ::testing::TestWithParam<ChannelKind> {
 protected:
  std::unique_ptr<Channel> make(size_t capacity) {
    return make_channel(GetParam(), capacity);
  }
};

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ChannelApi,
    ::testing::Values(ChannelKind::Mutex, ChannelKind::Spsc,
                      ChannelKind::Mpmc),
    [](const ::testing::TestParamInfo<ChannelKind>& info) {
      return channel_kind_name(info.param);
    });

TEST_P(ChannelApi, SendReceiveInOrder) {
  auto channel = make(4);
  EXPECT_TRUE(channel->send(record_at(1)));
  EXPECT_TRUE(channel->send(record_at(2)));
  EXPECT_EQ(channel->size(), 2u);
  EXPECT_EQ(channel->receive()->sequence, 1u);
  EXPECT_EQ(channel->receive()->sequence, 2u);
  EXPECT_EQ(channel->sent(), 2u);
  EXPECT_EQ(channel->received(), 2u);
  EXPECT_EQ(channel->kind(), GetParam());
}

TEST_P(ChannelApi, ZeroCapacityRejected) {
  EXPECT_THROW(make(0), ValidationError);
}

TEST_P(ChannelApi, TrySendRespectsCapacity) {
  auto channel = make(2);
  EXPECT_EQ(channel->capacity(), 2u);
  EXPECT_TRUE(channel->try_send(record_at(1)));
  EXPECT_TRUE(channel->try_send(record_at(2)));
  EXPECT_FALSE(channel->try_send(record_at(3)));  // full
  channel->receive();
  EXPECT_TRUE(channel->try_send(record_at(3)));
}

TEST_P(ChannelApi, TryReceiveOnEmpty) {
  auto channel = make(2);
  EXPECT_FALSE(channel->try_receive().has_value());
  channel->try_send(record_at(9));
  EXPECT_EQ(channel->try_receive()->sequence, 9u);
}

TEST_P(ChannelApi, CloseDrainsThenEnds) {
  auto channel = make(4);
  channel->send(record_at(1));
  channel->send(record_at(2));
  channel->close();
  EXPECT_TRUE(channel->closed());
  EXPECT_FALSE(channel->send(record_at(3)));  // rejected after close
  EXPECT_EQ(channel->receive()->sequence, 1u);
  EXPECT_EQ(channel->receive()->sequence, 2u);
  EXPECT_FALSE(channel->receive().has_value());  // drained
}

TEST_P(ChannelApi, BlockingReceiveWakesOnSend) {
  auto channel = make(1);
  std::optional<Record> got;
  std::thread consumer([&] { got = channel->receive(); });
  channel->send(record_at(42));
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->sequence, 42u);
}

TEST_P(ChannelApi, BackpressureBlocksProducerUntilConsumed) {
  auto channel = make(1);
  channel->send(record_at(1));
  std::atomic<bool> second_sent{false};
  std::thread producer([&] {
    channel->send(record_at(2));  // blocks until the consumer drains one
    second_sent = true;
  });
  // Give the producer a chance to block, then release it.
  while (channel->size() < 1) {
  }
  EXPECT_EQ(channel->receive()->sequence, 1u);
  producer.join();
  EXPECT_TRUE(second_sent.load());
  EXPECT_EQ(channel->receive()->sequence, 2u);
}

TEST_P(ChannelApi, CloseUnblocksWaitingProducerAndConsumer) {
  auto full = make(1);
  full->send(record_at(1));
  std::atomic<bool> producer_returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(full->send(record_at(2)));  // closed while waiting
    producer_returned = true;
  });
  auto empty = make(1);
  std::atomic<bool> consumer_returned{false};
  std::thread consumer([&] {
    EXPECT_FALSE(empty->receive().has_value());
    consumer_returned = true;
  });
  full->close();
  empty->close();
  producer.join();
  consumer.join();
  EXPECT_TRUE(producer_returned.load());
  EXPECT_TRUE(consumer_returned.load());
}

TEST_P(ChannelApi, MultiProducerMultiConsumerConservation) {
  auto channel = make(8);
  constexpr int kPerProducer = 200;
  // The SPSC ring's contract is a single producer; the consumer side is
  // always multi-consumer-safe (evictions pop through the same protocol).
  const int producers_n = GetParam() == ChannelKind::Spsc ? 1 : 3;
  constexpr int kConsumers = 2;
  std::atomic<uint64_t> received_total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers_n; ++p) {
    threads.emplace_back([&channel, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        channel->send(record_at(static_cast<uint64_t>(p * kPerProducer + i)));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (channel->receive().has_value()) received_total.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  channel->close();
  for (auto& thread : consumers) thread.join();
  EXPECT_EQ(received_total.load(),
            static_cast<uint64_t>(kPerProducer * producers_n));
  EXPECT_EQ(channel->sent(), channel->received());
}

TEST_P(ChannelApi, OfferBlockBehavesLikeSend) {
  auto channel = make(2);
  EXPECT_TRUE(channel->offer(record_at(1), Overflow::Block).accepted);
  EXPECT_EQ(channel->offer(record_at(2), Overflow::Block).evicted, 0u);
  EXPECT_EQ(channel->size(), 2u);
  channel->close();
  EXPECT_FALSE(channel->offer(record_at(3), Overflow::Block).accepted);
}

TEST_P(ChannelApi, OfferDropOldestEvictsHead) {
  auto channel = make(2);
  channel->send(record_at(1));
  channel->send(record_at(2));
  const auto result = channel->offer(record_at(3), Overflow::DropOldest);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.evicted, 1u);
  EXPECT_EQ(channel->dropped(), 1u);
  EXPECT_EQ(channel->receive()->sequence, 2u);  // 1 was evicted
  EXPECT_EQ(channel->receive()->sequence, 3u);
  EXPECT_EQ(channel->sent(), channel->received() + channel->dropped());
}

TEST_P(ChannelApi, OfferKeepLatestConflates) {
  auto channel = make(4);
  channel->send(record_at(1));
  channel->send(record_at(2));
  channel->send(record_at(3));
  channel->send(record_at(4));
  const auto result = channel->offer(record_at(5), Overflow::KeepLatest);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.evicted, 4u);  // whole queue conflated away
  EXPECT_EQ(channel->size(), 1u);
  EXPECT_EQ(channel->receive()->sequence, 5u);
  EXPECT_EQ(channel->sent(), channel->received() + channel->dropped());
}

TEST_P(ChannelApi, OfferLossyWithRoomEvictsNothing) {
  auto channel = make(4);
  channel->send(record_at(1));
  EXPECT_EQ(channel->offer(record_at(2), Overflow::DropOldest).evicted, 0u);
  EXPECT_EQ(channel->offer(record_at(3), Overflow::KeepLatest).evicted, 0u);
  EXPECT_EQ(channel->dropped(), 0u);
}

TEST_P(ChannelApi, ReceiveForTimesOutOnEmpty) {
  auto channel = make(2);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(channel->receive_for(std::chrono::milliseconds(5)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(4));
  EXPECT_FALSE(channel->closed()) << "timeout is not closure";
}

TEST_P(ChannelApi, ReceiveForReturnsPromptlyWhenStocked) {
  auto channel = make(2);
  channel->send(record_at(5));
  const auto got = channel->receive_for(std::chrono::seconds(10));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->sequence, 5u);
}

TEST_P(ChannelApi, CloseAndDrainTakesEverything) {
  auto channel = make(4);
  channel->send(record_at(1));
  channel->send(record_at(2));
  channel->send(record_at(3));
  const std::vector<Record> drained = channel->close_and_drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].sequence, 1u);
  EXPECT_EQ(drained[2].sequence, 3u);
  EXPECT_TRUE(channel->closed());
  EXPECT_EQ(channel->size(), 0u);
  EXPECT_EQ(channel->received(), 3u);  // drained records count as received
  EXPECT_EQ(channel->sent(), channel->received());
}

TEST_P(ChannelApi, DrainIntoTakesAtMostMaxInOrder) {
  auto channel = make(8);
  for (uint64_t i = 1; i <= 5; ++i) channel->send(record_at(i));
  std::vector<Record> out;
  EXPECT_EQ(channel->drain_into(out, 3), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].sequence, 1u);
  EXPECT_EQ(out[2].sequence, 3u);
  EXPECT_EQ(channel->drain_into(out, 64), 2u);  // appends the rest
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4].sequence, 5u);
  EXPECT_EQ(channel->drain_into(out, 64), 0u);  // empty now
  EXPECT_EQ(channel->received(), 5u);
  EXPECT_EQ(channel->sent(), channel->received());
}

TEST_P(ChannelApi, DrainIntoUnblocksWaitingProducer) {
  auto channel = make(1);
  channel->send(record_at(1));
  std::atomic<bool> second_sent{false};
  std::thread producer([&] {
    channel->send(record_at(2));
    second_sent = true;
  });
  while (channel->size() < 1) {
  }
  std::vector<Record> out;
  while (channel->drain_into(out, 4) == 0) std::this_thread::yield();
  producer.join();
  EXPECT_TRUE(second_sent.load());
}

TEST_P(ChannelApi, WaiterCountsReflectBlockedThreads) {
  auto channel = make(1);
  EXPECT_EQ(channel->send_waiters(), 0u);
  EXPECT_EQ(channel->receive_waiters(), 0u);
  channel->send(record_at(1));
  std::thread sender([&] { channel->send(record_at(2)); });
  while (channel->send_waiters() == 0) std::this_thread::yield();
  EXPECT_EQ(channel->send_waiters(), 1u);
  channel->receive();  // makes room; the sender unblocks
  sender.join();
  EXPECT_EQ(channel->send_waiters(), 0u);
}

TEST_P(ChannelApi, PipelineWithMarshalledPayloads) {
  // Producer encodes, wire is the channel, consumer decodes — the actual
  // Fig. 5 data path with real threads.
  StreamSchema schema;
  schema.name = "pipe";
  schema.fields = {{"v", "double"}};
  auto channel = make(4);
  std::thread producer([&] {
    for (uint64_t i = 0; i < 100; ++i) {
      Record record;
      record.sequence = i;
      record.values = {Value{0.5 * static_cast<double>(i)}};
      channel->send(std::move(record));
    }
    channel->close();
  });
  uint64_t count = 0;
  double total = 0;
  while (auto record = channel->receive()) {
    ++count;
    total += std::get<double>(record->values[0]);
  }
  producer.join();
  EXPECT_EQ(count, 100u);
  EXPECT_DOUBLE_EQ(total, 0.5 * (99.0 * 100.0 / 2.0));
}

TEST(Channel, OverflowNames) {
  EXPECT_STREQ(overflow_name(Overflow::Block), "block");
  EXPECT_STREQ(overflow_name(Overflow::DropOldest), "drop-oldest");
  EXPECT_STREQ(overflow_name(Overflow::KeepLatest), "keep-latest");
}

TEST(Channel, KindNamesRoundTrip) {
  for (ChannelKind kind :
       {ChannelKind::Mutex, ChannelKind::Spsc, ChannelKind::Mpmc}) {
    EXPECT_EQ(parse_channel_kind(channel_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_channel_kind("lockfree"), ValidationError);
}

TEST(Channel, RingRoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(make_channel(ChannelKind::Spsc, 5)->capacity(), 8u);
  EXPECT_EQ(make_channel(ChannelKind::Mpmc, 1)->capacity(), 1u);
  EXPECT_EQ(make_channel(ChannelKind::Mpmc, 64)->capacity(), 64u);
  EXPECT_EQ(make_channel(ChannelKind::Mutex, 5)->capacity(), 5u);  // exact
  EXPECT_THROW(make_channel(ChannelKind::Spsc, size_t{1} << 40),
               ValidationError);
}

}  // namespace
}  // namespace ff::stream
