#include "stream/marshal.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::stream {
namespace {

StreamSchema instrument_schema() {
  StreamSchema schema;
  schema.name = "instrument";
  schema.version = 2;
  schema.fields = {{"shot", "int"},
                   {"energy", "double"},
                   {"detector", "string"},
                   {"spectrum", "double[]"}};
  return schema;
}

Record sample_record(uint64_t sequence) {
  Record record;
  record.sequence = sequence;
  record.timestamp = 0.5 * static_cast<double>(sequence);
  record.values = {Value{int64_t{42}}, Value{3.14}, Value{std::string("d7")},
                   Value{std::vector<double>{1.0, 2.5, -3.0}}};
  return record;
}

TEST(Marshal, RoundTripsRecordsAndSchema) {
  Encoder encoder(instrument_schema());
  for (uint64_t i = 0; i < 5; ++i) encoder.append(sample_record(i));
  EXPECT_EQ(encoder.records_encoded(), 5u);

  const DecodedStream decoded = decode_stream(encoder.bytes());
  EXPECT_EQ(decoded.schema, instrument_schema());
  ASSERT_EQ(decoded.records.size(), 5u);
  EXPECT_EQ(decoded.records[3], sample_record(3));
}

TEST(Marshal, SelfDescribing) {
  // A receiver with no compiled-in schema reconstructs it from the bytes.
  Encoder encoder(instrument_schema());
  encoder.append(sample_record(0));
  const DecodedStream decoded = decode_stream(encoder.bytes());
  EXPECT_EQ(decoded.schema.key(), "instrument:v2");
  EXPECT_EQ(decoded.schema.fields[3].type, "double[]");
}

TEST(Marshal, EmptyStreamHasSchemaOnly) {
  Encoder encoder(instrument_schema());
  const DecodedStream decoded = decode_stream(encoder.bytes());
  EXPECT_TRUE(decoded.records.empty());
  EXPECT_EQ(decoded.schema, instrument_schema());
}

TEST(Marshal, ValidatesRecordsAgainstSchema) {
  Encoder encoder(instrument_schema());
  Record wrong_arity;
  wrong_arity.values = {Value{int64_t{1}}};
  EXPECT_THROW(encoder.append(wrong_arity), ValidationError);
  Record wrong_type = sample_record(0);
  wrong_type.values[0] = Value{2.5};  // double where int expected
  EXPECT_THROW(encoder.append(wrong_type), ValidationError);
}

TEST(Marshal, RejectsUnsupportedSchemaTypes) {
  StreamSchema bad;
  bad.name = "bad";
  bad.fields = {{"x", "quaternion"}};
  EXPECT_THROW(Encoder{bad}, ValidationError);
}

TEST(Marshal, DetectsCorruption) {
  Encoder encoder(instrument_schema());
  encoder.append(sample_record(0));
  std::vector<uint8_t> bytes = encoder.bytes();
  // Bad magic.
  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_stream(bad_magic), ParseError);
  // Truncated mid-record.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 7);
  EXPECT_THROW(decode_stream(truncated), ParseError);
}

TEST(Marshal, NegativeIntsAndSpecialDoublesRoundTrip) {
  StreamSchema schema;
  schema.name = "edge";
  schema.fields = {{"i", "int"}, {"d", "double"}};
  Encoder encoder(schema);
  Record record;
  record.values = {Value{int64_t{-123456789}}, Value{-0.0}};
  encoder.append(record);
  const DecodedStream decoded = decode_stream(encoder.bytes());
  EXPECT_EQ(std::get<int64_t>(decoded.records[0].values[0]), -123456789);
  EXPECT_EQ(std::get<double>(decoded.records[0].values[1]), 0.0);
}

TEST(StreamSchema, CatalogDescriptorRoundTrip) {
  const StreamSchema schema = instrument_schema();
  const core::SchemaDescriptor descriptor = schema.to_descriptor();
  EXPECT_EQ(descriptor.container, "ffbin");
  EXPECT_EQ(descriptor.key(), "instrument:v2");
  EXPECT_EQ(StreamSchema::from_descriptor(descriptor), schema);
}

TEST(StreamSchema, RegistersInMetadataCatalog) {
  core::MetadataCatalog catalog;
  catalog.put_schema(instrument_schema().to_descriptor());
  EXPECT_TRUE(catalog.has_schema("instrument:v2"));
  // Version evolution counts as convertible.
  StreamSchema v3 = instrument_schema();
  v3.version = 3;
  v3.fields.push_back({"gain", "double"});
  catalog.put_schema(v3.to_descriptor());
  EXPECT_TRUE(catalog.convertible("instrument:v2", "instrument:v3"));
}

}  // namespace
}  // namespace ff::stream
