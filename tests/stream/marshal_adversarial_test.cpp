// Adversarial marshalling properties. The regular sweep
// (marshal_param_test.cpp) covers friendly payloads; this file feeds the
// codec the records a real instrument eventually produces: NaN/Inf
// readings, empty payloads, strings with embedded NULs, >64 KiB blobs, and
// deeply nested JSON carried as text. Doubles are compared bit-for-bit
// (operator== is useless for NaN), and corrupt/truncated buffers must fail
// with ParseError — never garbage records, never a giant allocation off a
// poisoned length prefix.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "stream/marshal.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ff::stream {
namespace {

uint64_t bits_of(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

::testing::AssertionResult same_bits(double a, double b) {
  if (bits_of(a) == bits_of(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "double bits differ: " << std::hex << bits_of(a) << " vs "
         << bits_of(b);
}

/// Bit-exact record equality: NaNs must survive with their payload bits.
void expect_bit_identical(const Record& decoded, const Record& original) {
  EXPECT_EQ(decoded.sequence, original.sequence);
  EXPECT_TRUE(same_bits(decoded.timestamp, original.timestamp));
  ASSERT_EQ(decoded.values.size(), original.values.size());
  for (size_t i = 0; i < original.values.size(); ++i) {
    ASSERT_EQ(decoded.values[i].index(), original.values[i].index()) << i;
    if (const auto* value = std::get_if<double>(&original.values[i])) {
      EXPECT_TRUE(same_bits(std::get<double>(decoded.values[i]), *value)) << i;
    } else if (const auto* array =
                   std::get_if<std::vector<double>>(&original.values[i])) {
      const auto& got = std::get<std::vector<double>>(decoded.values[i]);
      ASSERT_EQ(got.size(), array->size()) << i;
      for (size_t j = 0; j < array->size(); ++j) {
        EXPECT_TRUE(same_bits(got[j], (*array)[j])) << i << "[" << j << "]";
      }
    } else {
      EXPECT_EQ(decoded.values[i], original.values[i]) << i;
    }
  }
}

double adversarial_double(Rng& rng) {
  switch (rng.below(8)) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return -std::numeric_limits<double>::quiet_NaN();
    case 2: return std::numeric_limits<double>::infinity();
    case 3: return -std::numeric_limits<double>::infinity();
    case 4: return -0.0;
    case 5: return std::numeric_limits<double>::denorm_min();
    case 6: return std::numeric_limits<double>::max();
    default: return rng.normal();
  }
}

std::string nested_json_text(size_t depth) {
  std::string text;
  for (size_t i = 0; i < depth; ++i) text += R"({"d":[)";
  text += "0";
  for (size_t i = 0; i < depth; ++i) text += "]}";
  return text;
}

std::string adversarial_string(Rng& rng) {
  switch (rng.below(5)) {
    case 0: return "";
    case 1: {
      std::string nuls = "head";
      nuls += '\0';
      nuls += "mid";
      nuls += '\0';
      return nuls + "tail";
    }
    case 2: return std::string(70 * 1024, '\xff');  // >64 KiB, non-UTF8
    case 3: return nested_json_text(48);
    default: {
      std::string bytes(rng.below(64), '\0');
      for (char& c : bytes) c = static_cast<char>(rng.below(256));
      return bytes;
    }
  }
}

std::vector<double> adversarial_array(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return {};
    case 1: {  // >64 KiB payload
      std::vector<double> big(9000);
      for (size_t i = 0; i < big.size(); ++i) {
        big[i] = (i % 97 == 0) ? std::numeric_limits<double>::quiet_NaN()
                               : static_cast<double>(i);
      }
      return big;
    }
    default: {
      std::vector<double> array(rng.below(16));
      for (double& element : array) element = adversarial_double(rng);
      return array;
    }
  }
}

StreamSchema adversarial_schema() {
  StreamSchema schema;
  schema.name = "adversarial";
  schema.version = 1;
  schema.fields = {{"reading", "double"},
                   {"blob", "string"},
                   {"trace", "double[]"},
                   {"tick", "int"}};
  return schema;
}

std::vector<Record> adversarial_records(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<Record> records;
  for (size_t i = 0; i < count; ++i) {
    Record record;
    record.sequence = i;
    record.timestamp = adversarial_double(rng);
    record.values = {Value{adversarial_double(rng)},
                     Value{adversarial_string(rng)},
                     Value{adversarial_array(rng)},
                     Value{static_cast<int64_t>(rng() )}};
    records.push_back(std::move(record));
  }
  return records;
}

TEST(MarshalAdversarial, RoundTripsBitExactAcrossSeeds) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u, 31337u}) {
    const std::vector<Record> records = adversarial_records(seed, 24);
    Encoder encoder(adversarial_schema());
    for (const Record& record : records) encoder.append(record);
    const DecodedStream decoded = decode_stream(encoder.bytes());
    ASSERT_EQ(decoded.records.size(), records.size()) << "seed=" << seed;
    for (size_t i = 0; i < records.size(); ++i) {
      expect_bit_identical(decoded.records[i], records[i]);
    }
  }
}

TEST(MarshalAdversarial, EmptyPayloadsRoundTrip) {
  StreamSchema schema;
  schema.name = "empty";
  schema.fields = {{"s", "string"}, {"a", "double[]"}};
  Record record;
  record.sequence = 0;
  record.values = {Value{std::string{}}, Value{std::vector<double>{}}};
  Encoder encoder(schema);
  encoder.append(record);
  const DecodedStream decoded = decode_stream(encoder.bytes());
  ASSERT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(std::get<std::string>(decoded.records[0].values[0]), "");
  EXPECT_TRUE(std::get<std::vector<double>>(decoded.records[0].values[1]).empty());
}

TEST(MarshalAdversarial, EmbeddedNulsSurviveExactly) {
  StreamSchema schema;
  schema.name = "nuls";
  schema.fields = {{"s", "string"}};
  std::string payload("a\0b\0\0c", 6);
  Record record;
  record.values = {Value{payload}};
  Encoder encoder(schema);
  encoder.append(record);
  const DecodedStream decoded = decode_stream(encoder.bytes());
  const auto& got = std::get<std::string>(decoded.records[0].values[0]);
  EXPECT_EQ(got.size(), 6u);
  EXPECT_EQ(got, payload);
}

TEST(MarshalAdversarial, DeepJsonTextRoundTripsAndStillParses) {
  StreamSchema schema;
  schema.name = "json";
  schema.fields = {{"doc", "string"}};
  const std::string doc = nested_json_text(64);
  Record record;
  record.values = {Value{doc}};
  Encoder encoder(schema);
  encoder.append(record);
  const DecodedStream decoded = decode_stream(encoder.bytes());
  const auto& got = std::get<std::string>(decoded.records[0].values[0]);
  EXPECT_EQ(got, doc);
  EXPECT_NO_THROW(Json::parse(got));  // carried intact, still valid JSON
}

TEST(MarshalAdversarial, TruncationOnAdversarialStreamFailsCleanly) {
  const std::vector<Record> records = adversarial_records(99, 8);
  Encoder encoder(adversarial_schema());
  for (const Record& record : records) encoder.append(record);
  const std::vector<uint8_t>& bytes = encoder.bytes();
  Encoder probe(adversarial_schema());
  const size_t header = probe.bytes().size();

  Rng rng(0xfeed);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t cut = header + 1 + rng.below(bytes.size() - header - 1);
    const std::vector<uint8_t> truncated(bytes.begin(),
                                         bytes.begin() + static_cast<long>(cut));
    try {
      const DecodedStream decoded = decode_stream(truncated);
      // Whole-record prefix: every decoded record is bit-identical.
      ASSERT_LE(decoded.records.size(), records.size());
      for (size_t i = 0; i < decoded.records.size(); ++i) {
        expect_bit_identical(decoded.records[i], records[i]);
      }
    } catch (const ParseError&) {
      // the only acceptable failure mode
    }
  }
}

TEST(MarshalAdversarial, PoisonedArrayLengthRejectedWithoutAllocating) {
  // Corrupt the double[] length prefix to ~4 billion elements. The decoder
  // must notice the payload cannot fit in the remaining bytes *before*
  // reserving, and raise ParseError — not std::bad_alloc, not OOM.
  StreamSchema schema;
  schema.name = "poison";
  schema.fields = {{"a", "double[]"}};
  Record record;
  record.values = {Value{std::vector<double>{1.0, 2.0, 3.0}}};
  Encoder encoder(schema);
  const size_t header = encoder.bytes().size();
  encoder.append(record);
  std::vector<uint8_t> bytes = encoder.bytes();

  // Record layout after the header: u64 seq, f64 ts, u32 value count,
  // u8 tag, then the u32 element count we are poisoning.
  const size_t length_offset = header + 8 + 8 + 4 + 1;
  ASSERT_LE(length_offset + 4, bytes.size());
  for (size_t i = 0; i < 4; ++i) bytes[length_offset + i] = 0xff;
  EXPECT_THROW(decode_stream(bytes), ParseError);
}

TEST(MarshalAdversarial, PoisonedStringLengthRejected) {
  StreamSchema schema;
  schema.name = "poison";
  schema.fields = {{"s", "string"}};
  Record record;
  record.values = {Value{std::string("abc")}};
  Encoder encoder(schema);
  const size_t header = encoder.bytes().size();
  encoder.append(record);
  std::vector<uint8_t> bytes = encoder.bytes();
  const size_t length_offset = header + 8 + 8 + 4 + 1;
  for (size_t i = 0; i < 4; ++i) bytes[length_offset + i] = 0xfe;
  EXPECT_THROW(decode_stream(bytes), ParseError);
}

TEST(MarshalAdversarial, GiantBlobRoundTrips) {
  // One record holding both a 70 KiB string and a 9000-element trace —
  // length prefixes well past 16-bit territory.
  StreamSchema schema = adversarial_schema();
  Record record;
  record.sequence = 7;
  record.timestamp = 0.25;
  std::vector<double> trace(9000, 1.5);
  record.values = {Value{std::numeric_limits<double>::infinity()},
                   Value{std::string(70 * 1024, 'x')}, Value{trace},
                   Value{int64_t{-1}}};
  Encoder encoder(schema);
  encoder.append(record);
  EXPECT_GT(encoder.bytes().size(), 64u * 1024u + 9000u * 8u);
  const DecodedStream decoded = decode_stream(encoder.bytes());
  ASSERT_EQ(decoded.records.size(), 1u);
  expect_bit_identical(decoded.records[0], record);
}

// --- binary frame codec (FFW) ---------------------------------------------
// Same adversarial diet for the length-prefixed binary wire format: the
// decoder trusts nothing — magic, version, schema key, frame lengths, and
// every inner length prefix are checked against the remaining bytes before
// any allocation happens.

size_t frame_header_size(const StreamSchema& schema) {
  return FrameEncoder(schema).bytes().size();
}

TEST(MarshalAdversarial, FrameRoundTripsBitExactAcrossSeeds) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u, 31337u}) {
    const std::vector<Record> records = adversarial_records(seed, 24);
    FrameEncoder encoder(adversarial_schema());
    for (const Record& record : records) encoder.append(record);
    EXPECT_EQ(encoder.records_encoded(), records.size());
    const DecodedStream decoded =
        decode_frame_stream(encoder.bytes(), adversarial_schema());
    ASSERT_EQ(decoded.records.size(), records.size()) << "seed=" << seed;
    for (size_t i = 0; i < records.size(); ++i) {
      expect_bit_identical(decoded.records[i], records[i]);
    }
  }
}

TEST(MarshalAdversarial, FrameAndSelfDescribingDecodeIdentically) {
  // Cross-format parity: the two codecs must agree bit-for-bit on what the
  // records were, NaN payloads and all — the wire format is a transport
  // choice, never a semantic one.
  const std::vector<Record> records = adversarial_records(555, 16);
  Encoder json_like(adversarial_schema());
  FrameEncoder binary(adversarial_schema());
  for (const Record& record : records) {
    json_like.append(record);
    binary.append(record);
  }
  const DecodedStream a = decode_stream(json_like.bytes());
  const DecodedStream b =
      decode_frame_stream(binary.bytes(), adversarial_schema());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    expect_bit_identical(b.records[i], a.records[i]);
  }
  // And the binary stream is the leaner wire: no per-value tags.
  EXPECT_LT(binary.bytes().size(), json_like.bytes().size());
}

TEST(MarshalAdversarial, FrameNanInfPayloadBitsSurvive) {
  StreamSchema schema;
  schema.name = "bits";
  schema.fields = {{"v", "double"}};
  // A NaN with a deliberate payload pattern — operator== can't see it,
  // the bits must anyway.
  uint64_t nan_bits = 0x7ff8dead'beef0001ull;
  double weird_nan;
  std::memcpy(&weird_nan, &nan_bits, sizeof(weird_nan));
  for (double value : {weird_nan, -std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity(), -0.0}) {
    Record record;
    record.timestamp = value;
    record.values = {Value{value}};
    FrameEncoder encoder(schema);
    encoder.append(record);
    const DecodedStream decoded = decode_frame_stream(encoder.bytes(), schema);
    ASSERT_EQ(decoded.records.size(), 1u);
    EXPECT_TRUE(same_bits(decoded.records[0].timestamp, value));
    EXPECT_TRUE(same_bits(std::get<double>(decoded.records[0].values[0]), value));
  }
}

TEST(MarshalAdversarial, FrameTruncationFailsCleanlyOrYieldsExactPrefix) {
  const std::vector<Record> records = adversarial_records(99, 8);
  FrameEncoder encoder(adversarial_schema());
  for (const Record& record : records) encoder.append(record);
  const std::vector<uint8_t>& bytes = encoder.bytes();
  const size_t header = frame_header_size(adversarial_schema());

  Rng rng(0xfeed);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t cut = header + 1 + rng.below(bytes.size() - header - 1);
    const std::vector<uint8_t> truncated(bytes.begin(),
                                         bytes.begin() + static_cast<long>(cut));
    try {
      const DecodedStream decoded =
          decode_frame_stream(truncated, adversarial_schema());
      // Cut on a frame boundary: a clean, bit-identical prefix.
      ASSERT_LE(decoded.records.size(), records.size());
      for (size_t i = 0; i < decoded.records.size(); ++i) {
        expect_bit_identical(decoded.records[i], records[i]);
      }
    } catch (const ParseError&) {
      // the only acceptable failure mode
    }
  }
}

TEST(MarshalAdversarial, FramePoisonedLengthPrefixRejected) {
  StreamSchema schema;
  schema.name = "poison";
  schema.fields = {{"v", "double"}};
  Record record;
  record.values = {Value{1.0}};
  FrameEncoder encoder(schema);
  encoder.append(record);
  std::vector<uint8_t> bytes = encoder.bytes();
  const size_t header = frame_header_size(schema);
  // The first frame's u32 length prefix, poisoned to ~4 GiB.
  for (size_t i = 0; i < 4; ++i) bytes[header + i] = 0xff;
  EXPECT_THROW(decode_frame_stream(bytes, schema), ParseError);
}

TEST(MarshalAdversarial, FramePoisonedArrayLengthRejectedWithoutAllocating) {
  StreamSchema schema;
  schema.name = "poison";
  schema.fields = {{"a", "double[]"}};
  Record record;
  record.values = {Value{std::vector<double>{1.0, 2.0, 3.0}}};
  FrameEncoder encoder(schema);
  encoder.append(record);
  std::vector<uint8_t> bytes = encoder.bytes();
  // Frame layout: u32 length, u64 seq, f64 ts, then the u32 element count.
  const size_t length_offset = frame_header_size(schema) + 4 + 8 + 8;
  ASSERT_LE(length_offset + 4, bytes.size());
  for (size_t i = 0; i < 4; ++i) bytes[length_offset + i] = 0xff;
  EXPECT_THROW(decode_frame_stream(bytes, schema), ParseError);
}

TEST(MarshalAdversarial, FrameBadMagicAndVersionRejected) {
  StreamSchema schema;
  schema.name = "hdr";
  schema.fields = {{"v", "double"}};
  Record record;
  record.values = {Value{2.5}};
  FrameEncoder encoder(schema);
  encoder.append(record);
  std::vector<uint8_t> bad_magic = encoder.bytes();
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_frame_stream(bad_magic, schema), ParseError);
  std::vector<uint8_t> bad_version = encoder.bytes();
  bad_version[3] = 0x7f;
  EXPECT_THROW(decode_frame_stream(bad_version, schema), ParseError);
  EXPECT_THROW(decode_frame_stream({'F', 'F'}, schema), ParseError);
  EXPECT_THROW(decode_frame_stream({}, schema), ParseError);
}

TEST(MarshalAdversarial, FrameSchemaKeyMismatchRejected) {
  // Binary frames carry no field names or types: decoding against any
  // schema other than the encoder's exact name:version must refuse rather
  // than misinterpret the payload bytes.
  FrameEncoder encoder(adversarial_schema());
  encoder.append(adversarial_records(3, 1)[0]);
  StreamSchema renamed = adversarial_schema();
  renamed.name = "imposter";
  EXPECT_THROW(decode_frame_stream(encoder.bytes(), renamed), ParseError);
  StreamSchema bumped = adversarial_schema();
  bumped.version = 2;
  EXPECT_THROW(decode_frame_stream(encoder.bytes(), bumped), ParseError);
}

TEST(MarshalAdversarial, FrameTrailingBytesInsideFrameRejected) {
  StreamSchema schema;
  schema.name = "trail";
  schema.fields = {{"v", "double"}};
  Record record;
  record.values = {Value{1.0}};
  FrameEncoder encoder(schema);
  encoder.append(record);
  std::vector<uint8_t> bytes = encoder.bytes();
  const size_t header = frame_header_size(schema);
  // Grow the frame by one byte the fields don't account for: bump the
  // length prefix and append filler. The decoder must flag the slack.
  const uint32_t length = static_cast<uint32_t>(bytes.size() - header - 4) + 1;
  for (size_t i = 0; i < 4; ++i) {
    bytes[header + i] = static_cast<uint8_t>(length >> (8 * i));
  }
  bytes.push_back(0x00);
  EXPECT_THROW(decode_frame_stream(bytes, schema), ParseError);
}

TEST(MarshalAdversarial, FrameEncoderRejectsSchemaViolations) {
  StreamSchema schema;
  schema.name = "strict";
  schema.fields = {{"v", "double"}, {"n", "int"}};
  FrameEncoder encoder(schema);
  Record wrong_count;
  wrong_count.values = {Value{1.0}};
  EXPECT_THROW(encoder.append(wrong_count), ValidationError);
  Record wrong_type;
  wrong_type.values = {Value{1.0}, Value{std::string("not an int")}};
  EXPECT_THROW(encoder.append(wrong_type), ValidationError);
  EXPECT_EQ(encoder.records_encoded(), 0u);
}

TEST(MarshalAdversarial, DecodeIntoReusedBufferMatchesOneShot) {
  // The steady-state wire-sink path: chunk after chunk into one reused
  // DecodedStream. Every round must equal the one-shot decode exactly —
  // including a shrinking round, where stale records from the previous
  // (larger) chunk must not leak through.
  const std::vector<Record> big = adversarial_records(99, 24);
  const std::vector<Record> small = adversarial_records(7, 5);
  FrameEncoder big_chunk(adversarial_schema());
  for (const Record& record : big) big_chunk.append(record);
  FrameEncoder small_chunk(adversarial_schema());
  for (const Record& record : small) small_chunk.append(record);

  DecodedStream reused;
  for (int round = 0; round < 3; ++round) {
    decode_frame_stream_into(big_chunk.bytes(), adversarial_schema(), reused);
    ASSERT_EQ(reused.records.size(), big.size()) << "round=" << round;
    for (size_t i = 0; i < big.size(); ++i) {
      expect_bit_identical(reused.records[i], big[i]);
    }
    decode_frame_stream_into(small_chunk.bytes(), adversarial_schema(),
                             reused);
    ASSERT_EQ(reused.records.size(), small.size()) << "round=" << round;
    for (size_t i = 0; i < small.size(); ++i) {
      expect_bit_identical(reused.records[i], small[i]);
    }
  }
}

}  // namespace
}  // namespace ff::stream
