// Concurrency battery for the bounded Channel implementations (mutex
// deque, SPSC ring, MPMC ring). These tests are built twice: into
// test_stream (plain) and into test_stream_tsan with -fsanitize=thread
// (ctest -L tsan), where the randomized producer/consumer mixes give the
// race detector real interleavings to chew on.
//
// Synchronization discipline for the tests themselves: assertions about
// counters run only at quiescence (all threads joined), and "wait until a
// peer is blocked" uses the channel's waiter introspection instead of
// sleeps. Multi-producer mixes run over {Mutex, Mpmc}; the SPSC ring joins
// wherever a single producer feeds the channel (its contract — consumers
// are always plural-safe, since lossy eviction pops from producer context).

#include "stream/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace ff::stream {
namespace {

using namespace std::chrono_literals;

Record record_at(uint64_t sequence) {
  Record record;
  record.sequence = sequence;
  return record;
}

/// Spin (yielding) until `ready()` holds. Bounded so a broken condition
/// fails the test instead of hanging the suite.
template <typename Predicate>
::testing::AssertionResult eventually(Predicate ready) {
  for (int i = 0; i < 20000; ++i) {
    if (ready()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(100us);
  }
  return ::testing::AssertionFailure() << "condition not reached in 2s";
}

struct StressConfig {
  size_t producers;
  size_t consumers;
  size_t per_producer;
  size_t capacity;  // power of two so ring capacities bound exactly
};

/// N producers × M consumers over one bounded channel, each thread mixing
/// blocking and non-blocking calls at random. Checks that every record is
/// received exactly once and the lifetime counters balance.
void run_mpmc_stress(ChannelKind kind, const StressConfig& config,
                     uint64_t seed) {
  auto channel = make_channel(kind, config.capacity);
  std::mutex collect_mutex;
  std::vector<uint64_t> collected;

  std::vector<std::thread> producers;
  for (size_t p = 0; p < config.producers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(seed);
      Rng local = rng.fork(p);
      for (size_t i = 0; i < config.per_producer; ++i) {
        const uint64_t sequence = p * 1'000'000 + i;
        if (local.chance(0.5)) {
          ASSERT_TRUE(channel->send(record_at(sequence)));
        } else {
          while (!channel->try_send(record_at(sequence))) {
            std::this_thread::yield();
          }
        }
      }
    });
  }

  std::vector<std::thread> consumers;
  for (size_t c = 0; c < config.consumers; ++c) {
    consumers.emplace_back([&, c] {
      Rng rng(seed);
      Rng local = rng.fork(1000 + c);
      std::vector<uint64_t> mine;
      while (true) {
        std::optional<Record> record;
        const double roll = local.uniform();
        if (roll < 0.4) {
          record = channel->receive();
          if (!record) break;  // closed and drained
        } else if (roll < 0.7) {
          record = channel->receive_for(200us);
          if (!record && channel->closed() && channel->size() == 0) break;
        } else {
          record = channel->try_receive();
          if (!record) {
            if (channel->closed() && channel->size() == 0) break;
            std::this_thread::yield();
          }
        }
        if (record) mine.push_back(record->sequence);
      }
      std::lock_guard lock(collect_mutex);
      collected.insert(collected.end(), mine.begin(), mine.end());
    });
  }

  for (auto& thread : producers) thread.join();
  channel->close();  // consumers drain the tail, then exit
  for (auto& thread : consumers) thread.join();

  const size_t expected = config.producers * config.per_producer;
  EXPECT_EQ(channel->sent(), expected);
  EXPECT_EQ(channel->size(), 0u);
  // Quiescence invariant: nothing dropped on the blocking/try paths.
  EXPECT_EQ(channel->sent(), channel->received() + channel->size());
  EXPECT_EQ(channel->dropped(), 0u);

  ASSERT_EQ(collected.size(), expected);
  std::sort(collected.begin(), collected.end());
  EXPECT_TRUE(std::adjacent_find(collected.begin(), collected.end()) ==
              collected.end())
      << "a record was received twice";
  for (size_t p = 0; p < config.producers; ++p) {
    EXPECT_TRUE(std::binary_search(collected.begin(), collected.end(),
                                   p * 1'000'000))
        << "lost first record of producer " << p;
    EXPECT_TRUE(std::binary_search(collected.begin(), collected.end(),
                                   p * 1'000'000 + config.per_producer - 1))
        << "lost last record of producer " << p;
  }
}

std::string kind_name(const ::testing::TestParamInfo<ChannelKind>& info) {
  return channel_kind_name(info.param);
}

/// Multi-producer mixes: every kind whose contract allows > 1 producer.
class MultiProducerStress : public ::testing::TestWithParam<ChannelKind> {};
INSTANTIATE_TEST_SUITE_P(Kinds, MultiProducerStress,
                         ::testing::Values(ChannelKind::Mutex,
                                           ChannelKind::Mpmc),
                         kind_name);

/// Single-producer mixes: all three kinds, including the SPSC ring (with
/// several consumers — its consumer side is multi-safe by design).
class SingleProducerStress : public ::testing::TestWithParam<ChannelKind> {};
INSTANTIATE_TEST_SUITE_P(Kinds, SingleProducerStress,
                         ::testing::Values(ChannelKind::Mutex,
                                           ChannelKind::Spsc,
                                           ChannelKind::Mpmc),
                         kind_name);

TEST_P(SingleProducerStress, OneToOne) {
  run_mpmc_stress(GetParam(), {1, 1, 2000, 8}, 42);
}

TEST_P(SingleProducerStress, OneToThreeTinyCapacity) {
  run_mpmc_stress(GetParam(), {1, 3, 1500, 1}, 314);
}

TEST_P(MultiProducerStress, TwoByTwo) {
  run_mpmc_stress(GetParam(), {2, 2, 1500, 4}, 7);
}

TEST_P(MultiProducerStress, ManyProducersFewConsumers) {
  run_mpmc_stress(GetParam(), {4, 2, 800, 16}, 1234);
}

TEST_P(MultiProducerStress, FewProducersManyConsumers) {
  run_mpmc_stress(GetParam(), {2, 5, 1000, 2}, 99);
}

TEST_P(MultiProducerStress, TinyCapacityMaximizesContention) {
  run_mpmc_stress(GetParam(), {3, 3, 700, 1}, 2026);
}

/// Producers hammer a lossy channel while one slow consumer drains it; at
/// quiescence the counter identity sent == received + dropped + size must
/// hold exactly, whatever interleaving happened. SPSC runs the same load
/// from a single producer.
void run_lossy_stress(ChannelKind kind, Overflow policy, uint64_t seed) {
  auto channel = make_channel(kind, 4);
  std::atomic<uint64_t> evicted{0};
  const size_t producers_n = kind == ChannelKind::Spsc ? 1 : 3;
  const size_t per_producer = 3000 / producers_n;

  std::vector<std::thread> producers;
  for (size_t p = 0; p < producers_n; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(seed);
      Rng local = rng.fork(p);
      for (size_t i = 0; i < per_producer; ++i) {
        const auto result =
            channel->offer(record_at(p * 1'000'000 + i), policy);
        ASSERT_TRUE(result.accepted);  // lossy offers never fail while open
        evicted.fetch_add(result.evicted, std::memory_order_relaxed);
        if (local.chance(0.1)) std::this_thread::yield();
      }
    });
  }
  std::thread consumer([&] {
    uint64_t drained = 0;
    while (auto record = channel->receive()) {
      ++drained;
      if (drained % 64 == 0) std::this_thread::sleep_for(50us);
    }
  });

  for (auto& thread : producers) thread.join();
  channel->close();
  consumer.join();

  EXPECT_EQ(channel->sent(), producers_n * per_producer);
  EXPECT_EQ(channel->sent(),
            channel->received() + channel->dropped() + channel->size());
  EXPECT_EQ(channel->dropped(), evicted.load());
}

class LossyStress : public ::testing::TestWithParam<ChannelKind> {};
INSTANTIATE_TEST_SUITE_P(Kinds, LossyStress,
                         ::testing::Values(ChannelKind::Mutex,
                                           ChannelKind::Spsc,
                                           ChannelKind::Mpmc),
                         kind_name);

TEST_P(LossyStress, DropOldestAccountingBalances) {
  run_lossy_stress(GetParam(), Overflow::DropOldest, 11);
}

TEST_P(LossyStress, KeepLatestAccountingBalances) {
  run_lossy_stress(GetParam(), Overflow::KeepLatest, 12);
}

// --- close-while-blocked regressions -------------------------------------
// The waiter introspection lets these tests wait until the peer thread is
// provably parked inside the channel before pulling the rug. All three
// kinds must pass: closing races the ring's park/wake protocol directly.

class CloseStress : public ::testing::TestWithParam<ChannelKind> {
 protected:
  std::unique_ptr<Channel> make(size_t capacity) {
    return make_channel(GetParam(), capacity);
  }
};
INSTANTIATE_TEST_SUITE_P(Kinds, CloseStress,
                         ::testing::Values(ChannelKind::Mutex,
                                           ChannelKind::Spsc,
                                           ChannelKind::Mpmc),
                         kind_name);

TEST_P(CloseStress, CloseWakesBlockedSender) {
  auto channel = make(1);
  ASSERT_TRUE(channel->send(record_at(0)));  // now full
  std::atomic<bool> send_result{true};
  std::thread sender([&] { send_result = channel->send(record_at(1)); });
  ASSERT_TRUE(eventually([&] { return channel->send_waiters() == 1; }));
  channel->close();
  sender.join();
  EXPECT_FALSE(send_result.load()) << "send must fail, not enqueue, on close";
  EXPECT_EQ(channel->sent(), 1u);
}

TEST_P(CloseStress, CloseWakesBlockedOfferUnderBlockPolicy) {
  auto channel = make(1);
  ASSERT_TRUE(channel->send(record_at(0)));
  std::atomic<bool> accepted{true};
  std::thread sender([&] {
    accepted = channel->offer(record_at(1), Overflow::Block).accepted;
  });
  ASSERT_TRUE(eventually([&] { return channel->send_waiters() == 1; }));
  channel->close();
  sender.join();
  EXPECT_FALSE(accepted.load());
}

TEST_P(CloseStress, CloseWakesBlockedReceiver) {
  auto channel = make(2);
  std::atomic<bool> got_value{true};
  std::thread receiver([&] { got_value = channel->receive().has_value(); });
  ASSERT_TRUE(eventually([&] { return channel->receive_waiters() == 1; }));
  channel->close();
  receiver.join();
  EXPECT_FALSE(got_value.load());
}

TEST_P(CloseStress, CloseWakesBlockedTimedReceiver) {
  auto channel = make(2);
  std::atomic<bool> got_value{true};
  std::thread receiver([&] {
    got_value = channel->receive_for(10s).has_value();  // close cuts this short
  });
  ASSERT_TRUE(eventually([&] { return channel->receive_waiters() == 1; }));
  const auto start = std::chrono::steady_clock::now();
  channel->close();
  receiver.join();
  EXPECT_FALSE(got_value.load());
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST_P(CloseStress, CloseWakesManyBlockedReceiversAtOnce) {
  auto channel = make(2);
  std::vector<std::thread> receivers;
  std::atomic<int> woke{0};
  for (int i = 0; i < 4; ++i) {
    receivers.emplace_back([&] {
      if (!channel->receive().has_value()) woke.fetch_add(1);
    });
  }
  ASSERT_TRUE(eventually([&] { return channel->receive_waiters() == 4; }));
  channel->close();
  for (auto& thread : receivers) thread.join();
  EXPECT_EQ(woke.load(), 4);
}

TEST_P(CloseStress, CloseAndDrainRacingProducers) {
  auto channel = make(8);
  const size_t producers_n = GetParam() == ChannelKind::Spsc ? 1 : 3;
  std::vector<std::thread> producers;
  std::atomic<uint64_t> accepted{0};
  for (size_t p = 0; p < producers_n; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < 500; ++i) {
        if (channel->send(record_at(p * 1'000'000 + i))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          break;  // closed mid-stream: everything after is rejected too
        }
      }
    });
  }
  std::this_thread::sleep_for(1ms);
  const std::vector<Record> drained = channel->close_and_drain();
  for (auto& thread : producers) thread.join();

  // close_and_drain counts the taken records as received; nothing lingers.
  EXPECT_EQ(channel->size(), 0u);
  EXPECT_EQ(channel->sent(), accepted.load());
  EXPECT_EQ(channel->sent(), channel->received() + channel->dropped());
  EXPECT_LE(drained.size(), accepted.load());
  EXPECT_FALSE(channel->receive().has_value());
}

/// Batched consumer: one producer streams while a consumer drains in bulk
/// with drain_into — the exact shape of a pipeline strand drain. Nothing
/// may be lost, duplicated, or reordered, at any batch size.
class DrainStress
    : public ::testing::TestWithParam<std::tuple<ChannelKind, size_t>> {};
INSTANTIATE_TEST_SUITE_P(
    KindsAndBatches, DrainStress,
    ::testing::Combine(::testing::Values(ChannelKind::Mutex,
                                         ChannelKind::Spsc,
                                         ChannelKind::Mpmc),
                       ::testing::Values(size_t{1}, size_t{8}, size_t{64})),
    [](const ::testing::TestParamInfo<std::tuple<ChannelKind, size_t>>& info) {
      return std::string(channel_kind_name(std::get<0>(info.param))) +
             "_batch" + std::to_string(std::get<1>(info.param));
    });

TEST_P(DrainStress, BulkDrainPreservesOrderAndCounts) {
  const auto [kind, batch] = GetParam();
  auto channel = make_channel(kind, 16);
  constexpr uint64_t kTotal = 4000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kTotal; ++i) channel->send(record_at(i));
    channel->close();
  });
  std::vector<uint64_t> seen;
  std::vector<Record> scratch;
  while (true) {
    scratch.clear();
    if (channel->drain_into(scratch, batch) == 0) {
      if (channel->closed() && channel->size() == 0) break;
      std::this_thread::yield();
      continue;
    }
    for (const Record& record : scratch) seen.push_back(record.sequence);
  }
  producer.join();
  ASSERT_EQ(seen.size(), kTotal);
  for (uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[i], i) << "order broken at index " << i;
  }
  EXPECT_EQ(channel->sent(), channel->received());
}

}  // namespace
}  // namespace ff::stream
