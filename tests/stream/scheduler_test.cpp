#include "stream/scheduler.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ff::stream {
namespace {

Record record_at(uint64_t sequence, double timestamp = 0) {
  Record record;
  record.sequence = sequence;
  record.timestamp = timestamp;
  record.values = {Value{static_cast<int64_t>(sequence)}};
  return record;
}

struct Capture {
  std::vector<std::pair<std::string, uint64_t>> deliveries;
  DataScheduler::Consumer consumer() {
    return [this](const std::string& queue, const Record& record) {
      deliveries.emplace_back(queue, record.sequence);
    };
  }
};

TEST(Policies, ForwardAllReleasesImmediately) {
  ForwardAllPolicy policy;
  EXPECT_EQ(policy.on_item(record_at(1)).size(), 1u);
  EXPECT_TRUE(policy.on_punctuation(Json::object()).empty());
}

TEST(Policies, SlidingWindowCountKeepsLastN) {
  SlidingWindowCountPolicy policy(3);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(policy.on_item(record_at(i)).empty());
  }
  const auto window = policy.on_punctuation(Json::object());
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0].sequence, 2u);
  EXPECT_EQ(window[2].sequence, 4u);
  EXPECT_THROW(SlidingWindowCountPolicy(0), ValidationError);
}

TEST(Policies, SlidingWindowTimeEvictsOldRecords) {
  SlidingWindowTimePolicy policy(10.0);
  policy.on_item(record_at(0, 0.0));
  policy.on_item(record_at(1, 5.0));
  policy.on_item(record_at(2, 16.0));  // evicts t=0 and t=5
  const auto window = policy.on_punctuation(Json::object());
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].sequence, 2u);
  EXPECT_THROW(SlidingWindowTimePolicy(0), ValidationError);
}

TEST(Policies, DirectSelectionByPunctuation) {
  DirectSelectionPolicy policy;
  for (uint64_t i = 0; i < 6; ++i) policy.on_item(record_at(i));
  EXPECT_EQ(policy.queued(), 6u);

  Json select = Json::object();
  select["select"] = Json::array({Json(4), Json(1), Json(99)});
  const auto released = policy.on_punctuation(select);
  ASSERT_EQ(released.size(), 2u);  // 99 not present
  EXPECT_EQ(released[0].sequence, 4u);
  EXPECT_EQ(released[1].sequence, 1u);
  EXPECT_EQ(policy.queued(), 4u);  // selected records left the queue

  Json drop = Json::object();
  drop["drop_before"] = 3;
  policy.on_punctuation(drop);
  EXPECT_EQ(policy.queued(), 2u);  // 3 and 5 remain

  Json flush = Json::object();
  flush["flush"] = true;
  EXPECT_EQ(policy.on_punctuation(flush).size(), 2u);
  EXPECT_EQ(policy.queued(), 0u);
}

TEST(Policies, DirectSelectionBoundsItsQueue) {
  DirectSelectionPolicy policy(4);
  for (uint64_t i = 0; i < 10; ++i) policy.on_item(record_at(i));
  EXPECT_EQ(policy.queued(), 4u);  // oldest dropped
}

TEST(Policies, SampleEveryN) {
  SampleEveryNPolicy policy(3);
  size_t taken = 0;
  for (uint64_t i = 0; i < 9; ++i) taken += policy.on_item(record_at(i)).size();
  EXPECT_EQ(taken, 3u);
  EXPECT_THROW(SampleEveryNPolicy(0), ValidationError);
}

TEST(Scheduler, PublishFansOutToActiveQueues) {
  DataScheduler scheduler;
  Capture capture;
  scheduler.subscribe(capture.consumer());
  scheduler.install_queue("live", std::make_unique<ForwardAllPolicy>());
  scheduler.install_queue("sampled", std::make_unique<SampleEveryNPolicy>(2));
  for (uint64_t i = 0; i < 4; ++i) scheduler.publish(record_at(i));
  // live gets 4, sampled gets 2.
  size_t live = 0;
  size_t sampled = 0;
  for (const auto& [queue, _] : capture.deliveries) {
    if (queue == "live") ++live;
    if (queue == "sampled") ++sampled;
  }
  EXPECT_EQ(live, 4u);
  EXPECT_EQ(sampled, 2u);
  EXPECT_EQ(scheduler.stats("live").arrivals, 4u);
  EXPECT_EQ(scheduler.stats("live").releases, 4u);
  EXPECT_EQ(scheduler.stats("sampled").releases, 2u);
}

TEST(Scheduler, InactiveQueuesReceiveNothing) {
  DataScheduler scheduler;
  Capture capture;
  scheduler.subscribe(capture.consumer());
  scheduler.install_queue("q", std::make_unique<ForwardAllPolicy>());
  scheduler.set_active("q", false);
  EXPECT_FALSE(scheduler.is_active("q"));
  scheduler.publish(record_at(0));
  EXPECT_TRUE(capture.deliveries.empty());
  scheduler.set_active("q", true);
  scheduler.publish(record_at(1));
  EXPECT_EQ(capture.deliveries.size(), 1u);
}

TEST(Scheduler, ControlTargetsOneQueue) {
  DataScheduler scheduler;
  Capture capture;
  scheduler.subscribe(capture.consumer());
  scheduler.install_queue("w1", std::make_unique<SlidingWindowCountPolicy>(8));
  scheduler.install_queue("w2", std::make_unique<SlidingWindowCountPolicy>(8));
  scheduler.publish(record_at(0));
  scheduler.control("w1", Json::object());
  ASSERT_EQ(capture.deliveries.size(), 1u);
  EXPECT_EQ(capture.deliveries[0].first, "w1");
  scheduler.punctuate(Json::object());  // broadcast hits both
  EXPECT_EQ(capture.deliveries.size(), 3u);
}

TEST(Scheduler, QueueManagementErrors) {
  DataScheduler scheduler;
  scheduler.install_queue("q", std::make_unique<ForwardAllPolicy>());
  EXPECT_THROW(scheduler.install_queue("q", std::make_unique<ForwardAllPolicy>()),
               ValidationError);
  EXPECT_THROW(scheduler.install_queue("null", nullptr), ValidationError);
  EXPECT_THROW(scheduler.control("ghost", Json::object()), NotFoundError);
  EXPECT_THROW(scheduler.set_active("ghost", true), NotFoundError);
  scheduler.remove_queue("q");
  EXPECT_FALSE(scheduler.has_queue("q"));
  EXPECT_THROW(scheduler.remove_queue("q"), NotFoundError);
}

TEST(PolicyFactory, BuildsBuiltins) {
  const PolicyFactory factory = PolicyFactory::with_builtins();
  EXPECT_TRUE(factory.knows("forward-all"));
  EXPECT_TRUE(factory.knows("direct-selection"));
  Json args = Json::object();
  args["capacity"] = 4;
  auto policy = factory.build("sliding-window-count", args);
  EXPECT_EQ(policy->name(), "sliding-window-count(4)");
  EXPECT_THROW(factory.build("warp-drive", Json::object()), NotFoundError);
}

TEST(PolicyFactory, RuntimeInstallViaControlMessage) {
  // The Section V-C scenario: a steering process installs a policy that was
  // unknown at code-generation time, then drives it via punctuation.
  DataScheduler scheduler;
  Capture capture;
  scheduler.subscribe(capture.consumer());
  scheduler.install_queue("default", std::make_unique<ForwardAllPolicy>());

  const PolicyFactory factory = PolicyFactory::with_builtins();
  const Json message = Json::parse(
      R"({"install": {"queue": "steered", "kind": "direct-selection",
                      "args": {"max_queue": 16}}})");
  factory.handle_install(scheduler, message);
  ASSERT_TRUE(scheduler.has_queue("steered"));

  for (uint64_t i = 0; i < 5; ++i) scheduler.publish(record_at(i));
  Json select = Json::object();
  select["select"] = Json::array({Json(3)});
  scheduler.control("steered", select);

  bool steered_delivery = false;
  for (const auto& [queue, sequence] : capture.deliveries) {
    if (queue == "steered" && sequence == 3) steered_delivery = true;
  }
  EXPECT_TRUE(steered_delivery);
}

TEST(PolicyFactory, CustomKindRegistration) {
  PolicyFactory factory;
  factory.register_kind("always-empty", [](const Json&) {
    return std::make_unique<SlidingWindowCountPolicy>(1);
  });
  EXPECT_TRUE(factory.knows("always-empty"));
  EXPECT_NE(factory.build("always-empty", Json::object()), nullptr);
}

}  // namespace
}  // namespace ff::stream
