// StreamPipeline battery: ordering guarantees, overflow behaviour, dynamic
// install/remove under load, and shutdown draining. Built both plain
// (test_stream) and under -fsanitize=thread (test_stream_tsan, ctest -L
// tsan) — the racing tests exist for the latter.

#include "stream/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace ff::stream {
namespace {

using namespace std::chrono_literals;

constexpr uint64_t kMarkerBase = 1'000'000'000;

Record record_at(uint64_t sequence) {
  Record record;
  record.sequence = sequence;
  return record;
}

/// Forwards records as-is and emits a marker record per punctuation, so a
/// consumer can check exactly where the control message landed in the
/// per-queue order.
class MarkerPolicy final : public SelectionPolicy {
 public:
  std::string name() const override { return "marker"; }
  std::vector<Record> on_item(const Record& record) override { return {record}; }
  std::vector<Record> on_punctuation(const Json&) override {
    return {record_at(kMarkerBase + count_++)};
  }

 private:
  uint64_t count_ = 0;
};

/// Thread-safe per-queue capture of delivery order.
struct Collector {
  std::mutex mutex;
  std::map<std::string, std::vector<uint64_t>> order;

  DataScheduler::Consumer consumer() {
    return [this](const std::string& queue, const Record& record) {
      std::lock_guard lock(mutex);
      order[queue].push_back(record.sequence);
    };
  }
  std::vector<uint64_t> sequence(const std::string& queue) {
    std::lock_guard lock(mutex);
    return order[queue];
  }
};

// --- punctuation ordering -------------------------------------------------

TEST(StreamPipeline, PunctuationObservedAfterPriorRecords) {
  // The acceptance guarantee: a control message is observed by a queue only
  // after every record published before it. With a single publisher the
  // observed order must be *exactly* records 0..9, marker, 10..19, marker...
  StreamPipeline pipeline(4);
  Collector collector;
  pipeline.subscribe(collector.consumer());
  pipeline.install_queue("marked", std::make_unique<MarkerPolicy>());

  constexpr uint64_t kRecords = 200;
  constexpr uint64_t kEvery = 10;
  for (uint64_t i = 0; i < kRecords; ++i) {
    pipeline.publish(record_at(i));
    if ((i + 1) % kEvery == 0) pipeline.punctuate(Json::object());
  }
  pipeline.wait_quiescent();
  pipeline.shutdown();

  std::vector<uint64_t> expected;
  for (uint64_t i = 0; i < kRecords; ++i) {
    expected.push_back(i);
    if ((i + 1) % kEvery == 0) {
      expected.push_back(kMarkerBase + i / kEvery);
    }
  }
  EXPECT_EQ(collector.sequence("marked"), expected);
}

TEST(StreamPipeline, PunctuationOrderingHoldsAcrossWorkerCounts) {
  for (size_t workers : {1u, 2u, 8u}) {
    StreamPipeline pipeline(workers);
    Collector collector;
    pipeline.subscribe(collector.consumer());
    pipeline.install_queue("marked", std::make_unique<MarkerPolicy>(),
                           {.capacity = 8});
    for (uint64_t i = 0; i < 64; ++i) {
      pipeline.publish(record_at(i));
      pipeline.punctuate(Json::object());
    }
    pipeline.wait_quiescent();
    const auto observed = collector.sequence("marked");
    ASSERT_EQ(observed.size(), 128u) << "workers=" << workers;
    for (uint64_t i = 0; i < 64; ++i) {
      EXPECT_EQ(observed[2 * i], i);
      EXPECT_EQ(observed[2 * i + 1], kMarkerBase + i);
    }
  }
}

// --- overflow policies ----------------------------------------------------

TEST(StreamPipeline, BlockPolicyIsLossless) {
  // Capacity 4 with a deliberately slow consumer: publishers must block,
  // not drop. Every record arrives.
  StreamPipeline pipeline(2);
  std::atomic<uint64_t> delivered{0};
  pipeline.subscribe([&](const std::string&, const Record&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(100us);
  });
  pipeline.install_queue("fast", std::make_unique<ForwardAllPolicy>(),
                         {.capacity = 4, .overflow = Overflow::Block});
  for (uint64_t i = 0; i < 300; ++i) pipeline.publish(record_at(i));
  pipeline.wait_quiescent();

  const auto report = pipeline.report("fast");
  EXPECT_EQ(report.released, 300u);
  EXPECT_EQ(report.delivered, 300u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(delivered.load(), 300u);
}

TEST(StreamPipeline, DropOldestShedsLoadButBalances) {
  StreamPipeline pipeline(1);
  pipeline.subscribe([&](const std::string&, const Record&) {
    std::this_thread::sleep_for(500us);
  });
  pipeline.install_queue("tap", std::make_unique<ForwardAllPolicy>(),
                         {.capacity = 4, .overflow = Overflow::DropOldest});
  for (uint64_t i = 0; i < 400; ++i) pipeline.publish(record_at(i));
  pipeline.wait_quiescent();

  const auto report = pipeline.report("tap");
  EXPECT_EQ(report.released, 400u);
  EXPECT_GT(report.dropped, 0u) << "a slow consumer at capacity 4 must shed";
  EXPECT_EQ(report.released, report.delivered + report.dropped);
  EXPECT_EQ(report.depth, 0u);
}

TEST(StreamPipeline, KeepLatestConflatesButDeliversFinalRecord) {
  StreamPipeline pipeline(1);
  Collector collector;
  std::atomic<bool> slow{true};
  pipeline.subscribe([&](const std::string& queue, const Record& record) {
    {
      std::lock_guard lock(collector.mutex);
      collector.order[queue].push_back(record.sequence);
    }
    if (slow.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(300us);
    }
  });
  pipeline.install_queue("latest", std::make_unique<ForwardAllPolicy>(),
                         {.capacity = 2, .overflow = Overflow::KeepLatest});
  for (uint64_t i = 0; i < 400; ++i) pipeline.publish(record_at(i));
  slow.store(false, std::memory_order_relaxed);
  pipeline.wait_quiescent();

  const auto report = pipeline.report("latest");
  EXPECT_EQ(report.released, 400u);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_EQ(report.released, report.delivered + report.dropped);

  const auto observed = collector.sequence("latest");
  ASSERT_FALSE(observed.empty());
  // Conflation keeps freshness: nothing can evict the final record, and
  // what does get through stays in publish order.
  EXPECT_EQ(observed.back(), 399u);
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
}

// --- dynamic topology under load ------------------------------------------

TEST(StreamPipeline, InstallRemoveRacingPublish) {
  // One thread publishes continuously while another churns queues in and
  // out. Exercises the registry snapshot/shared_ptr lifetime rules; the
  // TSan build is the real judge here.
  StreamPipeline pipeline(4);
  std::atomic<uint64_t> delivered{0};
  pipeline.subscribe([&](const std::string&, const Record&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  pipeline.install_queue("stable", std::make_unique<ForwardAllPolicy>());

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      pipeline.publish(record_at(i++));
    }
  });
  std::thread churner([&] {
    const std::vector<std::string> names = {"dyn0", "dyn1", "dyn2", "dyn3"};
    for (int round = 0; round < 60; ++round) {
      for (const auto& name : names) {
        pipeline.install_queue(name, std::make_unique<ForwardAllPolicy>(),
                               {.capacity = 8, .overflow = Overflow::DropOldest});
      }
      std::this_thread::sleep_for(200us);
      for (const auto& name : names) pipeline.remove_queue(name);
    }
  });
  churner.join();
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  pipeline.wait_quiescent();

  EXPECT_TRUE(pipeline.has_queue("stable"));
  EXPECT_FALSE(pipeline.has_queue("dyn0"));
  const auto report = pipeline.report("stable");
  EXPECT_EQ(report.released, report.delivered);  // block policy, no drops
  EXPECT_GT(delivered.load(), 0u);
}

TEST(StreamPipeline, RemoveQueueDeliversAlreadyReleasedRecords) {
  StreamPipeline pipeline(1);
  Collector collector;
  pipeline.subscribe(collector.consumer());
  pipeline.install_queue("brief", std::make_unique<ForwardAllPolicy>(),
                         {.capacity = 64});
  for (uint64_t i = 0; i < 32; ++i) pipeline.publish(record_at(i));
  pipeline.remove_queue("brief");
  pipeline.shutdown();  // waits for the final drain

  const auto observed = collector.sequence("brief");
  EXPECT_EQ(observed.size(), 32u) << "releases accepted before remove_queue "
                                     "must still reach consumers";
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
}

// --- consumer re-entrancy -------------------------------------------------

TEST(StreamPipeline, ConsumerMaySteerAnotherQueue) {
  // A consumer running on a pool worker issues a control() for a *different*
  // queue — the documented steering re-entrancy. The direct-selection queue
  // accumulates silently until the raw tap triggers a flush.
  StreamPipeline pipeline(2);
  std::atomic<uint64_t> raw_seen{0};
  std::atomic<uint64_t> flushed{0};
  pipeline.subscribe([&](const std::string& queue, const Record&) {
    if (queue == "archive") {
      flushed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (raw_seen.fetch_add(1, std::memory_order_relaxed) + 1 == 100) {
      Json flush = Json::object();
      flush["flush"] = Json(true);
      pipeline.control("archive", flush);
    }
  });
  pipeline.install_queue("raw", std::make_unique<SampleEveryNPolicy>(1));
  pipeline.install_queue("archive", std::make_unique<DirectSelectionPolicy>());
  for (uint64_t i = 0; i < 100; ++i) pipeline.publish(record_at(i));
  pipeline.wait_quiescent();
  pipeline.shutdown();

  EXPECT_EQ(raw_seen.load(), 100u);
  EXPECT_EQ(flushed.load(), 100u) << "flush must release the full backlog";
}

// --- shutdown and lifecycle -----------------------------------------------

TEST(StreamPipeline, ShutdownDrainsChannelsBeforeJoining) {
  // No wait_quiescent: shutdown alone must deliver everything the channels
  // accepted. This is the "clean shutdown drains channels" guarantee.
  StreamPipeline pipeline(1);
  std::atomic<uint64_t> delivered{0};
  pipeline.subscribe([&](const std::string&, const Record&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  pipeline.install_queue("bulk", std::make_unique<ForwardAllPolicy>(),
                         {.capacity = 1024});
  for (uint64_t i = 0; i < 500; ++i) pipeline.publish(record_at(i));
  pipeline.shutdown();

  EXPECT_EQ(delivered.load(), 500u);
  const auto totals = pipeline.totals();
  EXPECT_EQ(totals.delivered, 500u);
  EXPECT_EQ(totals.dropped, 0u);
}

TEST(StreamPipeline, ShutdownIsIdempotentAndDestructorImpliesIt) {
  auto pipeline = std::make_unique<StreamPipeline>(2);
  pipeline->install_queue("q", std::make_unique<ForwardAllPolicy>());
  pipeline->publish(record_at(1));
  pipeline->shutdown();
  pipeline->shutdown();  // second call is a no-op
  EXPECT_THROW(
      pipeline->install_queue("late", std::make_unique<ForwardAllPolicy>()),
      StateError);
  pipeline.reset();  // destructor after explicit shutdown: fine
}

TEST(StreamPipeline, LifecycleErrors) {
  StreamPipeline pipeline(1);
  pipeline.install_queue("q", std::make_unique<ForwardAllPolicy>());
  EXPECT_THROW(pipeline.install_queue("q", std::make_unique<ForwardAllPolicy>()),
               ValidationError);
  EXPECT_THROW(pipeline.remove_queue("ghost"), NotFoundError);
  EXPECT_THROW(pipeline.report("ghost"), NotFoundError);
  EXPECT_THROW(pipeline.subscribe(nullptr), ValidationError);
}

// --- steering installs via the control channel -----------------------------

TEST(StreamPipeline, HandleInstallParsesTransportKeys) {
  StreamPipeline pipeline(1);
  const auto factory = PolicyFactory::with_builtins();
  const Json message = Json::parse(R"({"install": {
    "queue": "tap", "kind": "sample-every", "args": {"stride": 2},
    "capacity": 16, "overflow": "drop-oldest"}})");
  factory.handle_install(pipeline, message);

  ASSERT_TRUE(pipeline.has_queue("tap"));
  EXPECT_EQ(pipeline.report("tap").overflow, Overflow::DropOldest);

  std::atomic<uint64_t> delivered{0};
  pipeline.subscribe([&](const std::string&, const Record&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < 10; ++i) pipeline.publish(record_at(i));
  pipeline.wait_quiescent();
  EXPECT_EQ(delivered.load(), 5u);  // stride 2
}

TEST(StreamPipeline, HandleInstallRejectsUnknownOverflow) {
  StreamPipeline pipeline(1);
  const auto factory = PolicyFactory::with_builtins();
  const Json message = Json::parse(R"({"install": {
    "queue": "t", "kind": "forward-all", "overflow": "newest-wins"}})");
  EXPECT_THROW(factory.handle_install(pipeline, message), ValidationError);
}

TEST(StreamPipeline, HandleInstallParsesBatchChannelAndFormat) {
  StreamPipeline pipeline(1);
  const auto factory = PolicyFactory::with_builtins();
  factory.handle_install(pipeline, Json::parse(R"({"install": {
    "queue": "fast", "kind": "forward-all",
    "batch": 16, "channel": "mpmc", "format": "binary"}})"));
  const auto report = pipeline.report("fast");
  EXPECT_EQ(report.batch, 16u);
  EXPECT_EQ(report.channel, ChannelKind::Mpmc);
  EXPECT_EQ(report.format, WireFormat::Binary);

  // Defaults when the keys are absent: spsc ring, batch 64, self-describing.
  factory.handle_install(pipeline, Json::parse(R"({"install": {
    "queue": "plain", "kind": "forward-all"}})"));
  const auto defaults = pipeline.report("plain");
  EXPECT_EQ(defaults.batch, 64u);
  EXPECT_EQ(defaults.channel, ChannelKind::Spsc);
  EXPECT_EQ(defaults.format, WireFormat::SelfDescribing);
}

TEST(StreamPipeline, HandleInstallRejectsBadTransportValues) {
  StreamPipeline pipeline(1);
  const auto factory = PolicyFactory::with_builtins();
  EXPECT_THROW(factory.handle_install(pipeline, Json::parse(R"({"install": {
    "queue": "a", "kind": "forward-all", "batch": 0}})")),
               ValidationError);
  EXPECT_THROW(factory.handle_install(pipeline, Json::parse(R"({"install": {
    "queue": "b", "kind": "forward-all", "batch": "lots"}})")),
               ValidationError);
  EXPECT_THROW(factory.handle_install(pipeline, Json::parse(R"({"install": {
    "queue": "c", "kind": "forward-all", "channel": "lockfree"}})")),
               ValidationError);
  EXPECT_THROW(factory.handle_install(pipeline, Json::parse(R"({"install": {
    "queue": "d", "kind": "forward-all", "format": "msgpack"}})")),
               ValidationError);
  EXPECT_FALSE(pipeline.has_queue("a"));
  EXPECT_FALSE(pipeline.has_queue("c"));
}

// --- transport options: batch, channel, wire format -------------------------

TEST(StreamPipeline, TransportOptionsSurfaceInReport) {
  StreamPipeline pipeline(1);
  pipeline.install_queue("tuned", std::make_unique<ForwardAllPolicy>(),
                         {.capacity = 32,
                          .overflow = Overflow::DropOldest,
                          .batch = 8,
                          .channel = ChannelKind::Mpmc,
                          .format = WireFormat::Binary});
  const auto report = pipeline.report("tuned");
  EXPECT_EQ(report.overflow, Overflow::DropOldest);
  EXPECT_EQ(report.batch, 8u);
  EXPECT_EQ(report.channel, ChannelKind::Mpmc);
  EXPECT_EQ(report.format, WireFormat::Binary);
  EXPECT_THROW(
      pipeline.install_queue("bad", std::make_unique<ForwardAllPolicy>(),
                             {.batch = 0}),
      ValidationError);
}

TEST(StreamPipeline, EveryTransportComboDeliversEverything) {
  for (ChannelKind kind :
       {ChannelKind::Mutex, ChannelKind::Spsc, ChannelKind::Mpmc}) {
    for (size_t batch : {size_t{1}, size_t{8}, size_t{64}}) {
      StreamPipeline pipeline(2);
      Collector collector;
      pipeline.subscribe(collector.consumer());
      pipeline.install_queue("q", std::make_unique<ForwardAllPolicy>(),
                             {.capacity = 16, .batch = batch, .channel = kind});
      for (uint64_t i = 0; i < 300; ++i) pipeline.publish(record_at(i));
      pipeline.wait_quiescent();
      const auto observed = collector.sequence("q");
      ASSERT_EQ(observed.size(), 300u)
          << channel_kind_name(kind) << " batch=" << batch;
      EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
      EXPECT_EQ(pipeline.report("q").delivered, 300u);
    }
  }
}

TEST(StreamPipeline, PublishBatchMatchesPerRecordPublish) {
  StreamPipeline pipeline(1);
  Collector collector;
  pipeline.subscribe(collector.consumer());
  pipeline.install_queue("q", std::make_unique<SampleEveryNPolicy>(3),
                         {.capacity = 64});
  std::vector<Record> burst;
  for (uint64_t i = 0; i < 90; ++i) burst.push_back(record_at(i));
  pipeline.publish_batch(burst);
  pipeline.wait_quiescent();
  const auto observed = collector.sequence("q");
  ASSERT_EQ(observed.size(), 30u);  // stride 3 over 90
  for (size_t i = 0; i < observed.size(); ++i) {
    EXPECT_EQ(observed[i], i * 3);
  }
  EXPECT_EQ(pipeline.scheduler().stats("q").arrivals, 90u);
}

StreamSchema sequence_schema() {
  StreamSchema schema;
  schema.name = "seq";
  schema.fields = {{"v", "double"}};
  return schema;
}

Record schema_record(uint64_t sequence) {
  Record record = record_at(sequence);
  record.values = {Value{static_cast<double>(sequence)}};
  return record;
}

TEST(StreamPipeline, WireSinkRequiresRegisteredSchema) {
  StreamPipeline pipeline(1);
  pipeline.install_queue("wired", std::make_unique<ForwardAllPolicy>());
  EXPECT_THROW(
      pipeline.set_wire_sink("wired",
                             [](const std::string&, std::vector<uint8_t>) {}),
      StateError);
  EXPECT_EQ(pipeline.schema_of("wired"), nullptr);
  pipeline.register_schema("wired", sequence_schema());
  ASSERT_NE(pipeline.schema_of("wired"), nullptr);
  EXPECT_EQ(pipeline.schema_of("wired")->key(), "seq:v1");
  EXPECT_NO_THROW(pipeline.set_wire_sink(
      "wired", [](const std::string&, std::vector<uint8_t>) {}));
  EXPECT_THROW(pipeline.register_schema("ghost", sequence_schema()),
               NotFoundError);
  EXPECT_THROW(pipeline.schema_of("ghost"), NotFoundError);
}

/// Runs records through a wire-tapped queue and returns the concatenated
/// re-decoded records from every chunk the sink saw.
std::vector<Record> run_wire_tap(WireFormat format, uint64_t count) {
  StreamPipeline pipeline(2);
  pipeline.subscribe([](const std::string&, const Record&) {});
  pipeline.install_queue("wired", std::make_unique<ForwardAllPolicy>(),
                         {.capacity = 32, .batch = 8, .format = format});
  pipeline.register_schema("wired", sequence_schema());
  std::mutex mutex;
  std::vector<std::vector<uint8_t>> chunks;
  pipeline.set_wire_sink("wired",
                         [&](const std::string& queue,
                             std::vector<uint8_t> chunk) {
                           EXPECT_EQ(queue, "wired");
                           std::lock_guard lock(mutex);
                           chunks.push_back(std::move(chunk));
                         });
  for (uint64_t i = 0; i < count; ++i) pipeline.publish(schema_record(i));
  pipeline.wait_quiescent();
  pipeline.shutdown();

  // Each chunk is a self-contained stream: header + frames.
  std::vector<Record> decoded;
  for (const auto& chunk : chunks) {
    const DecodedStream stream =
        format == WireFormat::Binary
            ? decode_frame_stream(chunk, sequence_schema())
            : decode_stream(chunk);
    decoded.insert(decoded.end(), stream.records.begin(),
                   stream.records.end());
  }
  return decoded;
}

TEST(StreamPipeline, WireSinkSeesEveryRecordInOrderBothFormats) {
  for (WireFormat format :
       {WireFormat::SelfDescribing, WireFormat::Binary}) {
    const std::vector<Record> decoded = run_wire_tap(format, 200);
    ASSERT_EQ(decoded.size(), 200u) << wire_format_name(format);
    for (uint64_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i].sequence, i);
      EXPECT_EQ(std::get<double>(decoded[i].values[0]),
                static_cast<double>(i));
    }
  }
}

// --- the instrument source stage -------------------------------------------

TEST(StreamPipeline, InstrumentSourceFeedsAndPunctuates) {
  StreamPipeline pipeline(2);
  Collector collector;
  pipeline.subscribe(collector.consumer());
  pipeline.install_queue("marked", std::make_unique<MarkerPolicy>());

  InstrumentSource::Options options;
  options.punctuate_every = 25;
  InstrumentSource source(
      pipeline,
      [](uint64_t index) -> std::optional<Record> {
        if (index >= 100) return std::nullopt;
        return record_at(index);
      },
      options);
  source.join();
  pipeline.wait_quiescent();

  EXPECT_EQ(source.published(), 100u);
  const auto observed = collector.sequence("marked");
  ASSERT_EQ(observed.size(), 104u);  // 100 records + 4 markers
  // Markers land exactly every 25 records — the source thread's program
  // order is preserved end to end.
  EXPECT_EQ(observed[25], kMarkerBase);
  EXPECT_EQ(observed[51], kMarkerBase + 1);
  EXPECT_EQ(observed[77], kMarkerBase + 2);
  EXPECT_EQ(observed[103], kMarkerBase + 3);
}

TEST(StreamPipeline, TwoSourcesOnePlane) {
  StreamPipeline pipeline(4);
  std::atomic<uint64_t> delivered{0};
  pipeline.subscribe([&](const std::string&, const Record&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  pipeline.install_queue("all", std::make_unique<ForwardAllPolicy>());
  {
    auto generator = [](uint64_t index) -> std::optional<Record> {
      if (index >= 250) return std::nullopt;
      return record_at(index);
    };
    InstrumentSource a(pipeline, generator);
    InstrumentSource b(pipeline, generator);
  }  // joins both
  pipeline.wait_quiescent();
  EXPECT_EQ(delivered.load(), 500u);
}

}  // namespace
}  // namespace ff::stream
