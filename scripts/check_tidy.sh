#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy at the repo root) over the sources
# using the compile database CMake exports into the build tree.
#
#   scripts/check_tidy.sh [build-dir] [source-glob...]
#
# Defaults: build-dir = build/, sources = every .cpp under src/. Exits 0
# with a notice when clang-tidy is not installed so CI images without LLVM
# (like the default toolchain here, gcc-only) pass cleanly — install
# clang-tidy to make this check real. Exits 1 on any finding otherwise.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  echo "check_tidy: ${tidy_bin} not found on PATH — skipping (install" \
       "clang-tidy to enable the C++ lint gate)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "check_tidy: ${build_dir}/compile_commands.json is missing." >&2
  echo "check_tidy: configure first: cmake -B '${build_dir}' -S '${repo_root}'" >&2
  exit 1
fi

sources=("$@")
if [[ ${#sources[@]} -eq 0 ]]; then
  mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
fi

echo "check_tidy: $(${tidy_bin} --version | head -1)"
echo "check_tidy: ${#sources[@]} file(s), database ${build_dir}/compile_commands.json"
"${tidy_bin}" -p "${build_dir}" --quiet "${sources[@]}"
echo "check_tidy: clean"
