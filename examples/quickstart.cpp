// Quickstart: the reusability-gauge abstraction in ~80 lines, plus the
// provenance trace layer in one flag.
//
// Build a two-component workflow, attach gauge profiles (Box I of the
// paper), assess its technical debt for the reuse scenarios you care
// about, and ask the metadata catalog machine-actionable questions.
//
//   ./quickstart
//
// With --trace, run a short tour of every instrumented subsystem (Savanna
// campaign with a retried run, local executor, checkpoint harness, stream
// scheduler, iRF fit on the thread pool, an in-process fairflowd session)
// with tracing enabled and export the collected events:
//
//   ./quickstart --trace out.jsonl [out.trace.json]
//
// out.jsonl is one event per line (the contract of docs/trace_schema.md,
// enforced by the trace_lint ctest); out.trace.json loads directly in
// https://ui.perfetto.dev or chrome://tracing.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/assessment.hpp"
#include "core/metadata_catalog.hpp"

#include "ckpt/harness.hpp"
#include "irf/irf_loop.hpp"
#include "lint/locator.hpp"
#include "lint/rules.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "savanna/campaign_runner.hpp"
#include "savanna/local_executor.hpp"
#include "service/core.hpp"
#include "service/session.hpp"
#include "stream/pipeline.hpp"
#include "stream/scheduler.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/thread_pool.hpp"

using namespace ff::core;

namespace {

/// Exercise every instrumented subsystem once, then export the trace.
int provenance_tour(const std::string& jsonl_path,
                    const std::string& chrome_path) {
  using namespace ff;

  auto& recorder = obs::TraceRecorder::instance();
  recorder.set_ring_capacity(1 << 16);
  recorder.clear();
  obs::set_tracing(true);

  // 1. Savanna campaign with journaled re-submission: the walltime kills
  //    the long runs (full retry lifecycle: submit -> start -> end(killed)
  //    -> retry -> ... -> done), "t6" fails every attempt and exhausts its
  //    retry budget, and the campaign is interrupted after one allocation
  //    and resumed from its crash-consistent journal — so the trace shows
  //    the whole savanna.journal.* family (open, commit, checkpoint,
  //    compact, replay, resume) plus savanna.job.exhausted. Checkpoint +
  //    compaction are enabled so the scale path (docs/scaling.md) is
  //    exercised and traced too.
  {
    std::vector<sim::TaskSpec> tasks;
    for (int i = 0; i < 7; ++i) {
      sim::TaskSpec task;
      task.id = "t" + std::to_string(i);
      task.duration_s = 30 + 10 * i;
      task.feature_index = i;
      tasks.push_back(std::move(task));
    }
    savanna::CampaignRunOptions options;
    options.execution.nodes = 2;
    options.execution.walltime_s = 120;  // forces re-submission
    options.retry.max_attempts = 2;
    options.retry.base_backoff_s = 5;
    options.journal.checkpoint_every = 1;  // checkpoint each allocation
    options.journal.compact_after_checkpoint = true;
    options.execution.fails = [](const sim::TaskSpec& task, int) {
      // Keyed off nothing but the task: deterministic across resume.
      return task.id == "t6";
    };
    TempDir scratch("quickstart-journal");
    const std::string journal_path = scratch.file("journal.jsonl");

    // First leg: one allocation, then stop (standing in for a crash —
    // everything committed to the journal survives). The missing journal
    // is created here, so the trace gets savanna.journal.open + commit.
    {
      savanna::RunTracker tracker;
      sim::Simulation sim;
      savanna::CampaignRunOptions first_leg = options;
      first_leg.max_allocations = 1;
      savanna::resume_campaign(sim, tasks, first_leg, tracker, journal_path,
                               "quickstart");
    }

    // Second leg: replay the journal and finish the campaign.
    savanna::RunTracker tracker;
    sim::Simulation sim;
    savanna::resume_campaign(sim, tasks, options, tracker, journal_path,
                             "quickstart");
  }

  // 2. Local (non-simulated) executor: one task throws.
  {
    std::vector<savanna::LocalTask> tasks;
    tasks.push_back({"paste-0", [] {}});
    tasks.push_back({"paste-1", [] { throw Error("injected failure"); }});
    savanna::run_local(tasks, 2);
  }

  // 3. Checkpoint harness: a short overhead-bounded run.
  {
    ckpt::AppConfig config;
    config.steps = 6;
    config.nodes = 4;
    config.ranks = 16;
    config.bytes_per_step = 1e9;
    config.compute_per_step_s = 10;
    const ckpt::OverheadBoundedPolicy policy(0.10);
    ckpt::run_simulated_app(config, policy, sim::MachineSpec{}, 7);
  }

  // 4. Stream scheduler: install/activate/steer virtual data queues.
  {
    stream::DataScheduler scheduler;
    scheduler.subscribe([](const std::string&, const stream::Record&) {});
    scheduler.install_queue("monitor",
                            std::make_unique<stream::ForwardAllPolicy>());
    scheduler.install_queue(
        "window", std::make_unique<stream::SlidingWindowCountPolicy>(4));
    for (uint64_t i = 0; i < 8; ++i) {
      stream::Record record;
      record.sequence = i;
      record.timestamp = static_cast<double>(i);
      scheduler.publish(record);
    }
    scheduler.control("window", Json::object());
    scheduler.punctuate(Json::object());
    scheduler.set_active("monitor", false);
    const auto factory = stream::PolicyFactory::with_builtins();
    factory.handle_install(scheduler, Json::parse(R"({"install": {
        "queue": "steered", "kind": "sample-every",
        "args": {"stride": 2}}})"));
    scheduler.remove_queue("monitor");
  }

  // 4b. The concurrent data plane: the same virtual queues, but drained by
  //     worker threads through bounded channels (stream.pipeline.* events,
  //     queue-depth counters, and the instrument source stage).
  {
    stream::StreamPipeline pipeline(2);
    pipeline.subscribe([](const std::string&, const stream::Record&) {});
    pipeline.install_queue(
        "live", std::make_unique<stream::ForwardAllPolicy>(),
        {.capacity = 8, .overflow = stream::Overflow::Block,
         .batch = 4, .channel = stream::ChannelKind::Spsc,
         .format = stream::WireFormat::Binary});
    // Wire tap: every drain batch re-marshalled as a binary FFW chunk, the
    // forwarding-component half of Fig. 5 (stream.queue.wire event).
    stream::StreamSchema tour_schema;
    tour_schema.name = "tour";
    pipeline.register_schema("live", std::move(tour_schema));
    pipeline.set_wire_sink("live",
                           [](const std::string&, std::vector<uint8_t>) {});
    stream::InstrumentSource source(
        pipeline, [](uint64_t index) -> std::optional<stream::Record> {
          if (index >= 16) return std::nullopt;
          stream::Record record;
          record.sequence = index;
          record.timestamp = static_cast<double>(index);
          return record;
        });
    source.join();
    pipeline.wait_quiescent();
    pipeline.shutdown();
  }

  // 5. iRF on the work-helping thread pool (queue-depth counters ride
  //    along with the fit spans).
  {
    irf::CensusConfig config;
    config.samples = 80;
    config.features = 6;
    const auto census = irf::make_census_dataset(config, 11);
    irf::IrfLoopParams params;
    params.irf.iterations = 2;
    params.irf.forest.n_trees = 8;
    ThreadPool pool(2);
    irf::run_irf_loop(census.data, params, 3, &pool);
  }

  // 6. The fairflowd campaign service, in-process: a session submits a
  //    small campaign through the dispatcher and the round-robin scheduler
  //    runs it in allocation slices (service.session.open/close,
  //    service.request, service.campaign.submit, service.slice, and
  //    service.campaign.state — docs/service_protocol.md).
  {
    cheetah::AppSpec app;
    app.name = "tour";
    app.executable = "tour_exe";
    app.args_template = "--x {{x}}";
    cheetah::Campaign campaign("service-tour", app);
    cheetah::Sweep sweep("xs");
    sweep.add(cheetah::Parameter::int_range(
        "x", cheetah::ParamLayer::Application, 0, 3));
    cheetah::SweepGroup group("g1");
    group.add(std::move(sweep));
    campaign.add_group(std::move(group));

    TempDir scratch("quickstart-service");
    service::ServiceCore core({.root = scratch.str(), .workers = 1});
    service::Dispatcher dispatcher(core);
    {
      service::Dispatcher::Session session(dispatcher);
      Json submit = Json::object();
      submit["cmd"] = "submit";
      submit["id"] = int64_t{1};
      submit["manifest"] = campaign.to_json();
      session.handle(submit);
      core.drain();
      Json status = Json::object();
      status["cmd"] = "status";
      status["id"] = int64_t{2};
      status["campaign"] = "service-tour";
      session.handle(status);
    }
    core.stop();
  }

  obs::set_tracing(false);
  const auto events = recorder.flush();
  obs::write_jsonl(jsonl_path, events);
  if (!chrome_path.empty()) obs::write_chrome_trace(chrome_path, events);

  size_t wall = 0;
  for (const auto& event : events) {
    if (event.clock == obs::ClockDomain::Wall) ++wall;
  }
  std::printf("provenance tour: %zu events (%zu wall, %zu virtual), "
              "%llu dropped\n",
              events.size(), wall, events.size() - wall,
              static_cast<unsigned long long>(recorder.dropped()));
  std::printf("  jsonl:  %s\n", jsonl_path.c_str());
  if (!chrome_path.empty()) {
    std::printf("  chrome: %s  (load in ui.perfetto.dev)\n",
                chrome_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--trace") == 0) {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: quickstart --trace <out.jsonl> [<out.trace.json>]\n");
      return 2;
    }
    return provenance_tour(argv[2], argc >= 4 ? argv[3] : "");
  }
  bool run_lint = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-lint") == 0) run_lint = false;
  }

  // 1. Describe the workflow as components with ports.
  WorkflowGraph workflow("sensor-pipeline");

  Component ingest("ingest", ComponentKind::Executable);
  ingest.set_description("reads instrument files and normalizes them");
  ingest.add_port(Port{"raw", PortDirection::Input, "", "posix-file",
                       ConsumptionSemantics::ElementWise});
  ingest.add_port(Port{"clean", PortDirection::Output, "csv:readings:v1",
                       "posix-file", ConsumptionSemantics::Unknown});
  ingest.add_config(ConfigVariable{"input_glob", "string", ff::Json("*.dat"),
                                   /*exposed=*/false, "hard-coded today"});
  // Where this component sits on each gauge ladder right now:
  ingest.profile() = make_profile(/*access=*/1, /*schema=*/2, /*semantics=*/1,
                                  /*granularity=*/1, /*customizability=*/1,
                                  /*provenance=*/1);

  Component model_fit("model-fit", ComponentKind::Executable);
  model_fit.add_port(Port{"clean", PortDirection::Input, "csv:readings:v1",
                          "posix-file", ConsumptionSemantics::WholeDataset});
  model_fit.add_port(Port{"model", PortDirection::Output, "", "posix-file",
                          ConsumptionSemantics::Unknown});
  model_fit.profile() = make_profile(2, 3, 1, 2, 2, 1);

  workflow.add_component(std::move(ingest));
  workflow.add_component(std::move(model_fit));
  workflow.connect("ingest", "clean", "model-fit", "clean");

  // 2. Assess against the reuse scenarios you expect to face.
  ReuseContext new_machine;
  new_machine.new_machine = true;
  ReuseContext new_collaborator_data;
  new_collaborator_data.new_dataset = true;
  new_collaborator_data.new_data_format = true;

  const AssessmentReport report =
      assess(workflow, {new_machine, new_collaborator_data});
  std::printf("%s\n", report.render().c_str());

  // 3. The same metadata is machine-actionable through the catalog.
  MetadataCatalog catalog;
  catalog.put_component(workflow.component("ingest"));
  catalog.put_component(workflow.component("model-fit"));
  catalog.put_schema(SchemaDescriptor{
      "readings", 1, "csv", {{"time", "double"}, {"value", "double"}}});

  std::printf("components with a documented format but no typed schema yet:\n");
  for (const auto& id : catalog.query("schema == Format")) {
    std::printf("  %s\n", id.c_str());
  }
  std::printf("safe to regenerate for a new machine? (customizability >= Model)\n");
  const auto regenerable = catalog.query("customizability >= Model");
  std::printf("  %s\n", regenerable.empty() ? "none yet — see upgrade plan above"
                                            : regenerable[0].c_str());

  // 4. Pre-execution static validation: the same FF4xx rules fairflow-lint
  //    applies to catalog artifacts on disk, run in-process against this
  //    workflow. Declared gauge tiers must be backed by actual metadata;
  //    error-severity findings abort before anything would execute.
  if (run_lint) {
    const ff::Json document = catalog.to_json();
    const ff::lint::LintReport lint_report =
        ff::lint::lint_catalog(document,
                               ff::lint::JsonLocator::scan(document.pretty()),
                               "<quickstart-catalog>");
    std::printf("\nstatic validation (fairflow-lint; --no-lint skips):\n%s",
                lint_report.render_text().c_str());
    if (lint_report.has_errors()) return 1;
  }
  return 0;
}
