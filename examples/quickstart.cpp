// Quickstart: the reusability-gauge abstraction in ~80 lines.
//
// Build a two-component workflow, attach gauge profiles (Box I of the
// paper), assess its technical debt for the reuse scenarios you care
// about, and ask the metadata catalog machine-actionable questions.
//
//   ./quickstart

#include <cstdio>

#include "core/assessment.hpp"
#include "core/metadata_catalog.hpp"

using namespace ff::core;

int main() {
  // 1. Describe the workflow as components with ports.
  WorkflowGraph workflow("sensor-pipeline");

  Component ingest("ingest", ComponentKind::Executable);
  ingest.set_description("reads instrument files and normalizes them");
  ingest.add_port(Port{"raw", PortDirection::Input, "", "posix-file",
                       ConsumptionSemantics::ElementWise});
  ingest.add_port(Port{"clean", PortDirection::Output, "csv:readings:v1",
                       "posix-file", ConsumptionSemantics::Unknown});
  ingest.add_config(ConfigVariable{"input_glob", "string", ff::Json("*.dat"),
                                   /*exposed=*/false, "hard-coded today"});
  // Where this component sits on each gauge ladder right now:
  ingest.profile() = make_profile(/*access=*/1, /*schema=*/2, /*semantics=*/1,
                                  /*granularity=*/1, /*customizability=*/1,
                                  /*provenance=*/1);

  Component model_fit("model-fit", ComponentKind::Executable);
  model_fit.add_port(Port{"clean", PortDirection::Input, "csv:readings:v1",
                          "posix-file", ConsumptionSemantics::WholeDataset});
  model_fit.add_port(Port{"model", PortDirection::Output, "", "posix-file",
                          ConsumptionSemantics::Unknown});
  model_fit.profile() = make_profile(2, 3, 1, 2, 2, 1);

  workflow.add_component(std::move(ingest));
  workflow.add_component(std::move(model_fit));
  workflow.connect("ingest", "clean", "model-fit", "clean");

  // 2. Assess against the reuse scenarios you expect to face.
  ReuseContext new_machine;
  new_machine.new_machine = true;
  ReuseContext new_collaborator_data;
  new_collaborator_data.new_dataset = true;
  new_collaborator_data.new_data_format = true;

  const AssessmentReport report =
      assess(workflow, {new_machine, new_collaborator_data});
  std::printf("%s\n", report.render().c_str());

  // 3. The same metadata is machine-actionable through the catalog.
  MetadataCatalog catalog;
  catalog.put_component(workflow.component("ingest"));
  catalog.put_component(workflow.component("model-fit"));
  catalog.put_schema(SchemaDescriptor{
      "readings", 1, "csv", {{"time", "double"}, {"value", "double"}}});

  std::printf("components with a documented format but no typed schema yet:\n");
  for (const auto& id : catalog.query("schema == Format")) {
    std::printf("  %s\n", id.c_str());
  }
  std::printf("safe to regenerate for a new machine? (customizability >= Model)\n");
  const auto regenerable = catalog.query("customizability >= Model");
  std::printf("  %s\n", regenerable.empty() ? "none yet — see upgrade plan above"
                                            : regenerable[0].c_str());
  return 0;
}
