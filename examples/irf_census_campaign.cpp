// iRF-LOOP census campaign (paper Section V-D), both halves:
//
//  (a) the real machine learning: a small census-like dataset, one iRF
//      model per feature, the n×n predictive-network adjacency, and the
//      recovered edges vs the planted ground truth;
//  (b) the workflow layer: the same ensemble composed as a Cheetah
//      campaign, submitted to the fairflowd service core in-process — the
//      same lint preflight, endpoint creation, journaled pilot execution
//      in allocation slices, and state write-back a daemon client gets
//      over the socket (docs/service_protocol.md).
//
//   ./irf_census_campaign [features] [samples]

#include <cstdio>
#include <cstdlib>

#include "cheetah/endpoint.hpp"
#include "cluster/workload.hpp"
#include "irf/irf_loop.hpp"
#include "service/core.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

using namespace ff;

int main(int argc, char** argv) {
  irf::CensusConfig census_config;
  census_config.features =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 12;
  census_config.samples =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 250;
  census_config.planted_fraction = 0.25;

  std::printf("=== (a) the science: iRF-LOOP on census-like data ===\n");
  const irf::CensusDataset census = irf::make_census_dataset(census_config, 7);
  std::printf("dataset: %zu counties x %zu features, %zu planted edges\n",
              census.data.samples(), census.data.features(),
              census.true_edges.size());

  irf::IrfLoopParams loop_params;
  loop_params.irf.iterations = 3;
  loop_params.irf.forest.n_trees = 30;
  ThreadPool pool(4);
  const irf::IrfLoopResult network =
      irf::run_irf_loop(census.data, loop_params, 99, &pool);

  std::printf("top predicted edges:\n");
  for (const auto& edge : network.top_edges(6)) {
    std::printf("  %-12s -> %-12s  w=%.3f\n",
                network.feature_names[edge.from].c_str(),
                network.feature_names[edge.to].c_str(), edge.weight);
  }
  std::printf("planted-edge recovery: %.0f%%\n\n",
              irf::edge_recovery(network, census.true_edges) * 100);

  std::printf("=== (b) the workflow: Cheetah campaign via fairflowd ===\n");
  cheetah::AppSpec app;
  app.name = "irf_fit";
  app.executable = "irf_fit";
  app.args_template = "--feature {{feature}} --trees 500";
  cheetah::Campaign campaign("irf-loop-demo", app);
  campaign.set_machine("summit")
      .set_objective(cheetah::Objective::MaximizeThroughput);
  cheetah::Sweep sweep("features");
  sweep.add(cheetah::Parameter::int_range(
      "feature", cheetah::ParamLayer::Application, 0,
      static_cast<int64_t>(census_config.features) - 1));
  cheetah::SweepGroup group("loop");
  group.add(std::move(sweep)).set_nodes(4).set_walltime_s(1200);
  campaign.add_group(std::move(group));

  // A thin in-process client of the service core: the exact pipeline a
  // `fairflow-ctl submit` triggers in the daemon — lint preflight (error
  // findings would refuse the submission before any directory exists),
  // endpoint + journal creation, pilot execution granted one allocation
  // slice at a time by the round-robin scheduler, and the terminal state
  // write-back. Per-feature run times are skewed (lognormal, seed 5).
  TempDir root("irf-campaign");
  service::ServiceCore core({.root = root.str(), .workers = 1});
  service::CampaignConfig config;
  config.manifest = campaign.to_json();
  config.group = "loop";
  config.durations.median_s = 300;
  config.durations.sigma = 0.5;
  const std::string name = core.submit(config, "example");
  std::printf("campaign endpoint: %s (%zu runs)\n",
              core.info(name).directory.c_str(), campaign.total_runs());

  core.drain();
  core.stop();

  const service::CampaignInfo info = core.info(name);
  std::printf("executed in %zu allocation slice(s): state %s, %zu done, "
              "%zu killed/pending\n",
              info.allocations, info.state.c_str(), info.counts.done,
              info.counts.killed + info.counts.never_started);
  std::printf("endpoint status file: %s/.campaign/status.json\n",
              info.directory.c_str());
  std::printf("journal:              %s/.campaign/journal.jsonl\n",
              info.directory.c_str());
  return 0;
}
