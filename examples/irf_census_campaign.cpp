// iRF-LOOP census campaign (paper Section V-D), both halves:
//
//  (a) the real machine learning: a small census-like dataset, one iRF
//      model per feature, the n×n predictive-network adjacency, and the
//      recovered edges vs the planted ground truth;
//  (b) the workflow layer: the same ensemble composed as a Cheetah
//      campaign, materialized as an on-disk endpoint, executed on a
//      simulated 20-node allocation by the Savanna pilot with
//      re-submission, states written back to the endpoint.
//
//   ./irf_census_campaign [features] [samples]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "cheetah/endpoint.hpp"
#include "cluster/workload.hpp"
#include "irf/irf_loop.hpp"
#include "savanna/campaign_runner.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

using namespace ff;

int main(int argc, char** argv) {
  irf::CensusConfig census_config;
  census_config.features =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 12;
  census_config.samples =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 250;
  census_config.planted_fraction = 0.25;

  std::printf("=== (a) the science: iRF-LOOP on census-like data ===\n");
  const irf::CensusDataset census = irf::make_census_dataset(census_config, 7);
  std::printf("dataset: %zu counties x %zu features, %zu planted edges\n",
              census.data.samples(), census.data.features(),
              census.true_edges.size());

  irf::IrfLoopParams loop_params;
  loop_params.irf.iterations = 3;
  loop_params.irf.forest.n_trees = 30;
  ThreadPool pool(4);
  const irf::IrfLoopResult network =
      irf::run_irf_loop(census.data, loop_params, 99, &pool);

  std::printf("top predicted edges:\n");
  for (const auto& edge : network.top_edges(6)) {
    std::printf("  %-12s -> %-12s  w=%.3f\n",
                network.feature_names[edge.from].c_str(),
                network.feature_names[edge.to].c_str(), edge.weight);
  }
  std::printf("planted-edge recovery: %.0f%%\n\n",
              irf::edge_recovery(network, census.true_edges) * 100);

  std::printf("=== (b) the workflow: Cheetah campaign + Savanna pilot ===\n");
  cheetah::AppSpec app;
  app.name = "irf_fit";
  app.executable = "irf_fit";
  app.args_template = "--feature {{feature}} --trees 500";
  cheetah::Campaign campaign("irf-loop-demo", app);
  campaign.set_machine("summit")
      .set_objective(cheetah::Objective::MaximizeThroughput);
  cheetah::Sweep sweep("features");
  sweep.add(cheetah::Parameter::int_range(
      "feature", cheetah::ParamLayer::Application, 0,
      static_cast<int64_t>(census_config.features) - 1));
  cheetah::SweepGroup group("loop");
  group.add(std::move(sweep)).set_nodes(4).set_walltime_s(1200);
  campaign.add_group(std::move(group));

  TempDir root("irf-campaign");
  cheetah::CampaignEndpoint endpoint =
      cheetah::CampaignEndpoint::create(campaign, root.str());
  std::printf("campaign endpoint: %s (%zu runs)\n", endpoint.directory().c_str(),
              campaign.total_runs());

  // Per-feature run times are skewed; simulate execution on 4 nodes.
  sim::DurationModel durations;
  durations.median_s = 300;
  durations.sigma = 0.5;
  std::vector<sim::TaskSpec> tasks;
  for (auto& run : campaign.group("loop").generate()) {
    sim::TaskSpec task;
    task.id = run.id;
    tasks.push_back(std::move(task));
  }
  {
    Rng rng(5);
    for (auto& task : tasks) task.duration_s = durations.sample(rng);
  }

  savanna::CampaignRunOptions options;
  options.backend = savanna::Backend::Pilot;
  options.execution.nodes = campaign.group("loop").nodes();
  options.execution.walltime_s = campaign.group("loop").walltime_s();
  sim::Simulation sim;
  savanna::RunTracker tracker;
  const auto result =
      savanna::run_with_resubmission(sim, tasks, options, &tracker);

  // Write execution results back into the campaign endpoint: everything
  // the tracker saw complete is Done, the rest needs a re-submission.
  const auto rerun = tracker.needing_rerun();
  const std::set<std::string> incomplete(rerun.begin(), rerun.end());
  for (const auto& task : tasks) {
    endpoint.mark(task.id, incomplete.count(task.id) ? cheetah::RunState::Killed
                                                     : cheetah::RunState::Done);
  }
  endpoint.save();

  const auto status = endpoint.status();
  std::printf("executed in %zu allocation(s): %zu done, %zu killed/pending, "
              "utilization %.0f%%, virtual makespan %s\n",
              result.allocations_used, status.done,
              status.killed + status.pending, result.utilization() * 100,
              format_duration(sim.now()).c_str());
  std::printf("endpoint status file: %s/.campaign/status.json\n",
              endpoint.directory().c_str());
  return 0;
}
