// A complete codesign study (paper Section II-C): declare an objective,
// sweep parameters across application/middleware/system layers — including
// *derived* parameters capturing inter-variable relationships — execute the
// campaign on the simulated cluster (with failures), and query the
// ResultCatalog for the winning configuration and per-parameter impact.
//
//   ./codesign_study

#include <cstdio>
#include <map>
#include <memory>

#include "cheetah/results.hpp"
#include "cluster/workload.hpp"
#include "savanna/campaign_runner.hpp"
#include "savanna/failure_injection.hpp"
#include "util/strings.hpp"

using namespace ff;

int main() {
  // 1. Compose: nodes is swept; ranks is *derived* from nodes (6 GPUs per
  // Summit node, say) — the relationship lives in the model, not in a
  // README ("ParameterRelations" tier of the Customizability gauge).
  cheetah::AppSpec app;
  app.name = "coupled-sim";
  app.executable = "coupled_sim";
  app.args_template = "-n {{ranks}} --agg {{aggregator}}";
  cheetah::Campaign campaign("io-codesign", app);
  campaign.set_machine("summit")
      .set_objective(cheetah::Objective::MinimizeRuntime);

  cheetah::Sweep sweep("grid");
  sweep.add(cheetah::Parameter::values("nodes", cheetah::ParamLayer::System,
                                       {Json(4), Json(8), Json(16)}))
      .add(cheetah::Parameter::values("aggregator", cheetah::ParamLayer::Middleware,
                                      {Json("sst"), Json("bp4")}))
      .add_derived("ranks", "{{nodes}}0");  // 10 ranks per node, textual relation
  cheetah::SweepGroup group("grid-group");
  group.add(std::move(sweep)).set_nodes(16).set_walltime_s(7200);
  campaign.add_group(std::move(group));

  std::printf("campaign '%s': %zu configurations\n", campaign.name().c_str(),
              campaign.total_runs());
  for (const auto& run : campaign.group("grid-group").generate()) {
    std::printf("  %-28s %s\n", run.id.c_str(), campaign.command_for(run).c_str());
  }

  // 2. "Run" each configuration: runtime from a simple strong-scaling +
  // aggregation model with noise; record measurements into the catalog.
  cheetah::ResultCatalog catalog;
  Rng rng(17);
  for (const auto& run : campaign.group("grid-group").generate()) {
    const double nodes = static_cast<double>(run.param("nodes").as_int());
    const bool sst = run.param("aggregator").as_string() == "sst";
    const double compute = 4000.0 / nodes;              // strong scaling
    const double io = (sst ? 120.0 : 300.0) + 4.0 * nodes;  // staging vs file
    const double runtime = (compute + io) * (1.0 + 0.05 * rng.uniform());
    catalog.record(run, {{"runtime_s", runtime},
                         {"storage_gb", sst ? 40.0 : 15.0},
                         {"node_hours", runtime * nodes / 3600.0}});
  }

  // 3. Query the catalog against the declared objective.
  const auto best = catalog.best("runtime_s", campaign.objective());
  std::printf("\nbest for %s: nodes=%lld aggregator=%s (%s)\n",
              std::string(cheetah::objective_name(campaign.objective())).c_str(),
              static_cast<long long>(best->param("nodes").as_int()),
              best->param("aggregator").as_string().c_str(),
              format_duration(catalog.metrics(best->id).at("runtime_s")).c_str());

  std::printf("\nparameter impact (effect range on each metric):\n");
  for (const char* metric : {"runtime_s", "storage_gb", "node_hours"}) {
    std::printf("  %-12s:", metric);
    for (const auto& [parameter, range] : catalog.rank_parameters(metric)) {
      if (parameter == "ranks") continue;  // derived: mirrors nodes
      std::printf("  %s=%.1f", parameter.c_str(), range);
    }
    std::printf("\n");
  }

  // 4. The same ensemble executed on the simulated machine, with failures
  // injected from the machine's MTTF — Savanna retries what breaks.
  sim::MachineSpec machine = sim::summit();
  machine.node_mttf_hours = 0.25;  // harsh, to make retries visible
  std::vector<sim::TaskSpec> tasks;
  for (const auto& run : campaign.group("grid-group").generate()) {
    sim::TaskSpec task;
    task.id = run.id;
    task.duration_s = catalog.metrics(run.id).at("runtime_s");
    tasks.push_back(std::move(task));
  }
  savanna::CampaignRunOptions options;
  options.execution.nodes = 3;
  // First attempts roll against the machine's failure process; retries run
  // on a repaired node and succeed.
  auto injector = savanna::make_failure_injector(machine, 23);
  auto attempts = std::make_shared<std::map<std::string, int>>();
  options.execution.fails = [injector, attempts](const sim::TaskSpec& task,
                                                 int node) {
    if ((*attempts)[task.id]++ > 0) return false;
    return injector(task, node);
  };
  sim::Simulation sim;
  savanna::RunTracker tracker;
  const auto result =
      savanna::run_with_resubmission(sim, tasks, options, &tracker);
  size_t retried = 0;
  for (const auto& task : tasks) {
    if (tracker.attempts(task.id) > 1) ++retried;
  }
  std::printf("\nexecution: %zu/%zu configurations done in %zu allocation(s); "
              "%zu needed retries after injected node failures\n",
              result.completed_runs, tasks.size(), result.allocations_used,
              retried);
  return 0;
}
