// The Fig. 5 synthetic workflow, runnable: instrument -> generated
// communication -> data scheduler with virtual queues -> consumers, with a
// remote-steering control channel that installs a selection policy the
// workflow did not know at code-generation time.
//
//   ./streaming_steering

#include <cstdio>

#include "core/workflow_graph.hpp"
#include "stream/codegen.hpp"
#include "stream/marshal.hpp"
#include "stream/scheduler.hpp"

using namespace ff;

int main() {
  // The schema the communication components are generated from.
  stream::StreamSchema schema;
  schema.name = "beamline";
  schema.version = 1;
  schema.fields = {{"shot", "int"}, {"intensity", "double"}};

  std::printf("1. generating communication components for '%s'\n",
              schema.key().c_str());
  const auto artifacts = stream::generate_comm_code(schema);
  for (const auto& artifact : artifacts) {
    std::printf("   %s\n", artifact.path.c_str());
  }

  // The same workflow expressed in the core graph model — the repeated
  // collection/selection/forwarding subgraph is detectable.
  core::WorkflowGraph graph("fig5");
  core::Component instrument("instrument", core::ComponentKind::Executable);
  instrument.add_port(core::Port{"out", core::PortDirection::Output,
                                 schema.key(), "channel",
                                 core::ConsumptionSemantics::Unknown});
  core::Component scheduler_component("scheduler",
                                      core::ComponentKind::InternalService);
  scheduler_component.add_port(core::Port{"in", core::PortDirection::Input,
                                          schema.key(), "channel",
                                          core::ConsumptionSemantics::ElementWise});
  scheduler_component.add_port(core::Port{"out", core::PortDirection::Output,
                                          schema.key(), "channel",
                                          core::ConsumptionSemantics::Unknown});
  core::Component analysis("analysis", core::ComponentKind::Executable);
  analysis.add_port(core::Port{"in", core::PortDirection::Input, schema.key(),
                               "channel",
                               core::ConsumptionSemantics::Windowed});
  core::Component archiver("archiver", core::ComponentKind::Executable);
  archiver.add_port(core::Port{"in", core::PortDirection::Input, schema.key(),
                               "channel",
                               core::ConsumptionSemantics::ElementWise});
  graph.add_component(std::move(instrument));
  graph.add_component(std::move(scheduler_component));
  graph.add_component(std::move(analysis));
  graph.add_component(std::move(archiver));
  graph.connect("instrument", "out", "scheduler", "in");
  graph.connect("scheduler", "out", "analysis", "in");
  graph.connect("scheduler", "out", "archiver", "in");
  const auto matches =
      graph.find_pattern(core::collection_selection_forwarding_pattern());
  std::printf("2. collection/selection/forwarding pattern found %zu time(s)\n",
              matches.size());

  // 3. Run it: marshal records through the wire format, publish through
  // the scheduler, steer at runtime.
  stream::DataScheduler scheduler;
  size_t archived = 0;
  std::vector<uint64_t> analyzed;
  std::vector<uint64_t> steered;
  scheduler.subscribe([&](const std::string& queue, const stream::Record& record) {
    if (queue == "archive") ++archived;
    if (queue == "analysis-window") analyzed.push_back(record.sequence);
    if (queue == "steering") steered.push_back(record.sequence);
  });
  scheduler.install_queue("archive", std::make_unique<stream::ForwardAllPolicy>());
  scheduler.install_queue("analysis-window",
                          std::make_unique<stream::SlidingWindowCountPolicy>(4));

  // The instrument produces marshalled bytes; the (generated) sink decodes
  // and publishes — here inlined, exactly what the generated code does.
  stream::Encoder encoder(schema);
  for (uint64_t shot = 0; shot < 40; ++shot) {
    stream::Record record;
    record.sequence = shot;
    record.timestamp = 0.1 * static_cast<double>(shot);
    record.values = {stream::Value{static_cast<int64_t>(shot)},
                     stream::Value{100.0 + static_cast<double>(shot % 7)}};
    encoder.append(record);
  }
  std::printf("3. instrument emitted 40 shots (%zu bytes on the wire)\n",
              encoder.bytes().size());

  size_t published = 0;
  for (const auto& record : stream::decode_stream(encoder.bytes()).records) {
    scheduler.publish(record);
    ++published;
    if (published == 20) {
      // Mid-stream, a steering process installs a brand-new virtual queue.
      const stream::PolicyFactory factory = stream::PolicyFactory::with_builtins();
      factory.handle_install(scheduler, Json::parse(R"({
        "install": {"queue": "steering", "kind": "direct-selection"}})"));
      std::printf("4. steering queue installed after shot 20 (policy unknown "
                  "at generation time)\n");
    }
    if (published % 10 == 0) {
      scheduler.punctuate(Json::object());  // window boundaries
    }
  }
  // The steering client picks exactly the shots it wants.
  Json select = Json::object();
  select["select"] = Json::array({Json(25), Json(33)});
  scheduler.control("steering", select);

  std::printf("5. results: archive=%zu records, analysis saw %zu window "
              "snapshots, steering pulled shots",
              archived, analyzed.size());
  for (uint64_t shot : steered) {
    std::printf(" %llu", static_cast<unsigned long long>(shot));
  }
  std::printf("\n");
  return (archived == 40 && steered.size() == 2) ? 0 : 1;
}
