// The Fig. 5 synthetic workflow, runnable: instrument -> generated
// communication -> concurrent data plane (virtual queues draining through
// bounded channels into worker threads) -> consumers, with a
// remote-steering control channel that installs a selection policy the
// workflow did not know at code-generation time.
//
//   ./streaming_steering

#include <cstdio>

#include "core/workflow_graph.hpp"
#include "stream/codegen.hpp"
#include "stream/marshal.hpp"
#include "stream/pipeline.hpp"

using namespace ff;

int main() {
  // The schema the communication components are generated from.
  stream::StreamSchema schema;
  schema.name = "beamline";
  schema.version = 1;
  schema.fields = {{"shot", "int"}, {"intensity", "double"}};

  std::printf("1. generating communication components for '%s'\n",
              schema.key().c_str());
  const auto artifacts = stream::generate_comm_code(schema);
  for (const auto& artifact : artifacts) {
    std::printf("   %s\n", artifact.path.c_str());
  }

  // The same workflow expressed in the core graph model — the repeated
  // collection/selection/forwarding subgraph is detectable.
  core::WorkflowGraph graph("fig5");
  core::Component instrument("instrument", core::ComponentKind::Executable);
  instrument.add_port(core::Port{"out", core::PortDirection::Output,
                                 schema.key(), "channel",
                                 core::ConsumptionSemantics::Unknown});
  core::Component scheduler_component("scheduler",
                                      core::ComponentKind::InternalService);
  scheduler_component.add_port(core::Port{"in", core::PortDirection::Input,
                                          schema.key(), "channel",
                                          core::ConsumptionSemantics::ElementWise});
  scheduler_component.add_port(core::Port{"out", core::PortDirection::Output,
                                          schema.key(), "channel",
                                          core::ConsumptionSemantics::Unknown});
  core::Component analysis("analysis", core::ComponentKind::Executable);
  analysis.add_port(core::Port{"in", core::PortDirection::Input, schema.key(),
                               "channel",
                               core::ConsumptionSemantics::Windowed});
  core::Component archiver("archiver", core::ComponentKind::Executable);
  archiver.add_port(core::Port{"in", core::PortDirection::Input, schema.key(),
                               "channel",
                               core::ConsumptionSemantics::ElementWise});
  graph.add_component(std::move(instrument));
  graph.add_component(std::move(scheduler_component));
  graph.add_component(std::move(analysis));
  graph.add_component(std::move(archiver));
  graph.connect("instrument", "out", "scheduler", "in");
  graph.connect("scheduler", "out", "analysis", "in");
  graph.connect("scheduler", "out", "archiver", "in");
  const auto matches =
      graph.find_pattern(core::collection_selection_forwarding_pattern());
  std::printf("2. collection/selection/forwarding pattern found %zu time(s)\n",
              matches.size());

  // 3. Run it on the concurrent plane: marshal records through the wire
  // format, feed them from an instrument source thread, drain each virtual
  // queue through its own bounded channel into pool workers, steer at
  // runtime. Consumers run on worker threads, so the tallies take a lock.
  stream::StreamPipeline pipeline(/*workers=*/2);
  std::mutex tally_mutex;
  size_t archived = 0;
  std::vector<uint64_t> analyzed;
  std::vector<uint64_t> steered;
  pipeline.subscribe([&](const std::string& queue, const stream::Record& record) {
    std::lock_guard lock(tally_mutex);
    if (queue == "archive") ++archived;
    if (queue == "analysis-window") analyzed.push_back(record.sequence);
    if (queue == "steering") steered.push_back(record.sequence);
  });
  // The archive must be lossless: bounded channel with blocking
  // backpressure. The analysis window tap prefers freshness: drop-oldest.
  pipeline.install_queue("archive", std::make_unique<stream::ForwardAllPolicy>(),
                         {.capacity = 16, .overflow = stream::Overflow::Block});
  pipeline.install_queue("analysis-window",
                         std::make_unique<stream::SlidingWindowCountPolicy>(4),
                         {.capacity = 8, .overflow = stream::Overflow::DropOldest});

  // The instrument produces marshalled bytes; the (generated) sink decodes
  // and publishes — here inlined, exactly what the generated code does.
  stream::Encoder encoder(schema);
  for (uint64_t shot = 0; shot < 40; ++shot) {
    stream::Record record;
    record.sequence = shot;
    record.timestamp = 0.1 * static_cast<double>(shot);
    record.values = {stream::Value{static_cast<int64_t>(shot)},
                     stream::Value{100.0 + static_cast<double>(shot % 7)}};
    encoder.append(record);
  }
  std::printf("3. instrument emitted 40 shots (%zu bytes on the wire)\n",
              encoder.bytes().size());

  const auto wire = stream::decode_stream(encoder.bytes());
  stream::InstrumentSource source(
      pipeline, [&](uint64_t index) -> std::optional<stream::Record> {
        if (index >= wire.records.size()) return std::nullopt;
        if (index == 20) {
          // Mid-stream, a steering process installs a brand-new virtual
          // queue — landing directly on the concurrent plane, with its own
          // channel capacity and overflow policy.
          const auto factory = stream::PolicyFactory::with_builtins();
          factory.handle_install(pipeline, Json::parse(R"({
            "install": {"queue": "steering", "kind": "direct-selection",
                        "capacity": 32, "overflow": "block"}})"));
          std::printf("4. steering queue installed after shot 20 (policy "
                      "unknown at generation time)\n");
        }
        if (index > 0 && index % 10 == 0) {
          pipeline.punctuate(Json::object());  // window boundaries
        }
        return wire.records[index];
      });
  source.join();
  // The steering client picks exactly the shots it wants.
  Json select = Json::object();
  select["select"] = Json::array({Json(25), Json(33)});
  pipeline.control("steering", select);
  pipeline.wait_quiescent();
  pipeline.shutdown();

  std::printf("5. results: archive=%zu records, analysis saw %zu window "
              "snapshots, steering pulled shots",
              archived, analyzed.size());
  for (uint64_t shot : steered) {
    std::printf(" %llu", static_cast<unsigned long long>(shot));
  }
  std::printf("\n");
  return (archived == 40 && steered.size() == 2) ? 0 : 1;
}
