// GWAS pipeline end-to-end on real files (paper Section V-A):
//
//   synthesize genotypes -> shard to disk -> model-driven generation of the
//   two-phase paste workflow -> execute the paste plan with the local pilot
//   -> association scan on the merged matrix -> check the causal SNPs rank
//   at the top.
//
//   ./gwas_pipeline [snps] [samples] [shards]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "gwas/genotype.hpp"
#include "gwas/workflow.hpp"
#include "util/fs.hpp"

using namespace ff;

int main(int argc, char** argv) {
  gwas::GwasConfig config;
  config.snps = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 400;
  config.samples = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 150;
  const size_t shards = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 20;
  config.causal_snps = 4;
  config.effect_size = 1.0;

  std::printf("1. synthesizing %zu samples x %zu SNPs (%zu causal)\n",
              config.samples, config.snps, config.causal_snps);
  const gwas::GwasData data = gwas::make_gwas_data(config, 2021);

  TempDir workdir("gwas-pipeline");
  std::printf("2. sharding genotypes into %zu files under %s\n", shards,
              workdir.str().c_str());
  const auto shard_paths =
      gwas::write_genotype_shards(data.genotypes, workdir.str(), shards);

  // Model-driven generation: the model JSON is the single point of user
  // interaction; everything else is derived.
  const size_t fan_in = 6;
  std::printf("3. generating the paste workflow from a Skel model (fan_in=%zu)\n",
              fan_in);
  const Json model_json = gwas::make_paste_model(workdir.str(), shard_paths.size(),
                                                 fan_in, "BIF101", "0:30", 1);
  const skel::Model model(model_json, gwas::paste_model_schema());
  const auto artifacts = gwas::make_paste_generator().generate(model);
  skel::Generator::write_all(artifacts, workdir.file("generated"));
  std::printf("   wrote %zu artifacts under %s/generated\n", artifacts.size(),
              workdir.str().c_str());

  std::printf("4. executing the two-phase paste plan (parallel sub-pastes)\n");
  const gwas::PastePlan plan =
      gwas::plan_two_phase_paste(shard_paths.size(), fan_in);
  const std::string merged_path = gwas::execute_paste_plan(
      plan, shard_paths, workdir.str(), workdir.file("merged.tsv"),
      /*workers=*/4);
  CsvOptions tsv;
  tsv.separator = '\t';
  const Table merged = read_csv_file(merged_path, tsv);
  std::printf("   merged matrix: %zu x %zu (plan had %zu sub-pastes%s)\n",
              merged.rows(), merged.cols(), plan.groups.size(),
              plan.needs_final_merge ? " + final merge" : "");

  std::printf("5. association scan\n");
  const auto hits = gwas::association_scan(merged, data.phenotypes);
  const std::set<size_t> causal(data.causal.begin(), data.causal.end());
  std::printf("   %-12s %-8s %-8s %s\n", "snp", "r2", "slope", "truth");
  size_t causal_in_top = 0;
  for (size_t i = 0; i < 8 && i < hits.size(); ++i) {
    const bool is_causal = causal.count(hits[i].index) > 0;
    causal_in_top += is_causal ? 1 : 0;
    std::printf("   %-12s %-8.3f %-8.3f %s\n", hits[i].snp.c_str(), hits[i].r2,
                hits[i].slope, is_causal ? "CAUSAL" : "");
  }
  std::printf("\n%zu/%zu causal SNPs in the top 8 hits\n", causal_in_top,
              config.causal_snps);
  return causal_in_top >= config.causal_snps / 2 ? 0 : 1;
}
