// Checkpoint policies as reusable workflow components (paper Section V-B).
//
// Part 1 runs the REAL Gray–Scott reaction-diffusion kernel, checkpoints
// it mid-flight, "crashes", restores from the blob, and shows the resumed
// trajectory is bit-identical.
//
// Part 2 compares checkpoint policies on the simulated Summit-scale run
// (4096 ranks / 128 nodes, 1 TB per step): the traditional fixed-interval
// policy against the intent-level overhead-bounded policy and the paper's
// composite refinement.
//
//   ./checkpoint_policies

#include <cstdio>
#include <memory>

#include "ckpt/calibrate.hpp"
#include "ckpt/gray_scott.hpp"
#include "ckpt/harness.hpp"
#include "util/strings.hpp"

using namespace ff;

int main() {
  std::printf("=== part 1: real reaction-diffusion checkpoint/restart ===\n");
  ckpt::GrayScott::Params params;
  params.width = 96;
  params.height = 96;
  ckpt::GrayScott app(params, 42);
  app.steps(150);
  std::printf("ran 150 steps, v-mass %.3f; writing checkpoint (%s)\n",
              app.v_mass(), format_bytes(app.checkpoint_bytes()).c_str());
  const std::vector<uint8_t> blob = app.checkpoint();

  app.steps(100);  // the "lost" work after the crash point
  const double truth = app.v_mass();

  ckpt::GrayScott restored = ckpt::GrayScott::restore(blob);
  std::printf("restored at step %d; replaying 100 steps\n",
              restored.current_step());
  restored.steps(100);
  std::printf("v-mass after replay: %.6f vs %.6f — %s\n", restored.v_mass(),
              truth, restored.v_mass() == truth ? "bit-identical" : "MISMATCH");

  std::printf("\n=== part 2: policy comparison at Summit scale (simulated) ===\n");
  // Calibrate the simulated app's step-time variability from the REAL
  // kernel just measured, then scale to the paper's setup.
  ckpt::GrayScott probe(params, 3);
  const ckpt::KernelCalibration calibration =
      ckpt::calibrate_gray_scott(probe, 20);
  std::printf("calibrated from real kernel: %.2f ms/step, %.1f%% variability\n",
              calibration.mean_step_s * 1e3, calibration.variability * 100);
  const ckpt::AppConfig config = ckpt::scaled_app_config(
      calibration, /*target_step_s=*/120, /*steps=*/50, /*nodes=*/128,
      /*ranks=*/4096, /*bytes_per_step=*/1e12);
  const sim::MachineSpec machine = sim::summit();

  const auto overhead = std::make_shared<ckpt::OverheadBoundedPolicy>(0.10);
  const auto min_frequency =
      std::make_shared<ckpt::MinimumFrequencyPolicy>(1800.0);
  const auto forced = std::make_shared<ckpt::ForcedOnHighCostPolicy>(45.0, 3.0);
  const ckpt::AnyPolicy composite({overhead, min_frequency, forced});
  const ckpt::FixedIntervalPolicy every10(10);
  const ckpt::FixedIntervalPolicy every2(2);

  std::printf("%-42s %-7s %-10s %-10s %-12s\n", "policy", "ckpts", "overhead",
              "runtime", "E[lost work]");
  const std::vector<const ckpt::CheckpointPolicy*> policies = {
      &every10, &every2, overhead.get(), &composite};
  for (const ckpt::CheckpointPolicy* policy : policies) {
    const ckpt::RunResult result =
        ckpt::run_simulated_app(config, *policy, machine, 11);
    std::printf("%-42s %-7d %-9.1f%% %-10s %-12s\n", policy->name().c_str(),
                result.checkpoints_written, result.overhead_fraction() * 100,
                format_duration(result.total_runtime_s).c_str(),
                format_duration(ckpt::expected_lost_work(result)).c_str());
  }
  std::printf("\nthe overhead-bounded policy needs NO per-machine retuning: the\n"
              "same 10%% intent produces a different (correct) schedule on a\n"
              "different system — that is the reusability claim of Section V-B.\n");

  // Same policy object, different machine — no retuning.
  const ckpt::RunResult institutional = ckpt::run_simulated_app(
      config, *overhead, sim::institutional_cluster(), 11);
  std::printf("same policy on '%s': %d checkpoints (overhead %.1f%%)\n",
              sim::institutional_cluster().name.c_str(),
              institutional.checkpoints_written,
              institutional.overhead_fraction() * 100);
  return 0;
}
