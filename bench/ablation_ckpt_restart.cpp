// Ablation (DESIGN.md): what the checkpoint policy actually buys — total
// time-to-solution when the machine fails and the run restarts from the
// last checkpoint. Combines the Summit-scale harness, the MTTF failure
// model, and restart (lost work) accounting.
//
// Method: for each policy, simulate the run profile once (deterministic),
// then Monte-Carlo failure times from the aggregate exponential process and
// charge: completed work + lost work + repair + re-run of lost work.

#include <cstdio>

#include "ckpt/harness.hpp"
#include "cluster/failure.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ff;

namespace {

/// Expected time-to-solution with restarts: walk failure times sampled
/// from the aggregate process; on each failure before completion, pay the
/// repair time and redo the work since the last checkpoint.
double time_to_solution(const ckpt::RunResult& profile, sim::FailureModel& failures,
                        int nodes, int trials) {
  RunningStats stats;
  for (int trial = 0; trial < trials; ++trial) {
    double progress = 0;      // how far through the run profile we are
    double wall = 0;          // total wall time including restarts
    int guard = 0;
    while (progress < profile.total_runtime_s && guard++ < 1000) {
      const auto failure = failures.next_failure_after(0.0, nodes);
      const double until_failure = failure ? *failure : 1e300;
      const double remaining = profile.total_runtime_s - progress;
      if (until_failure >= remaining) {
        wall += remaining;
        progress = profile.total_runtime_s;
        break;
      }
      // Fail mid-run: we advanced `until_failure`, lose back to the last
      // checkpoint, pay repair.
      const double at = progress + until_failure;
      const double lost = ckpt::lost_work_at(profile, at);
      wall += until_failure + failures.repair_time_s();
      progress = at - lost;
    }
    stats.add(wall);
  }
  return stats.mean();
}

}  // namespace

int main() {
  ckpt::AppConfig config;
  config.steps = 50;
  config.nodes = 128;
  config.ranks = 4096;
  config.bytes_per_step = 1e12;
  config.compute_per_step_s = 120;

  sim::MachineSpec machine = sim::summit();
  // A failure-rich regime so the trade-off is visible: node MTTF such that
  // a 128-node job sees a failure every ~2 hours on average.
  machine.node_mttf_hours = 256;

  std::printf("Ablation — time-to-solution with failures and restarts\n");
  std::printf("(128 nodes, aggregate MTTF %s, repair 10m, Monte-Carlo n=400)\n\n",
              format_duration(machine.node_mttf_hours * 3600 / 128).c_str());
  std::printf("%-26s %-7s %-10s %-12s %-14s %-12s\n", "policy", "ckpts",
              "overhead", "no-fail run", "E[lost work]", "with failures");

  struct Row {
    std::string name;
    std::unique_ptr<ckpt::CheckpointPolicy> policy;
  };
  std::vector<Row> rows;
  rows.push_back({"none (interval 51)",
                  std::make_unique<ckpt::FixedIntervalPolicy>(51)});
  rows.push_back({"fixed every 25", std::make_unique<ckpt::FixedIntervalPolicy>(25)});
  rows.push_back({"fixed every 5", std::make_unique<ckpt::FixedIntervalPolicy>(5)});
  rows.push_back({"fixed every 1", std::make_unique<ckpt::FixedIntervalPolicy>(1)});
  for (double cap : {0.05, 0.10, 0.20}) {
    rows.push_back({"overhead " + format_fixed(cap * 100, 0) + "%",
                    std::make_unique<ckpt::OverheadBoundedPolicy>(cap)});
  }

  double best = 1e300;
  std::string best_name;
  for (const Row& row : rows) {
    const ckpt::RunResult profile =
        ckpt::run_simulated_app(config, *row.policy, machine, 77);
    sim::FailureModel failures(machine, 1234, 600.0);
    const double tts = time_to_solution(profile, failures, config.nodes, 400);
    std::printf("%-26s %-7d %-9.1f%% %-12s %-14s %-12s\n", row.name.c_str(),
                profile.checkpoints_written, profile.overhead_fraction() * 100,
                format_duration(profile.total_runtime_s).c_str(),
                format_duration(ckpt::expected_lost_work(profile)).c_str(),
                format_duration(tts).c_str());
    if (tts < best) {
      best = tts;
      best_name = row.name;
    }
  }
  std::printf("\nbest time-to-solution: %s — neither extreme wins: too few\n"
              "checkpoints loses work to failures, too many loses it to I/O.\n",
              best_name.c_str());
  return 0;
}
