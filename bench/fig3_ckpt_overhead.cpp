// Fig. 3 reproduction: "Writing simulation checkpoints depending on the
// runtime overhead of checkpoint I/O" — checkpoints written vs the
// permitted I/O overhead, for the paper's setup (reaction-diffusion app,
// 4096 MPI processes over 128 Summit nodes, 50 timesteps × 1 TB).
//
// Expected shape (paper): checkpoint count rises monotonically with the
// permitted overhead, saturating at the 50-step ceiling.

#include <cstdio>

#include "ckpt/harness.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ff;

int main() {
  ckpt::AppConfig config;
  config.steps = 50;
  config.nodes = 128;
  config.ranks = 4096;
  config.bytes_per_step = 1e12;  // 1 TB per timestep
  config.compute_per_step_s = 120;

  const sim::MachineSpec machine = sim::summit();
  const int kRepeats = 5;

  std::printf("Fig 3 — checkpoints written vs permitted I/O overhead\n");
  std::printf("app: gray-scott-like, %d steps x %s, %d ranks / %d nodes on %s\n\n",
              config.steps, format_bytes(config.bytes_per_step).c_str(),
              config.ranks, config.nodes, machine.name.c_str());
  std::printf("%-12s %-14s %-16s %-14s\n", "max_overhead", "checkpoints",
              "achieved_ovh", "runtime");

  for (double cap : {0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30}) {
    const ckpt::OverheadBoundedPolicy policy(cap);
    RunningStats count_stats;
    RunningStats overhead_stats;
    RunningStats runtime_stats;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      const ckpt::RunResult result = ckpt::run_simulated_app(
          config, policy, machine, 100 + static_cast<uint64_t>(repeat));
      count_stats.add(result.checkpoints_written);
      overhead_stats.add(result.overhead_fraction());
      runtime_stats.add(result.total_runtime_s);
    }
    std::printf("%-12s %5.1f +/- %-5.1f %6.1f%% %10s %s\n",
                (format_fixed(cap * 100, 0) + "%").c_str(), count_stats.mean(),
                count_stats.stddev(), overhead_stats.mean() * 100, "",
                format_duration(runtime_stats.mean()).c_str());
  }

  // Reference: the traditional fixed-interval baselines for context.
  std::printf("\nbaseline fixed-interval policies (same app):\n");
  for (int interval : {25, 10, 5, 1}) {
    const ckpt::FixedIntervalPolicy policy(interval);
    const ckpt::RunResult result =
        ckpt::run_simulated_app(config, policy, machine, 100);
    std::printf("  every %2d steps: %2d checkpoints, overhead %.1f%%\n", interval,
                result.checkpoints_written, result.overhead_fraction() * 100);
  }
  return 0;
}
