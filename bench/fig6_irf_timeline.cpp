// Fig. 6 reproduction: "Comparison of workflows between the original
// iRF-LOOP workflow and the improved Cheetah workflow. The original
// workflow required all runs within a set to complete before moving to the
// next set, resulting in idle nodes. This is eliminated using Cheetah."
//
// Output: per-node busy/idle ASCII timelines for the set-synchronized
// baseline vs the Savanna pilot, plus utilization and makespan.
//
// The timelines here are rebuilt purely from the structured trace stream
// (savanna.job.start / savanna.job.end events, see docs/trace_schema.md) —
// the same events any external consumer of the JSONL export sees — rather
// than from executor-private bookkeeping.

#include <cstdio>

#include "cluster/workload.hpp"
#include "obs/trace.hpp"
#include "savanna/executor.hpp"
#include "savanna/timeline.hpp"
#include "util/strings.hpp"

using namespace ff;

namespace {

/// Drain the recorder and rebuild the Fig. 6 view from the events alone.
savanna::TraceTimeline drain_timeline() {
  return savanna::timeline_from_trace(obs::TraceRecorder::instance().flush());
}

void print_run(const char* header, const savanna::TraceTimeline& timeline,
               int nodes) {
  std::printf("%s\n", header);
  std::printf("%s",
              savanna::render_timeline(timeline.node_timeline,
                                       timeline.makespan_s, 72)
                  .c_str());
  std::printf("  makespan %s, utilization %.0f%%\n\n",
              format_duration(timeline.makespan_s).c_str(),
              timeline.utilization() * 100);
  (void)nodes;
}

}  // namespace

int main() {
  // iRF run-time skew: lognormal body + straggler tail, as observed for
  // per-feature iRF fits ("run times between the individual iRF processes
  // can differ within one submission").
  sim::DurationModel durations;
  durations.median_s = 300;
  durations.sigma = 0.5;
  durations.straggler_fraction = 0.08;
  durations.straggler_scale = 2.5;
  durations.straggler_alpha = 1.6;

  const auto tasks = sim::make_ensemble(64, durations, 2021);
  const auto summary = sim::summarize_ensemble(tasks);
  std::printf("Fig 6 — node utilization: set-synchronized vs Savanna pilot\n");
  std::printf("workload: %zu iRF runs, median %s, p95 %s, max %s\n\n",
              tasks.size(), format_duration(300).c_str(),
              format_duration(summary.p95_s).c_str(),
              format_duration(summary.max_s).c_str());

  savanna::ExecutionOptions options;
  options.nodes = 8;

  obs::set_tracing(true);

  sim::Simulation sim_a;
  (void)savanna::run_set_synchronized(sim_a, tasks, options);
  const auto set_timeline = drain_timeline();

  sim::Simulation sim_b;
  (void)savanna::run_pilot(sim_b, tasks, options);
  const auto pilot_timeline = drain_timeline();

  obs::set_tracing(false);

  char header[96];
  std::snprintf(header, sizeof(header),
                "original (sets of %d with end-of-set barrier):", options.nodes);
  print_run(header, set_timeline, options.nodes);
  print_run("cheetah-savanna (dynamic pilot, no barriers):", pilot_timeline,
            options.nodes);

  // Both runs have an unbounded walltime, so the allocation spans
  // nodes * makespan and idle time falls straight out of the trace.
  const double idle_set = set_timeline.makespan_s * options.nodes -
                          set_timeline.busy_node_seconds;
  const double idle_pilot = pilot_timeline.makespan_s * options.nodes -
                            pilot_timeline.busy_node_seconds;
  std::printf("idle node-time:   baseline %s   pilot %s   (%.1fx less idle)\n",
              format_duration(idle_set).c_str(),
              format_duration(idle_pilot).c_str(), idle_set / idle_pilot);
  std::printf("makespan speedup: %.2fx\n",
              set_timeline.makespan_s / pilot_timeline.makespan_s);
  return 0;
}
