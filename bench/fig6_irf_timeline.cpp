// Fig. 6 reproduction: "Comparison of workflows between the original
// iRF-LOOP workflow and the improved Cheetah workflow. The original
// workflow required all runs within a set to complete before moving to the
// next set, resulting in idle nodes. This is eliminated using Cheetah."
//
// Output: per-node busy/idle ASCII timelines for the set-synchronized
// baseline vs the Savanna pilot, plus utilization and makespan.

#include <cstdio>

#include "cluster/workload.hpp"
#include "savanna/executor.hpp"
#include "util/strings.hpp"

using namespace ff;

int main() {
  // iRF run-time skew: lognormal body + straggler tail, as observed for
  // per-feature iRF fits ("run times between the individual iRF processes
  // can differ within one submission").
  sim::DurationModel durations;
  durations.median_s = 300;
  durations.sigma = 0.5;
  durations.straggler_fraction = 0.08;
  durations.straggler_scale = 2.5;
  durations.straggler_alpha = 1.6;

  const auto tasks = sim::make_ensemble(64, durations, 2021);
  const auto summary = sim::summarize_ensemble(tasks);
  std::printf("Fig 6 — node utilization: set-synchronized vs Savanna pilot\n");
  std::printf("workload: %zu iRF runs, median %s, p95 %s, max %s\n\n",
              tasks.size(), format_duration(300).c_str(),
              format_duration(summary.p95_s).c_str(),
              format_duration(summary.max_s).c_str());

  savanna::ExecutionOptions options;
  options.nodes = 8;

  sim::Simulation sim_a;
  const auto set_report = savanna::run_set_synchronized(sim_a, tasks, options);
  sim::Simulation sim_b;
  const auto pilot_report = savanna::run_pilot(sim_b, tasks, options);

  std::printf("original (sets of %d with end-of-set barrier):\n", options.nodes);
  std::printf("%s", set_report.render_timeline(72).c_str());
  std::printf("  makespan %s, utilization %.0f%%\n\n",
              format_duration(set_report.makespan_s).c_str(),
              set_report.utilization() * 100);

  std::printf("cheetah-savanna (dynamic pilot, no barriers):\n");
  std::printf("%s", pilot_report.render_timeline(72).c_str());
  std::printf("  makespan %s, utilization %.0f%%\n\n",
              format_duration(pilot_report.makespan_s).c_str(),
              pilot_report.utilization() * 100);

  const double idle_set =
      set_report.allocation_node_seconds - set_report.busy_node_seconds;
  const double idle_pilot =
      pilot_report.allocation_node_seconds - pilot_report.busy_node_seconds;
  std::printf("idle node-time:   baseline %s   pilot %s   (%.1fx less idle)\n",
              format_duration(idle_set).c_str(),
              format_duration(idle_pilot).c_str(), idle_set / idle_pilot);
  std::printf("makespan speedup: %.2fx\n",
              set_report.makespan_s / pilot_report.makespan_s);
  return 0;
}
