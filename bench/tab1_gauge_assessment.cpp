// Box I / Fig. 1 demonstration: gauge-tier assessment of the GWAS workflow
// before and after the Skel/Cheetah refactoring, with the technical-debt
// deltas the gauge model predicts. This is the "machine-actionable
// metadata" half of the paper made runnable: the same profiles feed the
// catalog query engine.

#include <cstdio>

#include "core/assessment.hpp"
#include "core/metadata_catalog.hpp"
#include "gwas/workflow.hpp"

using namespace ff;

int main() {
  std::printf("Gauge assessment — GWAS workflow before/after refactoring\n\n");

  std::vector<core::ReuseContext> contexts;
  core::ReuseContext machine;
  machine.new_machine = true;
  machine.new_scale = true;
  contexts.push_back(machine);
  core::ReuseContext dataset;
  dataset.new_dataset = true;
  dataset.new_data_format = true;
  contexts.push_back(dataset);
  core::ReuseContext team;
  team.new_team = true;
  contexts.push_back(team);

  const core::WorkflowGraph legacy = gwas::legacy_gwas_workflow();
  const core::WorkflowGraph refactored = gwas::refactored_gwas_workflow();

  const core::AssessmentReport before = core::assess(legacy, contexts);
  const core::AssessmentReport after = core::assess(refactored, contexts);

  std::printf("=== BEFORE ===\n%s\n", before.render().c_str());
  std::printf("=== AFTER ===\n%s\n", after.render().c_str());

  std::printf("debt delta: %.0f manual minutes -> %.0f (%.1fx reduction), "
              "%zu -> %zu manual steps\n\n",
              before.total_debt.manual_minutes, after.total_debt.manual_minutes,
              before.total_debt.manual_minutes /
                  std::max(1.0, after.total_debt.manual_minutes),
              before.total_debt.manual_count, after.total_debt.manual_count);

  // Machine-actionable: the catalog answers tooling questions directly.
  core::MetadataCatalog catalog;
  for (const auto& id : legacy.component_ids()) {
    catalog.put_component(legacy.component(id));
  }
  for (const auto& id : refactored.component_ids()) {
    catalog.put_component(refactored.component(id));
  }
  const std::vector<std::pair<const char*, const char*>> queries = {
      {"regenerable components", "customizability >= Model"},
      {"schema-explicit components", "schema >= Format and access >= Interface"},
      {"black boxes needing work", "granularity <= BlackBox"},
      {"campaign-linked provenance", "provenance >= CampaignKnowledge"},
  };
  std::printf("catalog queries over %zu components:\n", catalog.component_count());
  for (const auto& [label, query] : queries) {
    std::printf("  %-32s %-52s ->", label, query);
    for (const auto& id : catalog.query(query)) std::printf(" %s", id.c_str());
    std::printf("\n");
  }

  // Interventions rendered for the new-machine context, before vs after.
  std::printf("\nnew-machine interventions, paste step:\n");
  std::printf("before:\n%s", core::render_interventions(
                                 core::interventions_for(
                                     gwas::manual_paste_component(), machine))
                                 .c_str());
  std::printf("after:\n%s", core::render_interventions(
                                core::interventions_for(
                                    gwas::skel_paste_component(), machine))
                                .c_str());
  return 0;
}
