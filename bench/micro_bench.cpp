// Micro-benchmarks (google-benchmark) for the performance-sensitive
// substrate pieces: JSON, templates, marshalling, CSV paste, event sim,
// and forest fitting. These back the DESIGN.md ablation notes.

#include <benchmark/benchmark.h>

#include <memory>

#include "cluster/sim.hpp"
#include "gwas/paste.hpp"
#include "irf/forest.hpp"
#include "irf/irf_loop.hpp"
#include "obs/trace.hpp"
#include "skel/template_engine.hpp"
#include "stream/marshal.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace ff;

namespace {

std::string nested_json_text(int entries) {
  Json doc = Json::object();
  for (int i = 0; i < entries; ++i) {
    Json run = Json::object();
    run["id"] = "run-" + std::to_string(i);
    run["params"] = Json::object({{"nodes", Json(i % 32)}, {"alpha", Json(0.5 * i)}});
    doc["runs"].push_back(std::move(run));
  }
  return doc.pretty();
}

void BM_JsonParse(benchmark::State& state) {
  const std::string text = nested_json_text(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Json::parse(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_JsonParse)->Arg(10)->Arg(100)->Arg(1000);

void BM_JsonDump(benchmark::State& state) {
  const Json doc = Json::parse(nested_json_text(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc.dump());
  }
}
BENCHMARK(BM_JsonDump)->Arg(100);

void BM_TemplateRender(benchmark::State& state) {
  const skel::Template tmpl = skel::Template::parse(
      "{{#each runs}}#BSUB -J {{id}}\njsrun -n {{params.nodes}} app --alpha "
      "{{params.alpha}}\n{{/each}}");
  const Json model = Json::parse(nested_json_text(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmpl.render(model));
  }
}
BENCHMARK(BM_TemplateRender)->Arg(10)->Arg(100)->Arg(1000);

void BM_MarshalEncode(benchmark::State& state) {
  stream::StreamSchema schema;
  schema.name = "bench";
  schema.fields = {{"seq", "int"}, {"value", "double"}, {"vec", "double[]"}};
  stream::Record record;
  record.values = {stream::Value{int64_t{7}}, stream::Value{3.14},
                   stream::Value{std::vector<double>(16, 1.0)}};
  for (auto _ : state) {
    stream::Encoder encoder(schema);
    for (int i = 0; i < 100; ++i) encoder.append(record);
    benchmark::DoNotOptimize(encoder.bytes());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MarshalEncode);

void BM_MarshalDecode(benchmark::State& state) {
  stream::StreamSchema schema;
  schema.name = "bench";
  schema.fields = {{"seq", "int"}, {"value", "double"}};
  stream::Encoder encoder(schema);
  stream::Record record;
  record.values = {stream::Value{int64_t{7}}, stream::Value{3.14}};
  for (int i = 0; i < 1000; ++i) encoder.append(record);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream::decode_stream(encoder.bytes()));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MarshalDecode);

void BM_EventSim(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.schedule_after(1.0, tick);
    };
    sim.schedule_at(0.0, tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventSim);

void BM_TablePaste(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  std::vector<Table> tables;
  for (int t = 0; t < 8; ++t) {
    Table table({"sample", "col" + std::to_string(t)});
    for (size_t r = 0; r < rows; ++r) {
      table.add_row({"S" + std::to_string(r), "1"});
    }
    tables.push_back(std::move(table));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gwas::paste_tables(tables));
  }
}
BENCHMARK(BM_TablePaste)->Arg(100)->Arg(1000);

/// Args: {n_trees, samples, features, pool workers (0 = serial)}.
void BM_ForestFit(benchmark::State& state) {
  const auto n_trees = static_cast<size_t>(state.range(0));
  const auto samples = static_cast<size_t>(state.range(1));
  const auto features = static_cast<size_t>(state.range(2));
  const auto workers = static_cast<size_t>(state.range(3));
  Rng rng(1);
  irf::DenseMatrix x(samples, features);
  std::vector<double> y;
  for (size_t s = 0; s < samples; ++s) {
    for (size_t f = 0; f < features; ++f) x.at(s, f) = rng.uniform(-1, 1);
    y.push_back(2.0 * x.at(s, 0) - x.at(s, 3) + 0.1 * rng.normal());
  }
  irf::ForestParams params;
  params.n_trees = n_trees;
  std::unique_ptr<ThreadPool> pool;
  if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
  for (auto _ : state) {
    irf::RandomForest forest;
    forest.fit(x, y, params, 42, {}, pool.get());
    benchmark::DoNotOptimize(forest.importance());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n_trees));
}
BENCHMARK(BM_ForestFit)
    ->Args({10, 200, 10, 0})
    ->Args({40, 200, 10, 0})
    ->Args({20, 800, 64, 0})
    ->Args({20, 3220, 256, 0})   // census scale (paper Fig. 7 per-target fit)
    ->Args({20, 3220, 256, 4})  // same, tree-parallel on 4 workers
    ->Unit(benchmark::kMillisecond);

/// Same fit with the trace recorder live — the overhead budget of
/// DESIGN.md §3.2 (<2% vs the matching BM_ForestFit args; numbers in
/// EXPERIMENTS.md). Every tree fit emits a span, and pool runs add
/// queue-depth counters, so this is the instrumentation-dense worst case.
void BM_ForestFitTraced(benchmark::State& state) {
  const auto n_trees = static_cast<size_t>(state.range(0));
  const auto samples = static_cast<size_t>(state.range(1));
  const auto features = static_cast<size_t>(state.range(2));
  const auto workers = static_cast<size_t>(state.range(3));
  Rng rng(1);
  irf::DenseMatrix x(samples, features);
  std::vector<double> y;
  for (size_t s = 0; s < samples; ++s) {
    for (size_t f = 0; f < features; ++f) x.at(s, f) = rng.uniform(-1, 1);
    y.push_back(2.0 * x.at(s, 0) - x.at(s, 3) + 0.1 * rng.normal());
  }
  irf::ForestParams params;
  params.n_trees = n_trees;
  std::unique_ptr<ThreadPool> pool;
  if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
  obs::set_tracing(true);
  for (auto _ : state) {
    irf::RandomForest forest;
    forest.fit(x, y, params, 42, {}, pool.get());
    benchmark::DoNotOptimize(forest.importance());
  }
  obs::set_tracing(false);
  obs::TraceRecorder::instance().clear();
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n_trees));
}
BENCHMARK(BM_ForestFitTraced)
    ->Args({20, 800, 64, 0})
    ->Args({20, 3220, 256, 4})
    ->Unit(benchmark::kMillisecond);

/// Full iRF-LOOP (one iRF model per feature -> adjacency matrix).
/// Args: {features, samples, pool workers (0 = serial)}.
void BM_IrfLoop(benchmark::State& state) {
  const auto features = static_cast<size_t>(state.range(0));
  const auto samples = static_cast<size_t>(state.range(1));
  const auto workers = static_cast<size_t>(state.range(2));
  irf::CensusConfig config;
  config.samples = samples;
  config.features = features;
  const irf::CensusDataset census = irf::make_census_dataset(config, 7);
  irf::IrfLoopParams params;
  params.irf.iterations = 2;
  params.irf.forest.n_trees = 15;
  params.irf.forest.tree.max_depth = 6;
  std::unique_ptr<ThreadPool> pool;
  if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
  for (auto _ : state) {
    const irf::IrfLoopResult result =
        irf::run_irf_loop(census.data, params, 42, pool.get());
    benchmark::DoNotOptimize(result.adjacency.at(0, 1));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(features));
}
BENCHMARK(BM_IrfLoop)
    ->Args({12, 150, 0})
    ->Args({24, 300, 0})
    ->Args({24, 300, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
