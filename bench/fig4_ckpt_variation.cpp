// Fig. 4 reproduction: "The variation in the number of output checkpoints
// between multiple runs when maximum I/O overhead is set to 10% of the
// total application runtime." Run-to-run differences come from (a) the
// application being "configured to perform more/less computations and
// communication" and (b) the shared filesystem's load.

#include <cstdio>

#include "ckpt/harness.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ff;

int main() {
  const double kCap = 0.10;
  const ckpt::OverheadBoundedPolicy policy(kCap);
  const sim::MachineSpec machine = sim::summit();
  const int kRuns = 12;

  std::printf("Fig 4 — checkpoint-count variation across runs at %.0f%% cap\n\n",
              kCap * 100);
  std::printf("%-5s %-12s %-12s %-12s %-12s %-14s\n", "run", "comm_frac",
              "ckpts", "overhead", "runtime", "E[lost work]");

  RunningStats counts;
  for (int run = 0; run < kRuns; ++run) {
    ckpt::AppConfig config;
    config.steps = 50;
    config.nodes = 128;
    config.ranks = 4096;
    config.bytes_per_step = 1e12;
    config.compute_per_step_s = 120;
    // Application behaviour varies between runs (compute/communication mix).
    config.comm_fraction = 0.10 + 0.05 * (run % 5);
    config.compute_variability = 0.10 + 0.03 * (run % 3);

    const ckpt::RunResult result = ckpt::run_simulated_app(
        config, policy, machine, 7000 + static_cast<uint64_t>(run));
    counts.add(result.checkpoints_written);
    std::printf("%-5d %-12.2f %-12d %-11.1f%% %-12s %-14s\n", run,
                config.comm_fraction, result.checkpoints_written,
                result.overhead_fraction() * 100,
                format_duration(result.total_runtime_s).c_str(),
                format_duration(ckpt::expected_lost_work(result)).c_str());
  }

  std::printf("\ncheckpoints: mean %.1f, stddev %.1f, min %.0f, max %.0f\n",
              counts.mean(), counts.stddev(), counts.min(), counts.max());
  std::printf("(a static every-N policy would write the identical count every "
              "run; the overhead-driven policy adapts to system state)\n");

  Histogram histogram(counts.min() - 0.5, counts.max() + 0.5,
                      static_cast<size_t>(counts.max() - counts.min()) + 1);
  // Re-run the counts into the histogram for a distribution sketch.
  for (int run = 0; run < kRuns; ++run) {
    ckpt::AppConfig config;
    config.steps = 50;
    config.nodes = 128;
    config.ranks = 4096;
    config.bytes_per_step = 1e12;
    config.compute_per_step_s = 120;
    config.comm_fraction = 0.10 + 0.05 * (run % 5);
    config.compute_variability = 0.10 + 0.03 * (run % 3);
    histogram.add(ckpt::run_simulated_app(config, policy, machine,
                                          7000 + static_cast<uint64_t>(run))
                      .checkpoints_written);
  }
  std::printf("\n%s", histogram.render(30).c_str());
  return 0;
}
