// Million-run campaign spine bench: the three rates that govern how far
// the Cheetah/Savanna stack scales (docs/scaling.md).
//
//  1. submit:   lazy SweepGroup iteration -> TaskSpec list. run_at() decode
//               cost per run; no O(campaign) vector is materialized.
//  2. journal:  allocation-record append throughput, fsync-per-record
//               (PR-3 default, group_commit=1) vs group commit of 64.
//  3. resume:   resume_campaign() on a finished, checkpointed journal —
//               the O(live runs) recovery path — on both the uncompacted
//               and the compacted form of the same campaign.
//
// Measured at 10^3 / 10^4 / 10^5 runs; writes the series to
// BENCH_campaign.json (path = argv[1] or the default below) — the
// committed record of campaign-spine performance.
//
// `--smoke`: a ~2 s regression guard (the ctest `perf-smoke` label),
// best-of-3 at 10^4 runs: submit, group-commit journal append, and
// checkpointed resume must each clear a floor set ~10x below the rates a
// plain container build measures, so only an order-of-magnitude regression
// (an accidentally quadratic path) trips it. Exits 1 on regression, writes
// nothing.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "cheetah/sweep.hpp"
#include "savanna/campaign_runner.hpp"
#include "savanna/journal.hpp"
#include "savanna/tracker.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

using namespace ff;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// A three-parameter sweep group decoding to exactly `n` runs (n must be a
// cube; 10^3/10^4/10^5 all are, with non-integer roots rounded by table).
cheetah::SweepGroup cube_group(size_t per_axis) {
  cheetah::SweepGroup group("bench");
  cheetah::Sweep sweep("s");
  using cheetah::ParamLayer;
  sweep.add(cheetah::Parameter::int_range("a", ParamLayer::Application, 0,
                                          static_cast<int64_t>(per_axis) - 1))
      .add(cheetah::Parameter::int_range("b", ParamLayer::Middleware, 0,
                                         static_cast<int64_t>(per_axis) - 1))
      .add(cheetah::Parameter::int_range("c", ParamLayer::System, 0,
                                         static_cast<int64_t>(per_axis) - 1));
  group.add(std::move(sweep));
  return group;
}

// --- 1. submit --------------------------------------------------------------

struct SubmitResult {
  double runs_per_s = 0;
  std::vector<sim::TaskSpec> tasks;  // reused by the journal/resume stages
};

SubmitResult bench_submit(size_t per_axis) {
  const cheetah::SweepGroup group = cube_group(per_axis);
  SubmitResult out;
  out.tasks.reserve(group.run_count());
  const auto start = Clock::now();
  group.for_each_run([&](const cheetah::RunSpec& run) {
    sim::TaskSpec task;
    task.id = run.id;
    task.duration_s = 1.0;
    out.tasks.push_back(std::move(task));
  });
  const double elapsed = seconds_since(start);
  out.runs_per_s = static_cast<double>(out.tasks.size()) / elapsed;
  return out;
}

// --- 2. journal append ------------------------------------------------------

Json alloc_record(size_t i) {
  Json record = Json::object();
  record["start"] = static_cast<double>(i);
  record["end"] = static_cast<double>(i) + 1.0;
  Json completed = Json::array();
  completed.push_back(Json("run-" + std::to_string(i)));
  record["completed"] = completed;
  return record;
}

double bench_journal_append(const std::string& dir, size_t records,
                            size_t group_commit) {
  const std::string path = dir + "/append.jsonl";
  savanna::RunSetDigest digest;
  digest.add("bench");
  auto journal = savanna::CampaignJournal::create(
      path, "bench", savanna::CampaignJournal::RunSetSummary{1, digest.hex()});
  journal.set_group_commit(group_commit);
  const auto start = Clock::now();
  for (size_t i = 0; i < records; ++i) journal.append_allocation(alloc_record(i));
  journal.flush();
  const double elapsed = seconds_since(start);
  journal.close();
  std::remove(path.c_str());
  return static_cast<double>(records) / elapsed;
}

// --- 3. resume --------------------------------------------------------------

savanna::CampaignRunOptions campaign_options(size_t runs, bool compacted) {
  savanna::CampaignRunOptions options;
  options.execution.nodes = 256;
  options.execution.walltime_s =
      static_cast<double>(runs) / 256.0 * 4.0 + 16.0;
  options.retry.max_attempts = 3;
  options.journal.checkpoint_every = 1;  // checkpoint every allocation
  options.journal.compact_after_checkpoint = compacted;
  options.journal.group_commit = 64;
  // The campaign itself is the fixture, not the measurement.
  options.preflight_lint = false;
  return options;
}

struct ResumeBench {
  double runs_per_s = 0;
  size_t journal_bytes = 0;
};

ResumeBench bench_resume(const std::string& dir,
                         const std::vector<sim::TaskSpec>& tasks,
                         bool compacted) {
  const std::string path =
      dir + (compacted ? "/resume_compact.jsonl" : "/resume.jsonl");
  savanna::CampaignRunOptions options =
      campaign_options(tasks.size(), compacted);
  std::hash<std::string> hasher;
  savanna::RunTracker build_tracker;
  options.execution.fails = [&](const sim::TaskSpec& task, int) {
    return hasher(task.id) % 97 == 0 && build_tracker.attempts(task.id) == 0;
  };
  {
    sim::Simulation sim;
    savanna::resume_campaign(sim, tasks, options, build_tracker, path, "bench");
  }
  // The measurement: recover the finished campaign from its journal.
  options.execution.fails = nullptr;
  ResumeBench out;
  savanna::RunTracker tracker;
  sim::Simulation sim;
  const auto start = Clock::now();
  savanna::resume_campaign(sim, tasks, options, tracker, path, "bench");
  const double elapsed = seconds_since(start);
  out.runs_per_s = static_cast<double>(tasks.size()) / elapsed;
  out.journal_bytes = read_file(path).size();
  std::remove(path.c_str());
  return out;
}

// --- harness ----------------------------------------------------------------

struct ScalePoint {
  size_t runs = 0;
  double submit = 0;
  double journal_fsync = 0;   // group_commit = 1
  double journal_group64 = 0; // group_commit = 64
  double resume = 0;
  double resume_compacted = 0;
  size_t journal_bytes = 0;
  size_t compacted_bytes = 0;
};

ScalePoint measure(const std::string& dir, size_t per_axis) {
  ScalePoint point;
  SubmitResult submit = bench_submit(per_axis);
  point.runs = submit.tasks.size();
  point.submit = submit.runs_per_s;
  // fsync-per-record is the slow mode by design; sample it on at most 10^4
  // appends so the 10^5 row does not spend its whole budget on fsyncs.
  const size_t fsync_sample = point.runs < 10000 ? point.runs : 10000;
  point.journal_fsync = bench_journal_append(dir, fsync_sample, 1);
  point.journal_group64 = bench_journal_append(dir, point.runs, 64);
  const ResumeBench plain = bench_resume(dir, submit.tasks, false);
  point.resume = plain.runs_per_s;
  point.journal_bytes = plain.journal_bytes;
  const ResumeBench compact = bench_resume(dir, submit.tasks, true);
  point.resume_compacted = compact.runs_per_s;
  point.compacted_bytes = compact.journal_bytes;
  return point;
}

Json to_json(const ScalePoint& point) {
  Json row = Json::object();
  row["runs"] = static_cast<int64_t>(point.runs);
  row["submit_runs_per_s"] = point.submit;
  row["journal_fsync_runs_per_s"] = point.journal_fsync;
  row["journal_group64_runs_per_s"] = point.journal_group64;
  row["resume_runs_per_s"] = point.resume;
  row["resume_compacted_runs_per_s"] = point.resume_compacted;
  row["journal_bytes"] = static_cast<int64_t>(point.journal_bytes);
  row["compacted_journal_bytes"] = static_cast<int64_t>(point.compacted_bytes);
  return row;
}

// --- smoke mode -------------------------------------------------------------

/// Floors ~10x under a plain container build's measured rates: only an
/// order-of-magnitude regression (an accidentally O(n^2) path) trips them.
int run_smoke() {
  constexpr double kSubmitFloor = 20000.0;   // runs/s
  constexpr double kJournalFloor = 20000.0;  // group-commit appends/s
  constexpr double kResumeFloor = 5000.0;    // runs/s, checkpointed+compacted
  constexpr int kAttempts = 3;
  TempDir dir("bench_campaign_smoke");
  std::printf("perf-smoke(campaign): 10^4 runs, best of %d\n", kAttempts);
  double best_submit = 0, best_journal = 0, best_resume = 0;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    SubmitResult submit = bench_submit(22);  // 22^3 ~= 10^4 runs
    best_submit = std::max(best_submit, submit.runs_per_s);
    best_journal = std::max(
        best_journal, bench_journal_append(dir.str(), submit.tasks.size(), 64));
    best_resume =
        std::max(best_resume, bench_resume(dir.str(), submit.tasks, true).runs_per_s);
    if (best_submit >= kSubmitFloor && best_journal >= kJournalFloor &&
        best_resume >= kResumeFloor) {
      std::printf("perf-smoke(campaign): OK (submit %.0f/s, journal %.0f/s, "
                  "resume %.0f/s)\n",
                  best_submit, best_journal, best_resume);
      return 0;
    }
  }
  std::printf("perf-smoke(campaign): REGRESSION (submit %.0f/s vs %.0f, "
              "journal %.0f/s vs %.0f, resume %.0f/s vs %.0f)\n",
              best_submit, kSubmitFloor, best_journal, kJournalFloor,
              best_resume, kResumeFloor);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    out_path = argv[i];
  }
  TempDir dir("bench_campaign");
  Json series = Json::array();
  for (size_t per_axis : {10, 22, 47}) {  // 10^3, ~10^4 (10648), ~10^5 (103823)
    const ScalePoint point = measure(dir.str(), per_axis);
    std::printf("%8zu runs: submit %.0f/s  journal fsync %.0f/s  "
                "group64 %.0f/s  resume %.0f/s  compacted %.0f/s "
                "(journal %zu B -> %zu B)\n",
                point.runs, point.submit, point.journal_fsync,
                point.journal_group64, point.resume, point.resume_compacted,
                point.journal_bytes, point.compacted_bytes);
    series.push_back(to_json(point));
  }
  Json out = Json::object();
  out["bench"] = "campaign_scale";
  out["series"] = series;
  write_file_atomic(out_path, out.dump() + "\n");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
