// Ablation (DESIGN.md): a complete codesign campaign over the paste
// workflow using the Cheetah composition API and the ResultCatalog — the
// Section II-C story end to end: declare an objective, sweep parameters
// across layers, execute (cost model), and query the catalog for the best
// configuration and per-parameter impact.

#include <cstdio>

#include "cheetah/results.hpp"
#include "gwas/paste.hpp"
#include "util/strings.hpp"

using namespace ff;

int main() {
  constexpr size_t kFiles = 1606;
  constexpr size_t kColumnsPerFile = 50;
  constexpr size_t kRows = 100000;

  // Compose the campaign: application-layer fan_in x system-layer workers.
  cheetah::AppSpec app;
  app.name = "paste";
  app.executable = "paste_tool";
  app.args_template = "--fan-in {{fan_in}} --workers {{workers}}";
  cheetah::Campaign campaign("paste-codesign", app);
  campaign.set_objective(cheetah::Objective::MinimizeRuntime);
  cheetah::Sweep sweep("grid");
  sweep.add(cheetah::Parameter::values(
                "fan_in", cheetah::ParamLayer::Application,
                {Json(48), Json(64), Json(96), Json(128), Json(256)}))
      .add(cheetah::Parameter::values("workers", cheetah::ParamLayer::System,
                                      {Json(1), Json(4), Json(16), Json(64)}));
  cheetah::SweepGroup group("grid-group");
  group.add(std::move(sweep));
  campaign.add_group(std::move(group));

  std::printf("Codesign campaign '%s': %zu configurations, objective %s\n\n",
              campaign.name().c_str(), campaign.total_runs(),
              std::string(cheetah::objective_name(campaign.objective())).c_str());

  // "Execute" every run through the calibrated cost model and record
  // metrics into the catalog.
  cheetah::ResultCatalog catalog;
  for (const auto& run : campaign.group("grid-group").generate()) {
    const auto fan_in = static_cast<size_t>(run.param("fan_in").as_int());
    const auto workers = static_cast<size_t>(run.param("workers").as_int());
    const gwas::PastePlan plan = gwas::plan_two_phase_paste(kFiles, fan_in);
    const double runtime =
        gwas::plan_cost_model(plan, kColumnsPerFile, kRows, workers);
    catalog.record(run, {{"runtime_s", runtime},
                         {"subjobs", static_cast<double>(plan.subjobs())},
                         {"node_seconds", runtime * static_cast<double>(workers)}});
  }

  std::printf("%-10s", "fan_in\\w");
  for (int workers : {1, 4, 16, 64}) std::printf(" %10dw", workers);
  std::printf("\n");
  for (int fan_in : {48, 64, 96, 128, 256}) {
    std::printf("%-10d", fan_in);
    for (int workers : {1, 4, 16, 64}) {
      const gwas::PastePlan plan =
          gwas::plan_two_phase_paste(kFiles, static_cast<size_t>(fan_in));
      std::printf(" %11s",
                  format_duration(gwas::plan_cost_model(
                                      plan, kColumnsPerFile, kRows,
                                      static_cast<size_t>(workers)))
                      .c_str());
    }
    std::printf("\n");
  }

  const auto best = catalog.best("runtime_s", campaign.objective());
  std::printf("\nbest for objective: fan_in=%lld workers=%lld (runtime %s)\n",
              static_cast<long long>(best->param("fan_in").as_int()),
              static_cast<long long>(best->param("workers").as_int()),
              format_duration(catalog.metrics(best->id).at("runtime_s")).c_str());

  std::printf("\nparameter impact on runtime (effect range of the mean):\n");
  for (const auto& [parameter, range] : catalog.rank_parameters("runtime_s")) {
    std::printf("  %-10s %s\n", parameter.c_str(),
                format_duration(range).c_str());
  }
  std::printf("\nmain effect of fan_in on subjob count:\n");
  for (const auto& [value, mean] : catalog.main_effect("fan_in", "subjobs")) {
    std::printf("  fan_in=%-6s -> %.0f subjobs\n", value.c_str(), mean);
  }

  // Cheapest config that also respects a node budget: query via metrics.
  const auto frugal = catalog.best("node_seconds", cheetah::Objective::None);
  std::printf("\ncheapest in node-seconds: fan_in=%lld workers=%lld\n",
              static_cast<long long>(frugal->param("fan_in").as_int()),
              static_cast<long long>(frugal->param("workers").as_int()));
  return 0;
}
