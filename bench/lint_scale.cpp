// Workspace-lint scale bench: cold vs digest-cached re-lint of a
// 1000-artifact tree — the committed record (BENCH_lint.json) of what the
// incremental cache in src/lint/workspace.cpp buys.
//
//  1. cold:    every artifact parsed, every rule run, the fixpoint dataflow
//              pass over every stream plane.
//  2. cached:  the same tree again through the same analyzer — digests
//              match, diagnostics replay, nothing re-parses.
//  3. disk:    a fresh analyzer fed by save_cache/load_cache round-trip,
//              the `fairflow-lint --workspace` re-run path.
//  4. touch:   one artifact rewritten — exactly one re-parse, the
//              incremental editing loop.
//
// Writes the table to BENCH_lint.json (path = argv[1] or the default
// below). The generated tree is a realistic mixture: one catalog, and per
// campaign a manifest + stream plane + journal that cross-reference each
// other, so the cross-artifact passes resolve real symbols.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "lint/workspace.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

using namespace ff;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string manifest_text(size_t i) {
  const std::string name = "campaign-" + std::to_string(i);
  return "{\n"
         "  \"name\": \"" + name + "\",\n"
         "  \"app\": {\"name\": \"app\", \"executable\": \"bin/app\",\n"
         "          \"args_template\": \"--x {{x}} --y {{y}}\"},\n"
         "  \"stream_plane\": \"plane-" + std::to_string(i) + "\",\n"
         "  \"groups\": [{\n"
         "    \"name\": \"g\", \"nodes\": 1, \"walltime_s\": 3600,\n"
         "    \"sweeps\": [{\"name\": \"s\", \"parameters\": [\n"
         "      {\"name\": \"x\", \"layer\": \"app\", \"values\": [1, 2, 3]},\n"
         "      {\"name\": \"y\", \"layer\": \"app\", \"values\": [4, 5]}\n"
         "    ]}]\n"
         "  }]\n"
         "}\n";
}

std::string plane_text(size_t i) {
  const std::string name = "plane-" + std::to_string(i);
  return "{\n"
         "  \"graph\": {\n"
         "    \"name\": \"" + name + "\",\n"
         "    \"components\": [\n"
         "      {\"id\": \"src\", \"kind\": \"executable\",\n"
         "       \"ports\": [{\"name\": \"out\", \"direction\": \"out\",\n"
         "                  \"schema\": \"bp:frames:v1\", \"rate_hz\": 100}]},\n"
         "      {\"id\": \"sink\", \"kind\": \"service\", \"service_hz\": 200,\n"
         "       \"ports\": [{\"name\": \"in\", \"direction\": \"in\",\n"
         "                  \"schema\": \"bp:frames:v1\"}]}\n"
         "    ],\n"
         "    \"edges\": [{\"from\": \"src.out\", \"to\": \"sink.in\"}]\n"
         "  },\n"
         "  \"queues\": [{\"queue\": \"q\", \"kind\": \"forward-all\",\n"
         "              \"capacity\": 256, \"overflow\": \"block\"}]\n"
         "}\n";
}

std::string journal_text(size_t i) {
  return "{\"kind\":\"header\",\"schema\":2,\"campaign\":\"campaign-" +
         std::to_string(i) + "\"}\n";
}

constexpr const char* kCatalog =
    "{\n"
    "  \"components\": [],\n"
    "  \"schemas\": [{\"name\": \"frames\", \"version\": 1,\n"
    "               \"container\": \"bp\",\n"
    "               \"fields\": [{\"name\": \"seq\", \"type\": \"int\"}]}]\n"
    "}\n";

/// One catalog + per campaign a manifest, plane, and journal that resolve
/// against each other: (artifacts - 1) / 3 campaigns.
size_t generate_tree(const std::string& root, size_t artifacts) {
  write_file(root + "/catalog.json", kCatalog);
  size_t written = 1;
  for (size_t i = 0; written + 3 <= artifacts; ++i) {
    const std::string dir = root + "/c" + std::to_string(i);
    std::filesystem::create_directories(dir);
    write_file(dir + "/campaign.json", manifest_text(i));
    write_file(dir + "/plane.json", plane_text(i));
    write_file(dir + "/journal.jsonl", journal_text(i));
    written += 3;
  }
  return written;
}

Json run(const std::string& label, lint::WorkspaceAnalyzer& analyzer,
         const std::string& root) {
  lint::WorkspaceStats stats;
  const auto start = Clock::now();
  const lint::LintReport report = analyzer.analyze(root, &stats);
  const double elapsed = seconds_since(start);
  Json row = Json::object();
  row["label"] = label;
  row["seconds"] = elapsed;
  row["artifacts"] = static_cast<int64_t>(stats.artifacts);
  row["reparsed"] = static_cast<int64_t>(stats.reparsed);
  row["cached"] = static_cast<int64_t>(stats.cached);
  row["findings"] = static_cast<int64_t>(report.size());
  row["artifacts_per_s"] =
      elapsed > 0 ? static_cast<double>(stats.artifacts) / elapsed : 0.0;
  std::printf("%-12s %8.4f s  %5zu artifacts  %5zu reparsed  %5zu cached  "
              "%zu findings\n",
              label.c_str(), elapsed, stats.artifacts, stats.reparsed,
              stats.cached, report.size());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_lint.json";
  const size_t target = 1000;

  TempDir tree("lint-bench");
  const size_t artifacts = generate_tree(tree.str(), target);
  std::printf("workspace lint bench: %zu artifacts under %s\n", artifacts,
              tree.str().c_str());

  Json rows = Json::array();
  lint::WorkspaceAnalyzer analyzer;
  rows.push_back(run("cold", analyzer, tree.str()));
  rows.push_back(run("cached", analyzer, tree.str()));

  // The CLI re-run path: the cache round-trips through disk into a fresh
  // analyzer (a different process, as far as the analyzer can tell).
  TempDir scratch("lint-bench-cache");
  const std::string cache_file = scratch.file("cache.json");
  analyzer.save_cache(cache_file);
  lint::WorkspaceAnalyzer reloaded;
  reloaded.load_cache(cache_file);
  rows.push_back(run("disk-cache", reloaded, tree.str()));

  // The editing loop: touch one artifact, everything else replays.
  write_file(tree.str() + "/c0/plane.json", plane_text(0) + "\n");
  rows.push_back(run("touch-one", reloaded, tree.str()));

  Json out = Json::object();
  out["bench"] = "lint_scale";
  out["artifacts"] = static_cast<int64_t>(artifacts);
  out["rows"] = std::move(rows);
  write_file_atomic(out_path, out.pretty() + "\n");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
