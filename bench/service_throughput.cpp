// fairflowd service-layer bench: wire round-trip rate and end-to-end
// campaign throughput through the real socket server (Unix domain,
// newline-delimited JSON), in-process so the numbers isolate the service
// stack from container networking. Two readiness-loop claims get their own
// series: request rate under an idle-watcher fleet (1/64/256/1024
// subscribers — fds, not threads, so the rate and the thread count must
// both stay flat) and submit wire-ack latency at 10^5/10^6 runs (the lazy
// sweep walk: ack time grows linearly, never materializing RunSpecs).
//
// Modes:
//   service_throughput [out.json]   full sweep -> BENCH_service.json
//   service_throughput --smoke      ~2 s floor check (ctest `perf-smoke`)

#include <arpa/inet.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cheetah/campaign.hpp"
#include "service/core.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace {

using namespace ff;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Minimal blocking wire client (mirrors fairflow-ctl's transport).
class Client {
 public:
  explicit Client(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const noexcept { return fd_ >= 0; }

  Json call(const Json& request) {
    const std::string frame = service::encode_frame(request);
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return Json();
      sent += static_cast<size_t>(n);
    }
    std::string line;
    char byte;
    for (;;) {
      const ssize_t n = ::recv(fd_, &byte, 1, 0);
      if (n <= 0) return Json();
      if (byte == '\n') break;
      line.push_back(byte);
    }
    return Json::parse(line);
  }

 private:
  int fd_ = -1;
};

/// The daemon stack, wired exactly as fairflowd_main wires it — except the
/// per-session campaign quota, raised so the throughput sweep (32 campaigns
/// through one session) measures the server, not the quota.
struct Daemon {
  explicit Daemon(const std::string& scratch, size_t workers)
      : core({.root = scratch + "/campaigns",
              .workers = workers,
              .max_campaigns_per_session = 64}),
        dispatcher(core),
        server(dispatcher, {.unix_path = scratch + "/bench.sock"}) {
    server.start();
  }
  ~Daemon() {
    server.stop();
    core.stop();
  }
  service::ServiceCore core;
  service::Dispatcher dispatcher;
  service::Server server;
};

Json tiny_manifest(const std::string& name, int64_t runs) {
  cheetah::AppSpec app;
  app.name = "bench";
  app.executable = "bench_exe";
  app.args_template = "--x {{x}}";
  cheetah::Campaign campaign(name, app);
  cheetah::Sweep sweep("xs");
  sweep.add(cheetah::Parameter::int_range("x", cheetah::ParamLayer::Application,
                                          0, runs - 1));
  cheetah::SweepGroup group("g1");
  group.add(std::move(sweep));
  campaign.add_group(std::move(group));  // default walltime: one allocation
  return campaign.to_json();
}

/// Like tiny_manifest but walltime-sliced, so a canceled mega-campaign
/// only owes one small allocation slice at teardown instead of all runs.
Json sliced_manifest(const std::string& name, int64_t runs) {
  Json manifest = tiny_manifest(name, runs);
  manifest["groups"][0]["nodes"] = int64_t{1};
  manifest["groups"][0]["walltime_s"] = 800.0;
  return manifest;
}

size_t thread_count() {
  std::istringstream status(ff::read_file("/proc/self/status"));
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::atoll(line.c_str() + 8));
    }
  }
  return 0;
}

double bench_ping(const std::string& socket_path, size_t clients,
                  size_t rounds);

/// Ping round-trips/s with `watchers` idle subscribers attached to one
/// campaign, plus the process thread count while they idle. The claim
/// under test: watchers cost fds, not threads — both numbers stay flat
/// from 1 to 1024.
struct WatcherRow {
  size_t watchers = 0;
  double ping_roundtrips_per_s = 0;
  size_t threads = 0;
};
WatcherRow bench_idle_watchers(Daemon& daemon, size_t watchers,
                               size_t rounds) {
  Client submitter(daemon.server.unix_path());
  Json request = Json::object();
  request["cmd"] = "submit";
  request["manifest"] = tiny_manifest("watched-" + std::to_string(watchers), 4);
  if (!submitter.call(request).get_or("ok", false)) return {};
  daemon.core.drain();

  std::vector<std::unique_ptr<Client>> fleet;
  Json subscribe = Json::object();
  subscribe["cmd"] = "subscribe";
  subscribe["campaign"] = "watched-" + std::to_string(watchers);
  for (size_t i = 0; i < watchers; ++i) {
    fleet.push_back(std::make_unique<Client>(daemon.server.unix_path()));
    if (!fleet.back()->ok() ||
        !fleet.back()->call(subscribe).get_or("ok", false)) {
      return {};
    }
  }

  WatcherRow row;
  row.watchers = watchers;
  row.ping_roundtrips_per_s = bench_ping(daemon.server.unix_path(), 1, rounds);
  row.threads = thread_count();
  return row;
}

/// Submit wire-ack latency for a `runs`-run campaign, then cancel it (the
/// ack is the measurement; executing a million simulated runs is not).
/// The lazy path keeps this linear: the sweep is walked run-by-run for the
/// journal digest and task specs, never materialized as a RunSpec vector,
/// and past the inline-run-list threshold the endpoint goes sparse (no
/// per-run directories).
struct AckRow {
  int64_t runs = 0;
  double ack_seconds = 0;
  double runs_per_s = 0;
};
AckRow bench_submit_ack(Daemon& daemon, int64_t runs) {
  Client client(daemon.server.unix_path());
  if (!client.ok()) return {};
  const std::string name = "mega-" + std::to_string(runs);
  Json request = Json::object();
  request["cmd"] = "submit";
  request["manifest"] = sliced_manifest(name, runs);
  const auto start = Clock::now();
  if (!client.call(request).get_or("ok", false)) return {};
  AckRow row;
  row.runs = runs;
  row.ack_seconds = seconds_since(start);
  row.runs_per_s = static_cast<double>(runs) / row.ack_seconds;
  Json cancel = Json::object();
  cancel["cmd"] = "cancel";
  cancel["campaign"] = name;
  client.call(cancel);
  return row;
}

/// Ping round-trips/s across `clients` concurrent connections.
double bench_ping(const std::string& socket_path, size_t clients,
                  size_t rounds) {
  std::vector<std::thread> workers;
  std::vector<double> rates(clients, 0);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      Client client(socket_path);
      if (!client.ok()) return;
      Json ping = Json::object();
      ping["cmd"] = "ping";
      const auto start = Clock::now();
      for (size_t i = 0; i < rounds; ++i) {
        if (!client.call(ping).get_or("ok", false)) return;
      }
      rates[c] = static_cast<double>(rounds) / seconds_since(start);
    });
  }
  for (std::thread& worker : workers) worker.join();
  double total = 0;
  for (double rate : rates) total += rate;
  return total;
}

/// Submit `campaigns` campaigns of `runs` runs over the wire, drain the
/// core, return {submissions/s (wire ack), end-to-end runs/s}.
struct SubmitRates {
  double submissions_per_s = 0;
  double runs_per_s = 0;
};
SubmitRates bench_submit(Daemon& daemon, const std::string& tag,
                         size_t campaigns, int64_t runs) {
  Client client(daemon.server.unix_path());
  if (!client.ok()) return {};
  const auto start = Clock::now();
  for (size_t i = 0; i < campaigns; ++i) {
    Json request = Json::object();
    request["cmd"] = "submit";
    request["manifest"] =
        tiny_manifest(tag + "-" + std::to_string(i), runs);
    if (!client.call(request).get_or("ok", false)) return {};
  }
  const double submit_s = seconds_since(start);
  daemon.core.drain();
  const double total_s = seconds_since(start);
  SubmitRates rates;
  rates.submissions_per_s = static_cast<double>(campaigns) / submit_s;
  rates.runs_per_s =
      static_cast<double>(campaigns * static_cast<size_t>(runs)) / total_s;
  return rates;
}

// --- smoke mode -------------------------------------------------------------

/// Floors ~10x under a plain container build: only an order-of-magnitude
/// regression (a lock held across a slice, an O(n^2) queue scan) trips them.
int run_smoke() {
  constexpr double kPingFloor = 2000.0;     // round-trips/s, 1 client
  constexpr double kSubmitFloor = 10.0;     // wire submissions/s
  // Submit-ack rate at 10^6 runs (runs acknowledged per second of wire
  // latency). Trips on the lazy path regressing to materialization or the
  // endpoint regressing to per-run directories — both order-of-magnitude
  // cliffs, not jitter.
  constexpr double kMegaAckFloor = 30000.0;
  constexpr int kAttempts = 3;
  std::printf("perf-smoke(service): best of %d\n", kAttempts);
  double best_ping = 0, best_submit = 0, best_mega = 0;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    TempDir dir("bench_service_smoke");
    Daemon daemon(dir.str(), 2);
    best_ping =
        std::max(best_ping, bench_ping(daemon.server.unix_path(), 1, 500));
    best_submit = std::max(
        best_submit,
        bench_submit(daemon, "smoke", 8, 4).submissions_per_s);
    best_mega =
        std::max(best_mega, bench_submit_ack(daemon, 1000000).runs_per_s);
    if (best_ping >= kPingFloor && best_submit >= kSubmitFloor &&
        best_mega >= kMegaAckFloor) {
      std::printf(
          "perf-smoke(service): OK (ping %.0f/s, submit %.1f/s, "
          "10^6-run ack %.0f runs/s)\n",
          best_ping, best_submit, best_mega);
      return 0;
    }
  }
  std::printf(
      "perf-smoke(service): REGRESSION (ping %.0f/s vs %.0f, submit %.1f/s "
      "vs %.1f, 10^6-run ack %.0f runs/s vs %.0f)\n",
      best_ping, kPingFloor, best_submit, kSubmitFloor, best_mega,
      kMegaAckFloor);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    out_path = argv[i];
  }

  Json series = Json::array();
  for (size_t clients : {size_t{1}, size_t{4}}) {
    TempDir dir("bench_service");
    Daemon daemon(dir.str(), 2);
    const double ping = bench_ping(daemon.server.unix_path(), clients, 2000);
    const SubmitRates rates =
        bench_submit(daemon, "full", 32, 8);
    std::printf("%zu client(s): ping %.0f rt/s  submit %.1f/s  "
                "end-to-end %.0f runs/s\n",
                clients, ping, rates.submissions_per_s, rates.runs_per_s);
    Json row = Json::object();
    row["clients"] = static_cast<int64_t>(clients);
    row["ping_roundtrips_per_s"] = ping;
    row["submissions_per_s"] = rates.submissions_per_s;
    row["end_to_end_runs_per_s"] = rates.runs_per_s;
    series.push_back(std::move(row));
  }
  // Idle-watcher scaling: one daemon per fleet size, 1 -> 1024 subscribers
  // idling on a finished campaign while a single client measures ping rate.
  Json watcher_series = Json::array();
  for (size_t watchers : {size_t{1}, size_t{64}, size_t{256}, size_t{1024}}) {
    TempDir dir("bench_service_watch");
    Daemon daemon(dir.str(), 2);
    const WatcherRow row = bench_idle_watchers(daemon, watchers, 2000);
    std::printf("%4zu watcher(s): ping %.0f rt/s  threads %zu\n",
                row.watchers, row.ping_roundtrips_per_s, row.threads);
    Json entry = Json::object();
    entry["watchers"] = static_cast<int64_t>(row.watchers);
    entry["ping_roundtrips_per_s"] = row.ping_roundtrips_per_s;
    entry["threads"] = static_cast<int64_t>(row.threads);
    watcher_series.push_back(std::move(entry));
  }

  // Submit wire-ack latency through the lazy sweep walk.
  Json ack_series = Json::array();
  for (int64_t runs : {int64_t{100000}, int64_t{1000000}}) {
    TempDir dir("bench_service_mega");
    Daemon daemon(dir.str(), 2);
    const AckRow row = bench_submit_ack(daemon, runs);
    std::printf("submit %8lld runs: ack %.3f s  (%.0f runs/s)\n",
                static_cast<long long>(row.runs), row.ack_seconds,
                row.runs_per_s);
    Json entry = Json::object();
    entry["runs"] = row.runs;
    entry["ack_seconds"] = row.ack_seconds;
    entry["runs_per_s"] = row.runs_per_s;
    ack_series.push_back(std::move(entry));
  }

  Json out = Json::object();
  out["bench"] = "service_throughput";
  out["series"] = series;
  out["idle_watchers"] = watcher_series;
  out["submit_ack"] = ack_series;
  write_file_atomic(out_path, out.dump() + "\n");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
