// fairflowd service-layer bench: wire round-trip rate and end-to-end
// campaign throughput through the real socket server (Unix domain,
// newline-delimited JSON), in-process so the numbers isolate the service
// stack from container networking.
//
// Modes:
//   service_throughput [out.json]   full sweep -> BENCH_service.json
//   service_throughput --smoke      ~2 s floor check (ctest `perf-smoke`)

#include <arpa/inet.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cheetah/campaign.hpp"
#include "service/core.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace {

using namespace ff;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Minimal blocking wire client (mirrors fairflow-ctl's transport).
class Client {
 public:
  explicit Client(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const noexcept { return fd_ >= 0; }

  Json call(const Json& request) {
    const std::string frame = service::encode_frame(request);
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return Json();
      sent += static_cast<size_t>(n);
    }
    std::string line;
    char byte;
    for (;;) {
      const ssize_t n = ::recv(fd_, &byte, 1, 0);
      if (n <= 0) return Json();
      if (byte == '\n') break;
      line.push_back(byte);
    }
    return Json::parse(line);
  }

 private:
  int fd_ = -1;
};

/// The daemon stack, wired exactly as fairflowd_main wires it.
struct Daemon {
  explicit Daemon(const std::string& scratch, size_t workers)
      : core({.root = scratch + "/campaigns", .workers = workers}),
        dispatcher(core),
        server(dispatcher, {.unix_path = scratch + "/bench.sock"}) {
    server.start();
  }
  ~Daemon() {
    server.stop();
    core.stop();
  }
  service::ServiceCore core;
  service::Dispatcher dispatcher;
  service::Server server;
};

Json tiny_manifest(const std::string& name, int64_t runs) {
  cheetah::AppSpec app;
  app.name = "bench";
  app.executable = "bench_exe";
  app.args_template = "--x {{x}}";
  cheetah::Campaign campaign(name, app);
  cheetah::Sweep sweep("xs");
  sweep.add(cheetah::Parameter::int_range("x", cheetah::ParamLayer::Application,
                                          0, runs - 1));
  cheetah::SweepGroup group("g1");
  group.add(std::move(sweep));
  campaign.add_group(std::move(group));  // default walltime: one allocation
  return campaign.to_json();
}

/// Ping round-trips/s across `clients` concurrent connections.
double bench_ping(const std::string& socket_path, size_t clients,
                  size_t rounds) {
  std::vector<std::thread> workers;
  std::vector<double> rates(clients, 0);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      Client client(socket_path);
      if (!client.ok()) return;
      Json ping = Json::object();
      ping["cmd"] = "ping";
      const auto start = Clock::now();
      for (size_t i = 0; i < rounds; ++i) {
        if (!client.call(ping).get_or("ok", false)) return;
      }
      rates[c] = static_cast<double>(rounds) / seconds_since(start);
    });
  }
  for (std::thread& worker : workers) worker.join();
  double total = 0;
  for (double rate : rates) total += rate;
  return total;
}

/// Submit `campaigns` campaigns of `runs` runs over the wire, drain the
/// core, return {submissions/s (wire ack), end-to-end runs/s}.
struct SubmitRates {
  double submissions_per_s = 0;
  double runs_per_s = 0;
};
SubmitRates bench_submit(Daemon& daemon, const std::string& tag,
                         size_t campaigns, int64_t runs) {
  Client client(daemon.server.unix_path());
  if (!client.ok()) return {};
  const auto start = Clock::now();
  for (size_t i = 0; i < campaigns; ++i) {
    Json request = Json::object();
    request["cmd"] = "submit";
    request["manifest"] =
        tiny_manifest(tag + "-" + std::to_string(i), runs);
    if (!client.call(request).get_or("ok", false)) return {};
  }
  const double submit_s = seconds_since(start);
  daemon.core.drain();
  const double total_s = seconds_since(start);
  SubmitRates rates;
  rates.submissions_per_s = static_cast<double>(campaigns) / submit_s;
  rates.runs_per_s =
      static_cast<double>(campaigns * static_cast<size_t>(runs)) / total_s;
  return rates;
}

// --- smoke mode -------------------------------------------------------------

/// Floors ~10x under a plain container build: only an order-of-magnitude
/// regression (a lock held across a slice, an O(n^2) queue scan) trips them.
int run_smoke() {
  constexpr double kPingFloor = 2000.0;     // round-trips/s, 1 client
  constexpr double kSubmitFloor = 10.0;     // wire submissions/s
  constexpr int kAttempts = 3;
  std::printf("perf-smoke(service): best of %d\n", kAttempts);
  double best_ping = 0, best_submit = 0;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    TempDir dir("bench_service_smoke");
    Daemon daemon(dir.str(), 2);
    best_ping =
        std::max(best_ping, bench_ping(daemon.server.unix_path(), 1, 500));
    best_submit = std::max(
        best_submit,
        bench_submit(daemon, "smoke", 8, 4).submissions_per_s);
    if (best_ping >= kPingFloor && best_submit >= kSubmitFloor) {
      std::printf("perf-smoke(service): OK (ping %.0f/s, submit %.1f/s)\n",
                  best_ping, best_submit);
      return 0;
    }
  }
  std::printf(
      "perf-smoke(service): REGRESSION (ping %.0f/s vs %.0f, submit %.1f/s "
      "vs %.1f)\n",
      best_ping, kPingFloor, best_submit, kSubmitFloor);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    out_path = argv[i];
  }

  Json series = Json::array();
  for (size_t clients : {size_t{1}, size_t{4}}) {
    TempDir dir("bench_service");
    Daemon daemon(dir.str(), 2);
    const double ping = bench_ping(daemon.server.unix_path(), clients, 2000);
    const SubmitRates rates =
        bench_submit(daemon, "full", 32, 8);
    std::printf("%zu client(s): ping %.0f rt/s  submit %.1f/s  "
                "end-to-end %.0f runs/s\n",
                clients, ping, rates.submissions_per_s, rates.runs_per_s);
    Json row = Json::object();
    row["clients"] = static_cast<int64_t>(clients);
    row["ping_roundtrips_per_s"] = ping;
    row["submissions_per_s"] = rates.submissions_per_s;
    row["end_to_end_runs_per_s"] = rates.runs_per_s;
    series.push_back(std::move(row));
  }
  Json out = Json::object();
  out["bench"] = "service_throughput";
  out["series"] = series;
  write_file_atomic(out_path, out.dump() + "\n");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
