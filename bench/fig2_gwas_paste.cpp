// Fig. 2 reproduction: "A traditional manual script versus Skel-based
// automated script. Red text indicates fields or actions that require
// manual intervention by the user for a new run configuration."
//
// The figure is qualitative; we quantify it: per *new run configuration*
// (new dataset size / machine / account), how many manual interventions
// does each approach need? The manual flow edits and submits every subjob
// script; the Skel flow edits one model and submits one campaign. We also
// generate the real artifacts and execute a small plan end-to-end on disk
// to show the generated workflow actually works.

#include <cstdio>

#include "gwas/genotype.hpp"
#include "gwas/workflow.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

using namespace ff;

int main() {
  std::printf("Fig 2 — manual vs Skel-generated paste workflow\n");
  std::printf("interventions required per NEW run configuration\n\n");
  std::printf("%-8s %-9s | %-7s %-8s %-8s %-7s | %-6s %-8s\n", "files",
              "subjobs", "m.edit", "m.submit", "m.check", "m.total", "skel",
              "ratio");

  for (size_t files : {32, 128, 512, 1606}) {
    const size_t fan_in = files <= 128 ? 16 : 48;
    const gwas::PastePlan plan = gwas::plan_two_phase_paste(files, fan_in);
    const gwas::InterventionCount manual = gwas::manual_interventions(plan);
    const gwas::InterventionCount skel = gwas::skel_interventions(plan);
    std::printf("%-8zu %-9zu | %-7zu %-8zu %-8zu %-7zu | %-6zu %5.1fx\n", files,
                plan.subjobs(), manual.edits, manual.submissions, manual.checks,
                manual.total(), skel.total(),
                static_cast<double>(manual.total()) /
                    static_cast<double>(skel.total()));
  }

  // Model-driven generation: show the single point of user interaction.
  std::printf("\ngenerated artifacts for files=100, fan_in=16 (model-driven):\n");
  const Json model_json =
      gwas::make_paste_model("/gpfs/alpine/proj/shards", 100, 16, "BIF101",
                             "2:00", 4);
  const skel::Model model(model_json, gwas::paste_model_schema());
  const auto artifacts = gwas::make_paste_generator().generate(model);
  for (const auto& artifact : artifacts) {
    std::printf("  %-28s %5zu bytes%s\n", artifact.path.c_str(),
                artifact.content.size(), artifact.executable ? "  (exec)" : "");
  }
  std::printf("customization surface (model paths the templates consume):\n");
  for (const auto& path : gwas::make_paste_generator().customization_surface()) {
    std::printf("  %s\n", path.c_str());
  }

  // End-to-end proof on real files: shard a synthetic genotype matrix,
  // run the two-phase plan, verify the merge.
  gwas::GwasConfig config;
  config.samples = 60;
  config.snps = 48;
  config.causal_snps = 3;
  const gwas::GwasData data = gwas::make_gwas_data(config, 42);
  TempDir dir;
  const auto shards = gwas::write_genotype_shards(data.genotypes, dir.str(), 12);
  const gwas::PastePlan plan = gwas::plan_two_phase_paste(shards.size(), 4);
  const std::string merged_path = gwas::execute_paste_plan(
      plan, shards, dir.str(), dir.file("merged.tsv"), 2);
  CsvOptions tsv;
  tsv.separator = '\t';
  const Table merged = read_csv_file(merged_path, tsv);
  std::printf("\nend-to-end: %zu shards -> %zu sub-pastes -> merged %zux%zu "
              "(expected %ux%u) : %s\n",
              shards.size(), plan.groups.size(), merged.rows(), merged.cols(),
              60, 49, (merged.rows() == 60 && merged.cols() == 49) ? "OK" : "FAIL");

  // And the science still works on the merged output.
  const auto hits = gwas::association_scan(merged, data.phenotypes);
  std::printf("top association on merged data: %s (r2=%.2f)\n",
              hits[0].snp.c_str(), hits[0].r2);
  return 0;
}
