# Figure/table reproduction benches (plain executables printing the paper's
# rows/series) plus google-benchmark micro benches. All binaries land in
# ${CMAKE_BINARY_DIR}/bench with nothing else, so the whole harness runs as
#   for b in build/bench/*; do $b; done

function(ff_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

ff_add_bench(fig2_gwas_paste ff_gwas ff_cheetah)
ff_add_bench(fig3_ckpt_overhead ff_ckpt)
ff_add_bench(fig4_ckpt_variation ff_ckpt)
ff_add_bench(fig5_stream_policies ff_stream)
ff_add_bench(fig6_irf_timeline ff_savanna ff_irf)
ff_add_bench(fig7_irf_campaign ff_savanna ff_cheetah ff_irf)
ff_add_bench(tab1_gauge_assessment ff_core ff_gwas)
ff_add_bench(ablation_ckpt_restart ff_ckpt ff_cluster)
ff_add_bench(ablation_codesign ff_cheetah ff_gwas)
ff_add_bench(campaign_scale ff_savanna ff_cheetah)
ff_add_bench(lint_scale ff_lint)
ff_add_bench(service_throughput ff_service)
ff_add_bench(micro_bench ff_util ff_skel ff_stream ff_cluster ff_irf ff_gwas
             benchmark::benchmark benchmark::benchmark_main)

# `cmake --build build --target bench_irf` reruns the iRF engine micro
# benches (forest fit + full iRF-LOOP sweeps) and refreshes BENCH_irf.json
# at the repo root — the committed record of engine performance.
add_custom_target(bench_irf
  COMMAND $<TARGET_FILE:micro_bench>
          "--benchmark_filter=BM_ForestFit|BM_IrfLoop"
          --benchmark_out=${CMAKE_SOURCE_DIR}/BENCH_irf.json
          --benchmark_out_format=json
  DEPENDS micro_bench
  COMMENT "iRF engine benches -> BENCH_irf.json"
  VERBATIM)

# `cmake --build build --target bench_stream` reruns the Fig. 5 concurrent
# data-plane bench (policy x worker-count grid, overflow tradeoffs) and
# refreshes BENCH_stream.json at the repo root. Because the bench binary is
# wired into the default build, bit-rot in the bench fails the build, not
# just this target.
add_custom_target(bench_stream
  COMMAND $<TARGET_FILE:fig5_stream_policies>
          ${CMAKE_SOURCE_DIR}/BENCH_stream.json
  DEPENDS fig5_stream_policies
  COMMENT "Fig. 5 stream data-plane bench -> BENCH_stream.json"
  VERBATIM)

# `cmake --build build --target bench_campaign` reruns the campaign-spine
# scale bench (lazy sweep submission, journal append modes, checkpointed
# resume at 10^3/10^4/10^5 runs) and refreshes BENCH_campaign.json at the
# repo root — the committed record of how far the spine scales.
add_custom_target(bench_campaign
  COMMAND $<TARGET_FILE:campaign_scale>
          ${CMAKE_SOURCE_DIR}/BENCH_campaign.json
  DEPENDS campaign_scale
  COMMENT "campaign spine scale bench -> BENCH_campaign.json"
  VERBATIM)

# `cmake --build build --target bench_lint` reruns the workspace-lint scale
# bench (cold vs digest-cached re-lint of a generated 1000-artifact tree)
# and refreshes BENCH_lint.json at the repo root — the committed record of
# what the incremental cache buys.
add_custom_target(bench_lint
  COMMAND $<TARGET_FILE:lint_scale>
          ${CMAKE_SOURCE_DIR}/BENCH_lint.json
  DEPENDS lint_scale
  COMMENT "workspace lint scale bench -> BENCH_lint.json"
  VERBATIM)

# A ~2 s paced-throughput sanity check in the default ctest run: the
# threaded plane at 1 worker must not be slower than the synchronous
# scheduler (records/s within 10 %, p50 within 2x) — a cheap guard
# against handoff regressions in the channel or drain path.
# RUN_SERIAL: a latency measurement on a small host is meaningless while
# ctest runs other tests beside it.
add_test(NAME perf_smoke COMMAND fig5_stream_policies --smoke)
set_tests_properties(perf_smoke PROPERTIES
  LABELS perf-smoke TIMEOUT 120 RUN_SERIAL TRUE)

# Campaign-spine counterpart (best-of-3 at 10^4 runs): lazy submission,
# group-commit journal append, and checkpointed resume must each clear a
# floor ~10x below a plain build's measured rate — a guard against
# accidentally quadratic paths in the million-run spine, not a latency SLO.
add_test(NAME perf_smoke_campaign COMMAND campaign_scale --smoke)
set_tests_properties(perf_smoke_campaign PROPERTIES
  LABELS perf-smoke TIMEOUT 120 RUN_SERIAL TRUE)

# fairflowd counterpart: wire round-trips/s, submissions/s, and the
# 10^6-run submit-ack rate through the real Unix-socket server must clear
# floors ~10x under a plain build — a guard against a lock held across an
# allocation slice, a per-request allocation storm in the framing loop, or
# the lazy submit path regressing to materializing a million RunSpecs.
# RUN_SERIAL for the same reason as above: socket round-trip rates measured
# beside a parallel ctest run are noise.
add_test(NAME perf_smoke_service COMMAND service_throughput --smoke)
set_tests_properties(perf_smoke_service PROPERTIES
  LABELS perf-smoke TIMEOUT 120 RUN_SERIAL TRUE)

# `cmake --build build --target bench_service` reruns the fairflowd wire
# bench (ping round-trips and end-to-end campaign throughput at 1 and 4
# clients, idle-watcher scaling at 1/64/256/1024 subscribers, submit-ack
# latency at 10^5/10^6 runs) and refreshes BENCH_service.json at the repo
# root.
add_custom_target(bench_service
  COMMAND $<TARGET_FILE:service_throughput>
          ${CMAKE_SOURCE_DIR}/BENCH_service.json
  DEPENDS service_throughput
  COMMENT "fairflowd service wire bench -> BENCH_service.json"
  VERBATIM)
