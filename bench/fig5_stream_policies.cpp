// Fig. 5 / Section V-C reproduction: "Finer granularity in workflow
// construction allows greater reuse. In this instance, data selection
// criteria is separated from data movement infrastructure."
//
// We measure four things:
//  1. Reuse: when the selection policy changes, how many generated lines
//     change? (zero — the communication components are untouched)
//     vs when the schema changes (only the marshal component changes).
//  2. Throughput of the generated marshalling path.
//  3. The concurrent data plane: per-policy throughput, delivery latency
//     percentiles, and drop counts at sync / 1 / 2 / 4 / 8 worker threads,
//     plus the overflow-policy tradeoff under a saturating producer. The
//     downstream cost is modelled as a short per-record sleep (simulated
//     transport/analysis latency), which worker threads overlap — so the
//     scaling here is latency hiding, not core count, and reproduces even
//     on a single-CPU host.
//  4. Runtime steering: install a policy unknown at generation time via
//     the control channel, now landing on the concurrent plane.
//
// Writes the measured series to BENCH_stream.json (path = argv[1] or the
// default below) — the committed record of data-plane performance.

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "stream/codegen.hpp"
#include "stream/marshal.hpp"
#include "stream/pipeline.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ff;
using Clock = std::chrono::steady_clock;

namespace {

constexpr size_t kQueues = 8;          // one per simulated downstream sink
constexpr size_t kRecords = 250;       // per plane run
constexpr auto kConsumerCost = std::chrono::microseconds(50);

double seconds_since(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

stream::StreamSchema instrument_schema(size_t extra_fields) {
  stream::StreamSchema schema;
  schema.name = "instrument";
  schema.version = 1;
  schema.fields = {{"shot", "int"}, {"energy", "double"}};
  for (size_t i = 0; i < extra_fields; ++i) {
    schema.fields.push_back({"aux" + std::to_string(i), "double"});
  }
  return schema;
}

stream::Record make_record(uint64_t sequence, size_t extra_fields) {
  stream::Record record;
  record.sequence = sequence;
  record.timestamp = static_cast<double>(sequence) * 0.001;
  record.values = {stream::Value{static_cast<int64_t>(sequence)},
                   stream::Value{1.5 * static_cast<double>(sequence)}};
  for (size_t i = 0; i < extra_fields; ++i) {
    record.values.emplace_back(0.25 * static_cast<double>(i));
  }
  return record;
}

struct PolicySpec {
  std::string kind;
  Json args;
  uint64_t punctuate_every;  // 0 = never
};

std::vector<PolicySpec> plane_policies() {
  Json window_args = Json::object();
  window_args["capacity"] = 32;
  Json stride_args = Json::object();
  stride_args["stride"] = 4;
  return {
      {"forward-all", Json::object(), 0},
      {"sliding-window-count", window_args, 64},
      {"sample-every", stride_args, 0},
  };
}

struct PlaneResult {
  double records_s = 0;   // published records / wall seconds
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  double p50_ms = 0;      // publish -> consumer delivery latency
  double p95_ms = 0;
  double p99_ms = 0;
};

/// Collects publish->delivery latencies; the consumer also pays the
/// simulated downstream cost.
struct SinkModel {
  Clock::time_point epoch = Clock::now();
  std::mutex mutex;
  std::vector<double> latencies_ms;
  uint64_t delivered = 0;

  stream::DataScheduler::Consumer consumer() {
    return [this](const std::string&, const stream::Record& record) {
      const double now = seconds_since(epoch);
      {
        std::lock_guard lock(mutex);
        ++delivered;
        latencies_ms.push_back((now - record.timestamp) * 1e3);
      }
      std::this_thread::sleep_for(kConsumerCost);
    };
  }

  void fill(PlaneResult& result) {
    std::lock_guard lock(mutex);
    result.delivered = delivered;
    if (latencies_ms.empty()) return;
    result.p50_ms = percentile(latencies_ms, 50);
    result.p95_ms = percentile(latencies_ms, 95);
    result.p99_ms = percentile(latencies_ms, 99);
  }
};

/// One run of the concurrent plane: kQueues virtual queues sharing one
/// policy kind, a single instrument publishing kRecords, `workers` threads
/// draining. Timestamps carry the publish instant so consumers can measure
/// end-to-end latency.
PlaneResult run_concurrent_plane(const PolicySpec& spec, size_t workers) {
  stream::StreamPipeline pipeline(workers);
  SinkModel sink;
  pipeline.subscribe(sink.consumer());
  const auto factory = stream::PolicyFactory::with_builtins();
  for (size_t q = 0; q < kQueues; ++q) {
    pipeline.install_queue("q" + std::to_string(q),
                           factory.build(spec.kind, spec.args),
                           {.capacity = 64, .overflow = stream::Overflow::Block});
  }

  const auto start = Clock::now();
  for (uint64_t i = 0; i < kRecords; ++i) {
    stream::Record record = make_record(i, 2);
    record.timestamp = seconds_since(sink.epoch);
    pipeline.publish(record);
    if (spec.punctuate_every > 0 && (i + 1) % spec.punctuate_every == 0) {
      pipeline.punctuate(Json::object());
    }
  }
  pipeline.wait_quiescent();
  const double wall = seconds_since(start);
  pipeline.shutdown();

  PlaneResult result;
  result.records_s = static_cast<double>(kRecords) / wall;
  result.dropped = pipeline.totals().dropped;
  sink.fill(result);
  return result;
}

/// The pre-refactor baseline: the same policies on the synchronous
/// DataScheduler, where every delivery (and its simulated downstream cost)
/// runs inline on the publishing thread.
PlaneResult run_sync_plane(const PolicySpec& spec) {
  stream::DataScheduler scheduler;
  SinkModel sink;
  scheduler.subscribe(sink.consumer());
  const auto factory = stream::PolicyFactory::with_builtins();
  for (size_t q = 0; q < kQueues; ++q) {
    scheduler.install_queue("q" + std::to_string(q),
                            factory.build(spec.kind, spec.args));
  }

  const auto start = Clock::now();
  for (uint64_t i = 0; i < kRecords; ++i) {
    stream::Record record = make_record(i, 2);
    record.timestamp = seconds_since(sink.epoch);
    scheduler.publish(record);
    if (spec.punctuate_every > 0 && (i + 1) % spec.punctuate_every == 0) {
      scheduler.punctuate(Json::object());
    }
  }
  const double wall = seconds_since(start);

  PlaneResult result;
  result.records_s = static_cast<double>(kRecords) / wall;
  sink.fill(result);
  return result;
}

/// Overflow-policy tradeoff: a producer publishing flat out into one queue
/// with a deliberately slow consumer. block = lossless backpressure;
/// drop-oldest / keep-latest shed load to stay fresh.
PlaneResult run_overflow(stream::Overflow overflow) {
  stream::StreamPipeline pipeline(2);
  SinkModel sink;
  auto base = sink.consumer();
  pipeline.subscribe([&base](const std::string& queue, const stream::Record& r) {
    base(queue, r);
    std::this_thread::sleep_for(std::chrono::microseconds(150));  // extra-slow sink
  });
  pipeline.install_queue("tap", std::make_unique<stream::ForwardAllPolicy>(),
                         {.capacity = 16, .overflow = overflow});

  constexpr uint64_t kBurst = 1500;
  const auto start = Clock::now();
  for (uint64_t i = 0; i < kBurst; ++i) {
    stream::Record record = make_record(i, 2);
    record.timestamp = seconds_since(sink.epoch);
    pipeline.publish(record);
  }
  pipeline.wait_quiescent();
  const double wall = seconds_since(start);
  pipeline.shutdown();

  PlaneResult result;
  result.records_s = static_cast<double>(kBurst) / wall;
  result.dropped = pipeline.totals().dropped;
  sink.fill(result);
  return result;
}

Json result_json(const PlaneResult& result) {
  Json out = Json::object();
  out["records_s"] = result.records_s;
  out["delivered"] = static_cast<int64_t>(result.delivered);
  out["dropped"] = static_cast<int64_t>(result.dropped);
  out["latency_ms_p50"] = result.p50_ms;
  out["latency_ms_p95"] = result.p95_ms;
  out["latency_ms_p99"] = result.p99_ms;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_stream.json";
  std::printf("Fig 5 — generated communication + concurrent data plane\n\n");

  Json bench = Json::object();
  bench["schema"] = std::string("fairflow.bench.stream/1");
  bench["queues"] = static_cast<int64_t>(kQueues);
  bench["records"] = static_cast<int64_t>(kRecords);
  bench["consumer_cost_us"] =
      static_cast<int64_t>(kConsumerCost.count());
  bench["hardware_concurrency"] =
      static_cast<int64_t>(std::thread::hardware_concurrency());

  // 1. Reuse accounting under change.
  const auto base = stream::generate_comm_code(instrument_schema(2));
  const auto wider = stream::generate_comm_code(instrument_schema(3));
  size_t unchanged = 0;
  size_t changed = 0;
  for (const auto& artifact : base) {
    for (const auto& other : wider) {
      if (other.path != artifact.path) continue;
      if (other.content == artifact.content) ++unchanged;
      else ++changed;
    }
  }
  std::printf("schema change (add one field): %zu artifacts regenerated, %zu "
              "byte-identical (sink/source skeletons reused)\n",
              changed, unchanged);
  std::printf("policy change (e.g. forward-all -> sliding window): 0 of %zu "
              "generated lines change — policies install at runtime\n\n",
              stream::generated_loc(base));

  // 2. Marshalling cost (the generated data path).
  {
    const size_t kMarshalRecords = 200000;
    stream::Encoder encoder(instrument_schema(2));
    const auto start = Clock::now();
    for (uint64_t i = 0; i < kMarshalRecords; ++i) {
      encoder.append(make_record(i, 2));
    }
    const double encode_s = seconds_since(start);
    const auto decode_start = Clock::now();
    const auto decoded = stream::decode_stream(encoder.bytes());
    const double decode_s = seconds_since(decode_start);
    std::printf("marshalling: encode %.2f Mrec/s, decode %.2f Mrec/s, %s/rec\n\n",
                kMarshalRecords / encode_s / 1e6,
                decoded.records.size() / decode_s / 1e6,
                format_bytes(static_cast<double>(encoder.bytes().size()) /
                             kMarshalRecords)
                    .c_str());
    Json marshal = Json::object();
    marshal["encode_mrec_s"] = kMarshalRecords / encode_s / 1e6;
    marshal["decode_mrec_s"] = decoded.records.size() / decode_s / 1e6;
    bench["marshal"] = marshal;
  }

  // 3. The concurrent plane: policy x worker-count grid.
  std::printf("concurrent plane: %zu queues, %zu records, %lld us simulated "
              "downstream cost per delivery\n",
              kQueues, kRecords,
              static_cast<long long>(kConsumerCost.count()));
  std::printf("%-22s %8s %12s %10s %8s %10s %10s\n", "policy", "workers",
              "records/s", "delivered", "dropped", "p50 ms", "p99 ms");
  Json plane = Json::array();
  double one_worker_forward = 0;
  double four_worker_forward = 0;
  for (const PolicySpec& spec : plane_policies()) {
    const PlaneResult sync = run_sync_plane(spec);
    std::printf("%-22s %8s %12.0f %10llu %8llu %10.2f %10.2f\n",
                spec.kind.c_str(), "sync", sync.records_s,
                static_cast<unsigned long long>(sync.delivered),
                static_cast<unsigned long long>(sync.dropped), sync.p50_ms,
                sync.p99_ms);
    Json sync_row = result_json(sync);
    sync_row["policy"] = spec.kind;
    sync_row["workers"] = static_cast<int64_t>(0);
    plane.push_back(sync_row);
    for (size_t workers : {1u, 2u, 4u, 8u}) {
      const PlaneResult result = run_concurrent_plane(spec, workers);
      std::printf("%-22s %8zu %12.0f %10llu %8llu %10.2f %10.2f\n",
                  spec.kind.c_str(), workers, result.records_s,
                  static_cast<unsigned long long>(result.delivered),
                  static_cast<unsigned long long>(result.dropped),
                  result.p50_ms, result.p99_ms);
      Json row = result_json(result);
      row["policy"] = spec.kind;
      row["workers"] = static_cast<int64_t>(workers);
      plane.push_back(row);
      if (spec.kind == "forward-all" && workers == 1) {
        one_worker_forward = result.records_s;
      }
      if (spec.kind == "forward-all" && workers == 4) {
        four_worker_forward = result.records_s;
      }
    }
  }
  bench["plane"] = plane;
  const double speedup =
      one_worker_forward > 0 ? four_worker_forward / one_worker_forward : 0;
  bench["speedup_4w_vs_1w_forward_all"] = speedup;
  std::printf("forward-all speedup, 4 workers vs 1: %.2fx "
              "(block policy, zero drops)\n\n", speedup);

  // 3b. Overflow tradeoff under a saturating producer.
  std::printf("overflow policies (capacity 16, saturating producer, "
              "slow sink):\n");
  std::printf("%-14s %12s %10s %8s %10s\n", "overflow", "records/s",
              "delivered", "dropped", "p99 ms");
  Json overflow_rows = Json::array();
  for (stream::Overflow overflow :
       {stream::Overflow::Block, stream::Overflow::DropOldest,
        stream::Overflow::KeepLatest}) {
    const PlaneResult result = run_overflow(overflow);
    std::printf("%-14s %12.0f %10llu %8llu %10.2f\n",
                stream::overflow_name(overflow), result.records_s,
                static_cast<unsigned long long>(result.delivered),
                static_cast<unsigned long long>(result.dropped),
                result.p99_ms);
    Json row = result_json(result);
    row["overflow"] = std::string(stream::overflow_name(overflow));
    overflow_rows.push_back(row);
  }
  bench["overflow"] = overflow_rows;

  // 4. The steering scenario, now on the concurrent plane.
  {
    stream::StreamPipeline pipeline(2);
    std::mutex mutex;
    std::vector<uint64_t> steered;
    pipeline.subscribe(
        [&](const std::string& queue, const stream::Record& record) {
          if (queue != "steered") return;
          std::lock_guard lock(mutex);
          steered.push_back(record.sequence);
        });
    pipeline.install_queue("default",
                           std::make_unique<stream::ForwardAllPolicy>());
    const auto factory = stream::PolicyFactory::with_builtins();
    factory.handle_install(pipeline, Json::parse(R"({
      "install": {"queue": "steered", "kind": "direct-selection",
                  "args": {"max_queue": 128},
                  "capacity": 32, "overflow": "drop-oldest"}})"));
    for (uint64_t i = 0; i < 100; ++i) pipeline.publish(make_record(i, 2));
    Json select = Json::object();
    select["select"] = Json::array({Json(17), Json(42), Json(99)});
    pipeline.control("steered", select);
    pipeline.wait_quiescent();
    pipeline.shutdown();
    std::printf("\nruntime steering: installed 'direct-selection' "
                "post-deployment on the concurrent plane, selected %zu/3 "
                "requested items (%llu, %llu, %llu)\n",
                steered.size(), static_cast<unsigned long long>(steered[0]),
                static_cast<unsigned long long>(steered[1]),
                static_cast<unsigned long long>(steered[2]));
  }

  bench.write_file(out_path);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
