// Fig. 5 / Section V-C reproduction: "Finer granularity in workflow
// construction allows greater reuse. In this instance, data selection
// criteria is separated from data movement infrastructure."
//
// We measure three things:
//  1. Reuse: when the selection policy changes, how many generated lines
//     change? (zero — the communication components are untouched)
//     vs when the schema changes (only the marshal component changes).
//  2. Throughput of the generated communication path (marshal + scheduler)
//     under each selection policy.
//  3. Runtime steering: install a policy unknown at generation time via
//     the control channel and drive it with punctuation.

#include <chrono>
#include <cstdio>

#include "stream/codegen.hpp"
#include "stream/marshal.hpp"
#include "stream/scheduler.hpp"
#include "util/strings.hpp"

using namespace ff;
using Clock = std::chrono::steady_clock;

namespace {

stream::StreamSchema instrument_schema(size_t extra_fields) {
  stream::StreamSchema schema;
  schema.name = "instrument";
  schema.version = 1;
  schema.fields = {{"shot", "int"}, {"energy", "double"}};
  for (size_t i = 0; i < extra_fields; ++i) {
    schema.fields.push_back({"aux" + std::to_string(i), "double"});
  }
  return schema;
}

stream::Record make_record(uint64_t sequence, size_t extra_fields) {
  stream::Record record;
  record.sequence = sequence;
  record.timestamp = static_cast<double>(sequence) * 0.001;
  record.values = {stream::Value{static_cast<int64_t>(sequence)},
                   stream::Value{1.5 * static_cast<double>(sequence)}};
  for (size_t i = 0; i < extra_fields; ++i) {
    record.values.emplace_back(0.25 * static_cast<double>(i));
  }
  return record;
}

double throughput_with_policy(const std::string& kind, const Json& args,
                              size_t records) {
  stream::DataScheduler scheduler;
  size_t delivered = 0;
  scheduler.subscribe(
      [&delivered](const std::string&, const stream::Record&) { ++delivered; });
  const stream::PolicyFactory factory = stream::PolicyFactory::with_builtins();
  scheduler.install_queue("q", factory.build(kind, args));

  const auto start = Clock::now();
  for (uint64_t i = 0; i < records; ++i) {
    scheduler.publish(make_record(i, 2));
    if (kind != "forward-all" && i % 64 == 63) {
      scheduler.punctuate(Json::object());  // windowed policies need marks
    }
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  (void)delivered;
  return static_cast<double>(records) / seconds;
}

}  // namespace

int main() {
  std::printf("Fig 5 — generated communication + runtime-installed policies\n\n");

  // 1. Reuse accounting under change.
  const auto base = stream::generate_comm_code(instrument_schema(2));
  const auto wider = stream::generate_comm_code(instrument_schema(3));
  size_t unchanged = 0;
  size_t changed = 0;
  for (const auto& artifact : base) {
    for (const auto& other : wider) {
      if (other.path != artifact.path) continue;
      if (other.content == artifact.content) ++unchanged;
      else ++changed;
    }
  }
  std::printf("schema change (add one field): %zu artifacts regenerated, %zu "
              "byte-identical (sink/source skeletons reused)\n",
              changed, unchanged);
  std::printf("policy change (e.g. forward-all -> sliding window): 0 of %zu "
              "generated lines change — policies install at runtime\n\n",
              stream::generated_loc(base));

  // 2. Marshalling cost (the generated data path).
  {
    const size_t kRecords = 200000;
    stream::Encoder encoder(instrument_schema(2));
    const auto start = Clock::now();
    for (uint64_t i = 0; i < kRecords; ++i) encoder.append(make_record(i, 2));
    const double encode_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    const auto decode_start = Clock::now();
    const auto decoded = stream::decode_stream(encoder.bytes());
    const double decode_s =
        std::chrono::duration<double>(Clock::now() - decode_start).count();
    std::printf("marshalling: encode %.2f Mrec/s, decode %.2f Mrec/s, %s/rec\n\n",
                kRecords / encode_s / 1e6, decoded.records.size() / decode_s / 1e6,
                format_bytes(static_cast<double>(encoder.bytes().size()) / kRecords)
                    .c_str());
  }

  // 3. Scheduler throughput per selection policy.
  std::printf("%-28s %14s\n", "selection policy", "records/s");
  const size_t kRecords = 300000;
  Json window_args = Json::object();
  window_args["capacity"] = 32;
  Json time_args = Json::object();
  time_args["horizon"] = 0.05;
  Json stride_args = Json::object();
  stride_args["stride"] = 10;
  const std::vector<std::pair<std::string, Json>> policies = {
      {"forward-all", Json::object()},
      {"sliding-window-count", window_args},
      {"sliding-window-time", time_args},
      {"sample-every", stride_args},
      {"direct-selection", Json::object()},
  };
  for (const auto& [kind, args] : policies) {
    std::printf("%-28s %14.0f\n", kind.c_str(),
                throughput_with_policy(kind, args, kRecords));
  }

  // 4. The steering scenario end to end.
  stream::DataScheduler scheduler;
  std::vector<uint64_t> steered;
  scheduler.subscribe([&](const std::string& queue, const stream::Record& record) {
    if (queue == "steered") steered.push_back(record.sequence);
  });
  scheduler.install_queue("default",
                          std::make_unique<stream::ForwardAllPolicy>());
  const stream::PolicyFactory factory = stream::PolicyFactory::with_builtins();
  factory.handle_install(scheduler, Json::parse(R"({
    "install": {"queue": "steered", "kind": "direct-selection",
                "args": {"max_queue": 128}}})"));
  for (uint64_t i = 0; i < 100; ++i) scheduler.publish(make_record(i, 2));
  Json select = Json::object();
  select["select"] = Json::array({Json(17), Json(42), Json(99)});
  scheduler.control("steered", select);
  std::printf("\nruntime steering: installed 'direct-selection' post-deployment, "
              "selected %zu/3 requested items (%llu, %llu, %llu)\n",
              steered.size(), static_cast<unsigned long long>(steered[0]),
              static_cast<unsigned long long>(steered[1]),
              static_cast<unsigned long long>(steered[2]));
  return 0;
}
