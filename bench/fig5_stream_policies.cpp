// Fig. 5 / Section V-C reproduction: "Finer granularity in workflow
// construction allows greater reuse. In this instance, data selection
// criteria is separated from data movement infrastructure."
//
// We measure:
//  1. Reuse: when the selection policy changes, how many generated lines
//     change? (zero — the communication components are untouched)
//     vs when the schema changes (only the marshal component changes).
//  2. Marshalling: the self-describing codec vs the length-prefixed binary
//     frame codec (encode and decode Mrec/s on the same record stream).
//  3. Channel microbench: mutex deque vs SPSC ring vs MPMC ring, single-
//     threaded op cost and 1-producer/1-consumer transfer rate.
//  4. The hot path: forward-all across 8 queues with cost-free consumers,
//     before (mutex channel, batch 1, per-record publish) vs after (SPSC
//     ring, batch 64, batched publish) at 1/2/4/8 workers — the records/s
//     grid behind the "order of magnitude" claim.
//  5. Paced latency: a producer below saturation (the steady state of a
//     real instrument) with a 50 us simulated downstream cost; publish ->
//     delivery p50/p95/p99, sync vs threaded. Saturating-producer runs
//     measure queueing, not handoff — pacing isolates what the plane adds.
//  6. Overflow-policy tradeoff under a saturating producer.
//  7. Runtime steering: install a policy unknown at generation time via
//     the control channel, landing on the concurrent plane.
//
// Writes the measured series to BENCH_stream.json (path = argv[1] or the
// default below) — the committed record of data-plane performance.
//
// `--smoke`: a ~2 s regression guard (the ctest `perf-smoke` label): the
// threaded plane at 1 worker must not be slower than the sync scheduler
// under the paced downstream-cost model, and its paced p50 must stay
// within 2x of sync. Exits 1 on regression, writes nothing.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "stream/codegen.hpp"
#include "stream/marshal.hpp"
#include "stream/pipeline.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ff;
using Clock = std::chrono::steady_clock;

namespace {

constexpr size_t kQueues = 8;  // one per simulated downstream sink
constexpr auto kConsumerCost = std::chrono::microseconds(50);

double seconds_since(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

stream::StreamSchema instrument_schema(size_t extra_fields) {
  stream::StreamSchema schema;
  schema.name = "instrument";
  schema.version = 1;
  schema.fields = {{"shot", "int"}, {"energy", "double"}};
  for (size_t i = 0; i < extra_fields; ++i) {
    schema.fields.push_back({"aux" + std::to_string(i), "double"});
  }
  return schema;
}

stream::Record make_record(uint64_t sequence, size_t extra_fields) {
  stream::Record record;
  record.sequence = sequence;
  record.timestamp = static_cast<double>(sequence) * 0.001;
  record.values = {stream::Value{static_cast<int64_t>(sequence)},
                   stream::Value{1.5 * static_cast<double>(sequence)}};
  for (size_t i = 0; i < extra_fields; ++i) {
    record.values.emplace_back(0.25 * static_cast<double>(i));
  }
  return record;
}

// --- channel microbench -----------------------------------------------------

struct ChannelScore {
  double st_ops_s = 0;  // single-threaded send+receive ops per second
  double mt_rec_s = 0;  // 1P/1C records through the channel per second
};

ChannelScore bench_channel(stream::ChannelKind kind) {
  ChannelScore score;
  {
    // Single-threaded: bursts of 64 try_send, drained by try_receive —
    // pure op cost, no parking, no contention.
    auto channel = stream::make_channel(kind, 128);
    constexpr uint64_t kOps = 400'000;  // sends; receives double it
    const auto start = Clock::now();
    uint64_t sent = 0;
    while (sent < kOps) {
      for (int i = 0; i < 64 && sent < kOps; ++i, ++sent) {
        stream::Record record;
        record.sequence = sent;
        channel->try_send(std::move(record));
      }
      while (channel->try_receive()) {
      }
    }
    score.st_ops_s = 2.0 * static_cast<double>(kOps) / seconds_since(start);
  }
  {
    // One producer blocking-sends, one consumer bulk-drains — the exact
    // shape of a pipeline strand drain.
    auto channel = stream::make_channel(kind, 1024);
    constexpr uint64_t kRecords = 400'000;
    const auto start = Clock::now();
    std::thread producer([&] {
      for (uint64_t i = 0; i < kRecords; ++i) {
        stream::Record record;
        record.sequence = i;
        channel->send(std::move(record));
      }
      channel->close();
    });
    uint64_t received = 0;
    std::vector<stream::Record> batch;
    while (true) {
      batch.clear();
      if (channel->drain_into(batch, 64) == 0) {
        if (channel->closed() && channel->size() == 0) break;
        std::this_thread::yield();
        continue;
      }
      received += batch.size();
    }
    producer.join();
    score.mt_rec_s = static_cast<double>(received) / seconds_since(start);
  }
  return score;
}

// --- hot path ---------------------------------------------------------------

struct HotConfig {
  const char* name;
  stream::ChannelKind channel;
  size_t batch;
  bool batched_publish;
};

constexpr HotConfig kBefore{"before", stream::ChannelKind::Mutex, 1, false};
constexpr HotConfig kAfter{"after", stream::ChannelKind::Spsc, 64, true};

/// Publish `records` through kQueues forward-all queues with cost-free
/// counting consumers and return end-to-end records/s (publish start to
/// full quiescence). This is raw plane overhead: policy + channel +
/// strand dispatch + delivery, nothing simulated.
double run_hot_plane(const HotConfig& config, size_t workers,
                     uint64_t records) {
  stream::StreamPipeline pipeline(workers);
  std::atomic<uint64_t> delivered{0};
  pipeline.subscribe([&](const std::string&, const stream::Record&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t q = 0; q < kQueues; ++q) {
    pipeline.install_queue("q" + std::to_string(q),
                           std::make_unique<stream::ForwardAllPolicy>(),
                           {.capacity = 1024,
                            .overflow = stream::Overflow::Block,
                            .batch = config.batch,
                            .channel = config.channel});
  }

  const auto start = Clock::now();
  if (config.batched_publish) {
    std::vector<stream::Record> chunk;
    chunk.reserve(64);
    for (uint64_t i = 0; i < records; ++i) {
      chunk.push_back(make_record(i, 2));
      if (chunk.size() == 64 || i + 1 == records) {
        pipeline.publish_batch(chunk);
        chunk.clear();
      }
    }
  } else {
    for (uint64_t i = 0; i < records; ++i) {
      pipeline.publish(make_record(i, 2));
    }
  }
  pipeline.wait_quiescent();
  const double wall = seconds_since(start);
  pipeline.shutdown();
  if (delivered.load() != records * kQueues) {
    std::fprintf(stderr, "hot plane lost records: %llu != %llu\n",
                 static_cast<unsigned long long>(delivered.load()),
                 static_cast<unsigned long long>(records * kQueues));
    std::exit(1);
  }
  return static_cast<double>(records) / wall;
}

/// The same workload delivered inline by the synchronous DataScheduler.
double run_hot_sync(uint64_t records) {
  stream::DataScheduler scheduler;
  std::atomic<uint64_t> delivered{0};
  scheduler.subscribe([&](const std::string&, const stream::Record&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t q = 0; q < kQueues; ++q) {
    scheduler.install_queue("q" + std::to_string(q),
                            std::make_unique<stream::ForwardAllPolicy>());
  }
  const auto start = Clock::now();
  for (uint64_t i = 0; i < records; ++i) scheduler.publish(make_record(i, 2));
  return static_cast<double>(records) / seconds_since(start);
}

// --- paced latency ----------------------------------------------------------

struct PacedResult {
  double records_s = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
};

/// Collects publish->delivery latencies; the consumer also pays the
/// simulated downstream cost.
struct SinkModel {
  Clock::time_point epoch = Clock::now();
  std::mutex mutex;
  std::vector<double> latencies_ms;
  uint64_t delivered = 0;

  stream::DataScheduler::Consumer consumer() {
    return [this](const std::string&, const stream::Record& record) {
      const double now = seconds_since(epoch);
      {
        std::lock_guard lock(mutex);
        ++delivered;
        latencies_ms.push_back((now - record.timestamp) * 1e3);
      }
      std::this_thread::sleep_for(kConsumerCost);
    };
  }

  void fill(PacedResult& result) {
    std::lock_guard lock(mutex);
    result.delivered = delivered;
    if (latencies_ms.empty()) return;
    result.p50_ms = percentile(latencies_ms, 50);
    result.p95_ms = percentile(latencies_ms, 95);
    result.p99_ms = percentile(latencies_ms, 99);
  }
};

/// Producer paced at `pace` per record — below the plane's capacity, so
/// the measured latency is handoff + downstream cost, not queue depth.
/// workers == 0 runs the synchronous scheduler instead.
PacedResult run_paced(size_t workers, uint64_t records,
                      std::chrono::microseconds pace) {
  SinkModel sink;
  PacedResult result;
  const auto publish_all = [&](auto&& publish, auto&& quiesce) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < records; ++i) {
      const auto next = start + (i + 1) * pace;
      stream::Record record = make_record(i, 2);
      record.timestamp = seconds_since(sink.epoch);
      publish(record);
      std::this_thread::sleep_until(next);
    }
    quiesce();
    result.records_s = static_cast<double>(records) / seconds_since(start);
  };
  if (workers == 0) {
    stream::DataScheduler scheduler;
    scheduler.subscribe(sink.consumer());
    for (size_t q = 0; q < kQueues; ++q) {
      scheduler.install_queue("q" + std::to_string(q),
                              std::make_unique<stream::ForwardAllPolicy>());
    }
    publish_all([&](const stream::Record& r) { scheduler.publish(r); },
                [] {});
  } else {
    stream::StreamPipeline pipeline(workers);
    pipeline.subscribe(sink.consumer());
    for (size_t q = 0; q < kQueues; ++q) {
      pipeline.install_queue("q" + std::to_string(q),
                             std::make_unique<stream::ForwardAllPolicy>(),
                             {.capacity = 256});
    }
    publish_all([&](const stream::Record& r) { pipeline.publish(r); },
                [&] { pipeline.wait_quiescent(); });
    pipeline.shutdown();
  }
  sink.fill(result);
  return result;
}

// --- overflow ---------------------------------------------------------------

/// Overflow-policy tradeoff: a producer publishing flat out into one queue
/// with a deliberately slow consumer. block = lossless backpressure;
/// drop-oldest / keep-latest shed load to stay fresh.
PacedResult run_overflow(stream::Overflow overflow) {
  stream::StreamPipeline pipeline(2);
  SinkModel sink;
  auto base = sink.consumer();
  pipeline.subscribe([&base](const std::string& queue, const stream::Record& r) {
    base(queue, r);
    std::this_thread::sleep_for(std::chrono::microseconds(150));  // extra-slow sink
  });
  pipeline.install_queue("tap", std::make_unique<stream::ForwardAllPolicy>(),
                         {.capacity = 16, .overflow = overflow});

  constexpr uint64_t kBurst = 1500;
  const auto start = Clock::now();
  for (uint64_t i = 0; i < kBurst; ++i) {
    stream::Record record = make_record(i, 2);
    record.timestamp = seconds_since(sink.epoch);
    pipeline.publish(record);
  }
  pipeline.wait_quiescent();
  const double wall = seconds_since(start);
  pipeline.shutdown();

  PacedResult result;
  result.records_s = static_cast<double>(kBurst) / wall;
  sink.fill(result);
  result.delivered = pipeline.totals().delivered;
  result.dropped = pipeline.totals().dropped;
  return result;
}

// --- smoke mode -------------------------------------------------------------

/// The perf-smoke regression guard (~1.5 s): under the paced downstream-
/// cost model the threaded plane at 1 worker must not fall behind the
/// sync scheduler (0.9x noise floor on a shared box) and must not pay
/// more than 2x its p50 — the PR-4 per-record-handoff failure mode.
int run_smoke() {
  constexpr uint64_t kRecords = 400;
  constexpr auto kPace = std::chrono::microseconds(1000);
  constexpr int kAttempts = 3;
  std::printf("perf-smoke: paced %llu us, %llu records x %zu queues, "
              "%lld us downstream cost\n",
              static_cast<unsigned long long>(kPace.count()),
              static_cast<unsigned long long>(kRecords), kQueues,
              static_cast<long long>(kConsumerCost.count()));
  // The host (often a loaded 1-core VM) can stall any single run for tens
  // of milliseconds, so one bad sample is not a regression: pass if any of
  // three attempts is clean. A real handoff regression fails all three.
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    const PacedResult sync = run_paced(0, kRecords, kPace);
    const PacedResult threaded = run_paced(1, kRecords, kPace);
    std::printf("  attempt %d: sync %8.0f records/s p50 %.3f ms | "
                "threaded 1w %8.0f records/s p50 %.3f ms\n",
                attempt, sync.records_s, sync.p50_ms, threaded.records_s,
                threaded.p50_ms);
    const bool throughput_ok = threaded.records_s >= 0.9 * sync.records_s;
    const bool latency_ok = threaded.p50_ms <= 2.0 * sync.p50_ms;
    if (throughput_ok && latency_ok) {
      std::printf("perf-smoke: OK\n");
      return 0;
    }
    if (!throughput_ok) {
      std::fprintf(stderr,
                   "  attempt %d: threaded plane at 1 worker slower than "
                   "sync (%.0f < 0.9 * %.0f records/s)\n",
                   attempt, threaded.records_s, sync.records_s);
    }
    if (!latency_ok) {
      std::fprintf(stderr,
                   "  attempt %d: threaded 1-worker p50 exceeds 2x sync "
                   "(%.3f > 2 * %.3f ms)\n",
                   attempt, threaded.p50_ms, sync.p50_ms);
    }
  }
  std::printf("perf-smoke: REGRESSION (all %d attempts failed)\n", kAttempts);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_stream.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    out_path = argv[i];
  }
  std::printf("Fig 5 — generated communication + concurrent data plane\n\n");

  Json bench = Json::object();
  bench["schema"] = std::string("fairflow.bench.stream/2");
  bench["queues"] = static_cast<int64_t>(kQueues);
  bench["consumer_cost_us"] = static_cast<int64_t>(kConsumerCost.count());
  bench["hardware_concurrency"] =
      static_cast<int64_t>(std::thread::hardware_concurrency());

  // 1. Reuse accounting under change.
  const auto base = stream::generate_comm_code(instrument_schema(2));
  const auto wider = stream::generate_comm_code(instrument_schema(3));
  size_t unchanged = 0;
  size_t changed = 0;
  for (const auto& artifact : base) {
    for (const auto& other : wider) {
      if (other.path != artifact.path) continue;
      if (other.content == artifact.content) ++unchanged;
      else ++changed;
    }
  }
  std::printf("schema change (add one field): %zu artifacts regenerated, %zu "
              "byte-identical (sink/source skeletons reused)\n",
              changed, unchanged);
  std::printf("policy change (e.g. forward-all -> sliding window): 0 of %zu "
              "generated lines change — policies install at runtime\n\n",
              stream::generated_loc(base));

  // 2. Marshalling cost: self-describing vs binary frames, same records.
  {
    const size_t kMarshalRecords = 400'000;
    stream::Encoder encoder(instrument_schema(2));
    auto start = Clock::now();
    for (uint64_t i = 0; i < kMarshalRecords; ++i) {
      encoder.append(make_record(i, 2));
    }
    const double encode_s = seconds_since(start);
    start = Clock::now();
    const auto decoded = stream::decode_stream(encoder.bytes());
    const double decode_s = seconds_since(start);

    stream::FrameEncoder frames(instrument_schema(2));
    start = Clock::now();
    for (uint64_t i = 0; i < kMarshalRecords; ++i) {
      frames.append(make_record(i, 2));
    }
    const double encode_bin_s = seconds_since(start);
    start = Clock::now();
    const auto decoded_bin =
        stream::decode_frame_stream(frames.bytes(), instrument_schema(2));
    const double decode_bin_s = seconds_since(start);
    if (decoded_bin.records.size() != decoded.records.size()) {
      std::fprintf(stderr, "codec disagreement on record count\n");
      return 1;
    }

    // Steady-state wire-path decode: chunk-at-a-time into a reused
    // DecodedStream (the set_wire_sink consumer pattern) — once warm, a
    // fixed-width schema decodes with zero allocations per chunk.
    const size_t kChunk = 4096;
    stream::FrameEncoder chunk_frames(instrument_schema(2));
    for (uint64_t i = 0; i < kChunk; ++i) {
      chunk_frames.append(make_record(i, 2));
    }
    stream::DecodedStream reused;
    stream::decode_frame_stream_into(chunk_frames.bytes(), instrument_schema(2),
                                     reused);  // warm the buffers
    const size_t kChunkRounds = kMarshalRecords / kChunk;
    size_t chunk_records = 0;
    start = Clock::now();
    for (size_t i = 0; i < kChunkRounds; ++i) {
      stream::decode_frame_stream_into(chunk_frames.bytes(),
                                       instrument_schema(2), reused);
      chunk_records += reused.records.size();
    }
    const double decode_reuse_s = seconds_since(start);

    const double decode_mrec = decoded.records.size() / decode_s / 1e6;
    const double decode_bin_oneshot_mrec =
        decoded_bin.records.size() / decode_bin_s / 1e6;
    const double decode_bin_mrec =
        static_cast<double>(chunk_records) / decode_reuse_s / 1e6;
    std::printf("marshal self-describing: encode %.2f Mrec/s, decode %.2f "
                "Mrec/s, %s/rec\n",
                kMarshalRecords / encode_s / 1e6, decode_mrec,
                format_bytes(static_cast<double>(encoder.bytes().size()) /
                             kMarshalRecords)
                    .c_str());
    std::printf("marshal binary frames:   encode %.2f Mrec/s, decode %.2f "
                "Mrec/s one-shot / %.2f Mrec/s chunked+reused buffers, "
                "%s/rec  (steady-state decode %.1fx)\n\n",
                kMarshalRecords / encode_bin_s / 1e6, decode_bin_oneshot_mrec,
                decode_bin_mrec,
                format_bytes(static_cast<double>(frames.bytes().size()) /
                             kMarshalRecords)
                    .c_str(),
                decode_bin_mrec / decode_mrec);
    Json marshal = Json::object();
    marshal["encode_mrec_s"] = kMarshalRecords / encode_s / 1e6;
    marshal["decode_mrec_s"] = decode_mrec;
    marshal["encode_binary_mrec_s"] = kMarshalRecords / encode_bin_s / 1e6;
    marshal["decode_binary_oneshot_mrec_s"] = decode_bin_oneshot_mrec;
    marshal["decode_binary_mrec_s"] = decode_bin_mrec;
    marshal["decode_binary_speedup"] = decode_bin_mrec / decode_mrec;
    bench["marshal"] = marshal;
  }

  // 3. Channel microbench: the transport alone, no scheduler.
  std::printf("channel microbench (capacity 128/1024, batch-64 drains):\n");
  std::printf("%-8s %16s %16s\n", "kind", "1-thread ops/s", "1P/1C records/s");
  Json channels = Json::object();
  for (stream::ChannelKind kind :
       {stream::ChannelKind::Mutex, stream::ChannelKind::Spsc,
        stream::ChannelKind::Mpmc}) {
    const ChannelScore score = bench_channel(kind);
    std::printf("%-8s %16.0f %16.0f\n", stream::channel_kind_name(kind),
                score.st_ops_s, score.mt_rec_s);
    Json row = Json::object();
    row["st_ops_s"] = score.st_ops_s;
    row["mt_rec_s"] = score.mt_rec_s;
    channels[stream::channel_kind_name(kind)] = row;
  }
  bench["channel"] = channels;

  // 4. The hot path: before/after transport, cost-free consumers.
  constexpr uint64_t kHotRecords = 60'000;
  std::printf("\nhot path: %zu forward-all queues, %llu records, cost-free "
              "consumers\n",
              kQueues, static_cast<unsigned long long>(kHotRecords));
  std::printf("%-8s %-8s %6s %8s %12s\n", "config", "channel", "batch",
              "workers", "records/s");
  const double sync_hot = run_hot_sync(kHotRecords);
  std::printf("%-8s %-8s %6s %8s %12.0f\n", "sync", "-", "-", "-", sync_hot);
  Json hot = Json::array();
  {
    Json row = Json::object();
    row["config"] = std::string("sync");
    row["workers"] = static_cast<int64_t>(0);
    row["records_s"] = sync_hot;
    hot.push_back(row);
  }
  double after_4w = 0;
  double before_4w = 0;
  for (const HotConfig& config : {kBefore, kAfter}) {
    for (size_t workers : {1u, 2u, 4u, 8u}) {
      const double rate = run_hot_plane(config, workers, kHotRecords);
      std::printf("%-8s %-8s %6zu %8zu %12.0f\n", config.name,
                  stream::channel_kind_name(config.channel), config.batch,
                  workers, rate);
      Json row = Json::object();
      row["config"] = std::string(config.name);
      row["channel"] = std::string(stream::channel_kind_name(config.channel));
      row["batch"] = static_cast<int64_t>(config.batch);
      row["workers"] = static_cast<int64_t>(workers);
      row["records_s"] = rate;
      hot.push_back(row);
      if (workers == 4) {
        (config.batched_publish ? after_4w : before_4w) = rate;
      }
    }
  }
  bench["hot_path"] = hot;
  bench["hot_path_speedup_after_vs_before_4w"] =
      before_4w > 0 ? after_4w / before_4w : 0;
  // The PR-4 committed grid measured forward-all at 3793 records/s with 4
  // workers (sleep-bound consumer model); the hot-path grid replaces it.
  constexpr double kCommittedBaseline4w = 3793.0;
  bench["hot_path_speedup_4w_vs_committed_baseline"] =
      after_4w / kCommittedBaseline4w;
  std::printf("after/before at 4 workers: %.1fx; after vs committed PR-4 "
              "grid (3793 records/s): %.1fx\n",
              before_4w > 0 ? after_4w / before_4w : 0,
              after_4w / kCommittedBaseline4w);

  // 5. Paced latency: what the plane *adds* below saturation.
  constexpr uint64_t kPacedRecords = 400;
  constexpr auto kPace = std::chrono::microseconds(1000);
  std::printf("\npaced latency: 1 record/ms, %llu records, %lld us "
              "downstream cost per delivery\n",
              static_cast<unsigned long long>(kPacedRecords),
              static_cast<long long>(kConsumerCost.count()));
  std::printf("%-10s %12s %10s %10s %10s\n", "plane", "records/s", "p50 ms",
              "p95 ms", "p99 ms");
  Json paced = Json::array();
  double sync_p50 = 0;
  double one_worker_p50 = 0;
  for (size_t workers : {0u, 1u, 2u, 4u}) {
    const PacedResult result = run_paced(workers, kPacedRecords, kPace);
    const std::string label =
        workers == 0 ? "sync" : std::to_string(workers) + "w";
    std::printf("%-10s %12.0f %10.3f %10.3f %10.3f\n", label.c_str(),
                result.records_s, result.p50_ms, result.p95_ms, result.p99_ms);
    Json row = Json::object();
    row["workers"] = static_cast<int64_t>(workers);
    row["records_s"] = result.records_s;
    row["latency_ms_p50"] = result.p50_ms;
    row["latency_ms_p95"] = result.p95_ms;
    row["latency_ms_p99"] = result.p99_ms;
    paced.push_back(row);
    if (workers == 0) sync_p50 = result.p50_ms;
    if (workers == 1) one_worker_p50 = result.p50_ms;
  }
  bench["paced"] = paced;
  bench["paced_p50_ratio_1w_vs_sync"] =
      sync_p50 > 0 ? one_worker_p50 / sync_p50 : 0;
  std::printf("1-worker p50 / sync p50: %.2fx\n",
              sync_p50 > 0 ? one_worker_p50 / sync_p50 : 0);

  // 6. Overflow tradeoff under a saturating producer.
  std::printf("\noverflow policies (capacity 16, saturating producer, "
              "slow sink):\n");
  std::printf("%-14s %12s %10s %8s %10s\n", "overflow", "records/s",
              "delivered", "dropped", "p99 ms");
  Json overflow_rows = Json::array();
  for (stream::Overflow overflow :
       {stream::Overflow::Block, stream::Overflow::DropOldest,
        stream::Overflow::KeepLatest}) {
    const PacedResult result = run_overflow(overflow);
    std::printf("%-14s %12.0f %10llu %8llu %10.2f\n",
                stream::overflow_name(overflow), result.records_s,
                static_cast<unsigned long long>(result.delivered),
                static_cast<unsigned long long>(result.dropped),
                result.p99_ms);
    Json row = Json::object();
    row["overflow"] = std::string(stream::overflow_name(overflow));
    row["records_s"] = result.records_s;
    row["delivered"] = static_cast<int64_t>(result.delivered);
    row["dropped"] = static_cast<int64_t>(result.dropped);
    row["latency_ms_p99"] = result.p99_ms;
    overflow_rows.push_back(row);
  }
  bench["overflow"] = overflow_rows;

  // 7. The steering scenario, now on the concurrent plane with a binary
  // wire tap — the full "forwarding component" data path.
  {
    stream::StreamPipeline pipeline(2);
    std::mutex mutex;
    std::vector<uint64_t> steered;
    size_t wire_bytes = 0;
    pipeline.subscribe(
        [&](const std::string& queue, const stream::Record& record) {
          if (queue != "steered") return;
          std::lock_guard lock(mutex);
          steered.push_back(record.sequence);
        });
    pipeline.install_queue("default",
                           std::make_unique<stream::ForwardAllPolicy>());
    const auto factory = stream::PolicyFactory::with_builtins();
    factory.handle_install(pipeline, Json::parse(R"({
      "install": {"queue": "steered", "kind": "direct-selection",
                  "args": {"max_queue": 128},
                  "capacity": 32, "overflow": "drop-oldest",
                  "channel": "mpmc", "format": "binary"}})"));
    pipeline.register_schema("steered", instrument_schema(2));
    pipeline.set_wire_sink(
        "steered", [&](const std::string&, std::vector<uint8_t> chunk) {
          std::lock_guard lock(mutex);
          wire_bytes += chunk.size();
        });
    for (uint64_t i = 0; i < 100; ++i) pipeline.publish(make_record(i, 2));
    Json select = Json::object();
    select["select"] = Json::array({Json(17), Json(42), Json(99)});
    pipeline.control("steered", select);
    pipeline.wait_quiescent();
    pipeline.shutdown();
    std::printf("\nruntime steering: installed 'direct-selection' "
                "post-deployment, selected %zu/3 requested items "
                "(%llu, %llu, %llu); %zu binary wire bytes tapped\n",
                steered.size(), static_cast<unsigned long long>(steered[0]),
                static_cast<unsigned long long>(steered[1]),
                static_cast<unsigned long long>(steered[2]), wire_bytes);
  }

  bench.write_file(out_path);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
