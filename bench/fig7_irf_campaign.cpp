// Fig. 7 reproduction: "Performance improvements in the iRF-LOOP workflow
// using the Cheetah-Savanna workflow suite. Values shown represent the
// average number of parameters explored in 2-hour allocations of 20 nodes"
// over the census campaign (1606 features). The paper reports >5x.
//
// Baseline ("original workflow"): runs submitted in static sets with an
// explicit end-of-set barrier, and — because submissions are prepared and
// monitored by hand — a human-response latency between one set finishing
// and the next starting ("attention is spread over a longer period because
// successive queued jobs are run only after an indeterminate delay").
//
// Cheetah-Savanna: a pilot that dynamically backfills nodes inside the
// allocation; partially completed SweepGroups are simply re-submitted.

#include <cstdio>

#include "cheetah/campaign.hpp"
#include "cluster/workload.hpp"
#include "savanna/batch_runner.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ff;

namespace {

constexpr int kNodes = 20;
constexpr double kWalltime = 7200;  // 2-hour allocation
constexpr size_t kFeatures = 1606;  // 2019 ACS census features

/// Baseline: sets of `nodes` runs with a barrier, plus human latency per
/// set; count features completed within one allocation.
size_t baseline_features_per_allocation(const std::vector<sim::TaskSpec>& tasks,
                                        double human_latency_s) {
  double elapsed = 0;
  size_t completed = 0;
  size_t next = 0;
  while (next < tasks.size()) {
    const size_t end = std::min(next + static_cast<size_t>(kNodes), tasks.size());
    double barrier = 0;
    for (size_t i = next; i < end; ++i) {
      barrier = std::max(barrier, tasks[i].duration_s);
    }
    if (elapsed + barrier > kWalltime) {
      // The set that straddles the walltime: runs shorter than the budget
      // still finish; the rest are lost.
      for (size_t i = next; i < end; ++i) {
        if (elapsed + tasks[i].duration_s <= kWalltime) ++completed;
      }
      break;
    }
    elapsed += barrier + human_latency_s;
    completed += end - next;
    next = end;
  }
  return completed;
}

}  // namespace

int main() {
  // The Cheetah campaign that drives the ensemble: one parameter sweep over
  // all census features (what Section V-D composes).
  cheetah::AppSpec app;
  app.name = "irf";
  app.executable = "irf_fit";
  app.args_template = "--feature {{feature}}";
  cheetah::Campaign campaign("irf-loop-census-2019", app);
  campaign.set_machine("summit")
      .set_objective(cheetah::Objective::MaximizeThroughput);
  cheetah::Sweep sweep("features");
  sweep.add(cheetah::Parameter::int_range("feature", cheetah::ParamLayer::Application,
                                          0, static_cast<int64_t>(kFeatures) - 1));
  cheetah::SweepGroup group("all-features");
  group.add(std::move(sweep)).set_nodes(kNodes).set_walltime_s(kWalltime);
  campaign.add_group(std::move(group));

  sim::DurationModel durations;
  durations.median_s = 300;
  durations.sigma = 0.5;
  durations.straggler_fraction = 0.08;
  durations.straggler_scale = 2.5;
  durations.straggler_alpha = 1.6;

  std::printf("Fig 7 — features explored per 2-hour / %d-node allocation\n",
              kNodes);
  std::printf("campaign: %s (%zu runs)\n\n", campaign.name().c_str(),
              campaign.total_runs());
  std::printf("%-6s %-16s %-16s %-18s %-8s\n", "seed", "baseline(sets)",
              "baseline+human", "cheetah-savanna", "speedup");

  RunningStats ratio_stats;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto tasks = sim::make_ensemble(kFeatures, durations, seed);

    const size_t base_pure = baseline_features_per_allocation(tasks, 0);
    const size_t base_human = baseline_features_per_allocation(tasks, 420);

    savanna::CampaignRunOptions options;
    options.backend = savanna::Backend::Pilot;
    options.execution.nodes = kNodes;
    options.execution.walltime_s = kWalltime;
    options.max_allocations = 1;
    sim::Simulation sim;
    const auto pilot = savanna::run_with_resubmission(sim, tasks, options);

    const double speedup = static_cast<double>(pilot.completed_runs) /
                           static_cast<double>(base_human);
    ratio_stats.add(speedup);
    std::printf("%-6llu %-16zu %-16zu %-18zu %5.1fx\n",
                static_cast<unsigned long long>(seed), base_pure, base_human,
                pilot.completed_runs, speedup);
  }
  std::printf("\nmean speedup vs manual baseline: %.1fx (paper reports >5x)\n\n",
              ratio_stats.mean());

  // Whole-campaign view with re-submission: allocations needed to finish
  // all 1606 features with the pilot (the SweepGroup "is simply
  // re-submitted" until done).
  const auto tasks = sim::make_ensemble(kFeatures, durations, 1);
  savanna::CampaignRunOptions options;
  options.backend = savanna::Backend::Pilot;
  options.execution.nodes = kNodes;
  options.execution.walltime_s = kWalltime;
  sim::Simulation sim;
  savanna::RunTracker tracker;
  const auto full = savanna::run_with_resubmission(sim, tasks, options, &tracker);
  std::printf("full campaign with re-submission: %zu allocations, %zu/%zu runs "
              "done, utilization %.0f%%\n",
              full.allocations_used, full.completed_runs, kFeatures,
              full.utilization() * 100);
  const auto counts = tracker.counts();
  std::printf("tracker: %zu done, %zu still pending (provenance has %s)\n",
              counts.done, counts.never_started + counts.failed + counts.killed,
              "per-run attempt records");

  // With the batch queue in the loop: every re-submission waits again, so
  // needing fewer, fuller allocations also buys fewer queue waits.
  sim::MachineSpec machine = sim::summit();
  machine.queue_wait_mean_s = 1800;  // 30 min expected wait
  for (const auto backend :
       {savanna::Backend::SetSynchronized, savanna::Backend::Pilot}) {
    sim::Simulation batch_sim;
    sim::BatchSystem batch(batch_sim, machine, 99);
    savanna::CampaignRunOptions batch_options;
    batch_options.backend = backend;
    batch_options.execution.nodes = kNodes;
    batch_options.execution.walltime_s = kWalltime;
    batch_options.max_allocations = 30;
    const auto through_queue = savanna::run_campaign_through_batch(
        batch_sim, batch, sim::make_ensemble(kFeatures, durations, 1),
        batch_options);
    std::printf(
        "%-17s through the batch queue: %2zu submissions, queue wait %8s, "
        "wall %9s, %4zu/%zu done\n",
        backend == savanna::Backend::Pilot ? "cheetah-savanna" : "baseline(sets)",
        through_queue.jobs_submitted,
        format_duration(through_queue.total_queue_wait_s).c_str(),
        format_duration(through_queue.total_wall_s).c_str(),
        through_queue.inner.completed_runs, kFeatures);
  }
  return 0;
}
