file(REMOVE_RECURSE
  "CMakeFiles/test_cheetah.dir/cheetah/campaign_test.cpp.o"
  "CMakeFiles/test_cheetah.dir/cheetah/campaign_test.cpp.o.d"
  "CMakeFiles/test_cheetah.dir/cheetah/derived_param_test.cpp.o"
  "CMakeFiles/test_cheetah.dir/cheetah/derived_param_test.cpp.o.d"
  "CMakeFiles/test_cheetah.dir/cheetah/endpoint_test.cpp.o"
  "CMakeFiles/test_cheetah.dir/cheetah/endpoint_test.cpp.o.d"
  "CMakeFiles/test_cheetah.dir/cheetah/results_test.cpp.o"
  "CMakeFiles/test_cheetah.dir/cheetah/results_test.cpp.o.d"
  "CMakeFiles/test_cheetah.dir/cheetah/sweep_test.cpp.o"
  "CMakeFiles/test_cheetah.dir/cheetah/sweep_test.cpp.o.d"
  "test_cheetah"
  "test_cheetah.pdb"
  "test_cheetah[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cheetah.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
