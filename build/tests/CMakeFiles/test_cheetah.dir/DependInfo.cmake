
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cheetah/campaign_test.cpp" "tests/CMakeFiles/test_cheetah.dir/cheetah/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/test_cheetah.dir/cheetah/campaign_test.cpp.o.d"
  "/root/repo/tests/cheetah/derived_param_test.cpp" "tests/CMakeFiles/test_cheetah.dir/cheetah/derived_param_test.cpp.o" "gcc" "tests/CMakeFiles/test_cheetah.dir/cheetah/derived_param_test.cpp.o.d"
  "/root/repo/tests/cheetah/endpoint_test.cpp" "tests/CMakeFiles/test_cheetah.dir/cheetah/endpoint_test.cpp.o" "gcc" "tests/CMakeFiles/test_cheetah.dir/cheetah/endpoint_test.cpp.o.d"
  "/root/repo/tests/cheetah/results_test.cpp" "tests/CMakeFiles/test_cheetah.dir/cheetah/results_test.cpp.o" "gcc" "tests/CMakeFiles/test_cheetah.dir/cheetah/results_test.cpp.o.d"
  "/root/repo/tests/cheetah/sweep_test.cpp" "tests/CMakeFiles/test_cheetah.dir/cheetah/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_cheetah.dir/cheetah/sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cheetah/CMakeFiles/ff_cheetah.dir/DependInfo.cmake"
  "/root/repo/build/src/skel/CMakeFiles/ff_skel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
