# Empty dependencies file for test_cheetah.
# This may be replaced when dependencies are built.
