
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/irf/irf_loop_test.cpp" "tests/CMakeFiles/test_irf.dir/irf/irf_loop_test.cpp.o" "gcc" "tests/CMakeFiles/test_irf.dir/irf/irf_loop_test.cpp.o.d"
  "/root/repo/tests/irf/network_export_test.cpp" "tests/CMakeFiles/test_irf.dir/irf/network_export_test.cpp.o" "gcc" "tests/CMakeFiles/test_irf.dir/irf/network_export_test.cpp.o.d"
  "/root/repo/tests/irf/tree_forest_test.cpp" "tests/CMakeFiles/test_irf.dir/irf/tree_forest_test.cpp.o" "gcc" "tests/CMakeFiles/test_irf.dir/irf/tree_forest_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/irf/CMakeFiles/ff_irf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
