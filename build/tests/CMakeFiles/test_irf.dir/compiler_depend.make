# Empty compiler generated dependencies file for test_irf.
# This may be replaced when dependencies are built.
