file(REMOVE_RECURSE
  "CMakeFiles/test_irf.dir/irf/irf_loop_test.cpp.o"
  "CMakeFiles/test_irf.dir/irf/irf_loop_test.cpp.o.d"
  "CMakeFiles/test_irf.dir/irf/network_export_test.cpp.o"
  "CMakeFiles/test_irf.dir/irf/network_export_test.cpp.o.d"
  "CMakeFiles/test_irf.dir/irf/tree_forest_test.cpp.o"
  "CMakeFiles/test_irf.dir/irf/tree_forest_test.cpp.o.d"
  "test_irf"
  "test_irf.pdb"
  "test_irf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
