file(REMOVE_RECURSE
  "CMakeFiles/test_stream.dir/stream/channel_test.cpp.o"
  "CMakeFiles/test_stream.dir/stream/channel_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/stream/codegen_test.cpp.o"
  "CMakeFiles/test_stream.dir/stream/codegen_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/stream/marshal_param_test.cpp.o"
  "CMakeFiles/test_stream.dir/stream/marshal_param_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/stream/marshal_test.cpp.o"
  "CMakeFiles/test_stream.dir/stream/marshal_test.cpp.o.d"
  "CMakeFiles/test_stream.dir/stream/scheduler_test.cpp.o"
  "CMakeFiles/test_stream.dir/stream/scheduler_test.cpp.o.d"
  "test_stream"
  "test_stream.pdb"
  "test_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
