
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/batch_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/batch_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/batch_test.cpp.o.d"
  "/root/repo/tests/cluster/failure_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/failure_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/failure_test.cpp.o.d"
  "/root/repo/tests/cluster/filesystem_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/filesystem_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/filesystem_test.cpp.o.d"
  "/root/repo/tests/cluster/sim_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/sim_test.cpp.o.d"
  "/root/repo/tests/cluster/workload_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
