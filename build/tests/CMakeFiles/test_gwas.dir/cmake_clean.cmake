file(REMOVE_RECURSE
  "CMakeFiles/test_gwas.dir/gwas/formats_extra_test.cpp.o"
  "CMakeFiles/test_gwas.dir/gwas/formats_extra_test.cpp.o.d"
  "CMakeFiles/test_gwas.dir/gwas/formats_test.cpp.o"
  "CMakeFiles/test_gwas.dir/gwas/formats_test.cpp.o.d"
  "CMakeFiles/test_gwas.dir/gwas/genotype_test.cpp.o"
  "CMakeFiles/test_gwas.dir/gwas/genotype_test.cpp.o.d"
  "CMakeFiles/test_gwas.dir/gwas/golden_artifacts_test.cpp.o"
  "CMakeFiles/test_gwas.dir/gwas/golden_artifacts_test.cpp.o.d"
  "CMakeFiles/test_gwas.dir/gwas/paste_param_test.cpp.o"
  "CMakeFiles/test_gwas.dir/gwas/paste_param_test.cpp.o.d"
  "CMakeFiles/test_gwas.dir/gwas/paste_test.cpp.o"
  "CMakeFiles/test_gwas.dir/gwas/paste_test.cpp.o.d"
  "CMakeFiles/test_gwas.dir/gwas/workflow_test.cpp.o"
  "CMakeFiles/test_gwas.dir/gwas/workflow_test.cpp.o.d"
  "test_gwas"
  "test_gwas.pdb"
  "test_gwas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gwas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
