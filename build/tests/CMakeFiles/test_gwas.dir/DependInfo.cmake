
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gwas/formats_extra_test.cpp" "tests/CMakeFiles/test_gwas.dir/gwas/formats_extra_test.cpp.o" "gcc" "tests/CMakeFiles/test_gwas.dir/gwas/formats_extra_test.cpp.o.d"
  "/root/repo/tests/gwas/formats_test.cpp" "tests/CMakeFiles/test_gwas.dir/gwas/formats_test.cpp.o" "gcc" "tests/CMakeFiles/test_gwas.dir/gwas/formats_test.cpp.o.d"
  "/root/repo/tests/gwas/genotype_test.cpp" "tests/CMakeFiles/test_gwas.dir/gwas/genotype_test.cpp.o" "gcc" "tests/CMakeFiles/test_gwas.dir/gwas/genotype_test.cpp.o.d"
  "/root/repo/tests/gwas/golden_artifacts_test.cpp" "tests/CMakeFiles/test_gwas.dir/gwas/golden_artifacts_test.cpp.o" "gcc" "tests/CMakeFiles/test_gwas.dir/gwas/golden_artifacts_test.cpp.o.d"
  "/root/repo/tests/gwas/paste_param_test.cpp" "tests/CMakeFiles/test_gwas.dir/gwas/paste_param_test.cpp.o" "gcc" "tests/CMakeFiles/test_gwas.dir/gwas/paste_param_test.cpp.o.d"
  "/root/repo/tests/gwas/paste_test.cpp" "tests/CMakeFiles/test_gwas.dir/gwas/paste_test.cpp.o" "gcc" "tests/CMakeFiles/test_gwas.dir/gwas/paste_test.cpp.o.d"
  "/root/repo/tests/gwas/workflow_test.cpp" "tests/CMakeFiles/test_gwas.dir/gwas/workflow_test.cpp.o" "gcc" "tests/CMakeFiles/test_gwas.dir/gwas/workflow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gwas/CMakeFiles/ff_gwas.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/skel/CMakeFiles/ff_skel.dir/DependInfo.cmake"
  "/root/repo/build/src/savanna/CMakeFiles/ff_savanna.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
