# Empty dependencies file for test_gwas.
# This may be replaced when dependencies are built.
