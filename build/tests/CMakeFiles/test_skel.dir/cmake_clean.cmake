file(REMOVE_RECURSE
  "CMakeFiles/test_skel.dir/skel/generator_test.cpp.o"
  "CMakeFiles/test_skel.dir/skel/generator_test.cpp.o.d"
  "CMakeFiles/test_skel.dir/skel/model_test.cpp.o"
  "CMakeFiles/test_skel.dir/skel/model_test.cpp.o.d"
  "CMakeFiles/test_skel.dir/skel/template_engine_test.cpp.o"
  "CMakeFiles/test_skel.dir/skel/template_engine_test.cpp.o.d"
  "test_skel"
  "test_skel.pdb"
  "test_skel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
