# Empty compiler generated dependencies file for test_skel.
# This may be replaced when dependencies are built.
