
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/savanna/batch_runner_test.cpp" "tests/CMakeFiles/test_savanna.dir/savanna/batch_runner_test.cpp.o" "gcc" "tests/CMakeFiles/test_savanna.dir/savanna/batch_runner_test.cpp.o.d"
  "/root/repo/tests/savanna/campaign_runner_test.cpp" "tests/CMakeFiles/test_savanna.dir/savanna/campaign_runner_test.cpp.o" "gcc" "tests/CMakeFiles/test_savanna.dir/savanna/campaign_runner_test.cpp.o.d"
  "/root/repo/tests/savanna/executor_param_test.cpp" "tests/CMakeFiles/test_savanna.dir/savanna/executor_param_test.cpp.o" "gcc" "tests/CMakeFiles/test_savanna.dir/savanna/executor_param_test.cpp.o.d"
  "/root/repo/tests/savanna/executor_test.cpp" "tests/CMakeFiles/test_savanna.dir/savanna/executor_test.cpp.o" "gcc" "tests/CMakeFiles/test_savanna.dir/savanna/executor_test.cpp.o.d"
  "/root/repo/tests/savanna/failure_injection_test.cpp" "tests/CMakeFiles/test_savanna.dir/savanna/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_savanna.dir/savanna/failure_injection_test.cpp.o.d"
  "/root/repo/tests/savanna/local_executor_test.cpp" "tests/CMakeFiles/test_savanna.dir/savanna/local_executor_test.cpp.o" "gcc" "tests/CMakeFiles/test_savanna.dir/savanna/local_executor_test.cpp.o.d"
  "/root/repo/tests/savanna/provenance_test.cpp" "tests/CMakeFiles/test_savanna.dir/savanna/provenance_test.cpp.o" "gcc" "tests/CMakeFiles/test_savanna.dir/savanna/provenance_test.cpp.o.d"
  "/root/repo/tests/savanna/tracker_test.cpp" "tests/CMakeFiles/test_savanna.dir/savanna/tracker_test.cpp.o" "gcc" "tests/CMakeFiles/test_savanna.dir/savanna/tracker_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/savanna/CMakeFiles/ff_savanna.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
