file(REMOVE_RECURSE
  "CMakeFiles/test_savanna.dir/savanna/batch_runner_test.cpp.o"
  "CMakeFiles/test_savanna.dir/savanna/batch_runner_test.cpp.o.d"
  "CMakeFiles/test_savanna.dir/savanna/campaign_runner_test.cpp.o"
  "CMakeFiles/test_savanna.dir/savanna/campaign_runner_test.cpp.o.d"
  "CMakeFiles/test_savanna.dir/savanna/executor_param_test.cpp.o"
  "CMakeFiles/test_savanna.dir/savanna/executor_param_test.cpp.o.d"
  "CMakeFiles/test_savanna.dir/savanna/executor_test.cpp.o"
  "CMakeFiles/test_savanna.dir/savanna/executor_test.cpp.o.d"
  "CMakeFiles/test_savanna.dir/savanna/failure_injection_test.cpp.o"
  "CMakeFiles/test_savanna.dir/savanna/failure_injection_test.cpp.o.d"
  "CMakeFiles/test_savanna.dir/savanna/local_executor_test.cpp.o"
  "CMakeFiles/test_savanna.dir/savanna/local_executor_test.cpp.o.d"
  "CMakeFiles/test_savanna.dir/savanna/provenance_test.cpp.o"
  "CMakeFiles/test_savanna.dir/savanna/provenance_test.cpp.o.d"
  "CMakeFiles/test_savanna.dir/savanna/tracker_test.cpp.o"
  "CMakeFiles/test_savanna.dir/savanna/tracker_test.cpp.o.d"
  "test_savanna"
  "test_savanna.pdb"
  "test_savanna[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_savanna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
