# Empty compiler generated dependencies file for test_savanna.
# This may be replaced when dependencies are built.
