
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ckpt/calibrate_test.cpp" "tests/CMakeFiles/test_ckpt.dir/ckpt/calibrate_test.cpp.o" "gcc" "tests/CMakeFiles/test_ckpt.dir/ckpt/calibrate_test.cpp.o.d"
  "/root/repo/tests/ckpt/gray_scott_test.cpp" "tests/CMakeFiles/test_ckpt.dir/ckpt/gray_scott_test.cpp.o" "gcc" "tests/CMakeFiles/test_ckpt.dir/ckpt/gray_scott_test.cpp.o.d"
  "/root/repo/tests/ckpt/harness_test.cpp" "tests/CMakeFiles/test_ckpt.dir/ckpt/harness_test.cpp.o" "gcc" "tests/CMakeFiles/test_ckpt.dir/ckpt/harness_test.cpp.o.d"
  "/root/repo/tests/ckpt/policy_param_test.cpp" "tests/CMakeFiles/test_ckpt.dir/ckpt/policy_param_test.cpp.o" "gcc" "tests/CMakeFiles/test_ckpt.dir/ckpt/policy_param_test.cpp.o.d"
  "/root/repo/tests/ckpt/policy_test.cpp" "tests/CMakeFiles/test_ckpt.dir/ckpt/policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_ckpt.dir/ckpt/policy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ckpt/CMakeFiles/ff_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
