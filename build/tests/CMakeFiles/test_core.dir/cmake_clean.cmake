file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/assessment_test.cpp.o"
  "CMakeFiles/test_core.dir/core/assessment_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/collapse_test.cpp.o"
  "CMakeFiles/test_core.dir/core/collapse_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/component_test.cpp.o"
  "CMakeFiles/test_core.dir/core/component_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/gauge_profile_test.cpp.o"
  "CMakeFiles/test_core.dir/core/gauge_profile_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/gauge_test.cpp.o"
  "CMakeFiles/test_core.dir/core/gauge_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metadata_catalog_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metadata_catalog_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/technical_debt_test.cpp.o"
  "CMakeFiles/test_core.dir/core/technical_debt_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/workflow_graph_test.cpp.o"
  "CMakeFiles/test_core.dir/core/workflow_graph_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
