
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/assessment_test.cpp" "tests/CMakeFiles/test_core.dir/core/assessment_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/assessment_test.cpp.o.d"
  "/root/repo/tests/core/collapse_test.cpp" "tests/CMakeFiles/test_core.dir/core/collapse_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/collapse_test.cpp.o.d"
  "/root/repo/tests/core/component_test.cpp" "tests/CMakeFiles/test_core.dir/core/component_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/component_test.cpp.o.d"
  "/root/repo/tests/core/gauge_profile_test.cpp" "tests/CMakeFiles/test_core.dir/core/gauge_profile_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/gauge_profile_test.cpp.o.d"
  "/root/repo/tests/core/gauge_test.cpp" "tests/CMakeFiles/test_core.dir/core/gauge_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/gauge_test.cpp.o.d"
  "/root/repo/tests/core/metadata_catalog_test.cpp" "tests/CMakeFiles/test_core.dir/core/metadata_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/metadata_catalog_test.cpp.o.d"
  "/root/repo/tests/core/technical_debt_test.cpp" "tests/CMakeFiles/test_core.dir/core/technical_debt_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/technical_debt_test.cpp.o.d"
  "/root/repo/tests/core/workflow_graph_test.cpp" "tests/CMakeFiles/test_core.dir/core/workflow_graph_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/workflow_graph_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
