# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_skel[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_cheetah[1]_include.cmake")
include("/root/repo/build/tests/test_savanna[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_irf[1]_include.cmake")
include("/root/repo/build/tests/test_gwas[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
