file(REMOVE_RECURSE
  "CMakeFiles/irf_census_campaign.dir/irf_census_campaign.cpp.o"
  "CMakeFiles/irf_census_campaign.dir/irf_census_campaign.cpp.o.d"
  "irf_census_campaign"
  "irf_census_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irf_census_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
