# Empty dependencies file for irf_census_campaign.
# This may be replaced when dependencies are built.
