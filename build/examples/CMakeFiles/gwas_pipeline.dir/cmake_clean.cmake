file(REMOVE_RECURSE
  "CMakeFiles/gwas_pipeline.dir/gwas_pipeline.cpp.o"
  "CMakeFiles/gwas_pipeline.dir/gwas_pipeline.cpp.o.d"
  "gwas_pipeline"
  "gwas_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gwas_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
