# Empty dependencies file for gwas_pipeline.
# This may be replaced when dependencies are built.
