file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_policies.dir/checkpoint_policies.cpp.o"
  "CMakeFiles/checkpoint_policies.dir/checkpoint_policies.cpp.o.d"
  "checkpoint_policies"
  "checkpoint_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
