# Empty compiler generated dependencies file for checkpoint_policies.
# This may be replaced when dependencies are built.
