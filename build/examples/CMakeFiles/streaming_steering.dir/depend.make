# Empty dependencies file for streaming_steering.
# This may be replaced when dependencies are built.
