file(REMOVE_RECURSE
  "CMakeFiles/streaming_steering.dir/streaming_steering.cpp.o"
  "CMakeFiles/streaming_steering.dir/streaming_steering.cpp.o.d"
  "streaming_steering"
  "streaming_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
