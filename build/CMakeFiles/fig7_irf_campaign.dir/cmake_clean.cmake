file(REMOVE_RECURSE
  "CMakeFiles/fig7_irf_campaign.dir/bench/fig7_irf_campaign.cpp.o"
  "CMakeFiles/fig7_irf_campaign.dir/bench/fig7_irf_campaign.cpp.o.d"
  "bench/fig7_irf_campaign"
  "bench/fig7_irf_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_irf_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
