# Empty compiler generated dependencies file for fig7_irf_campaign.
# This may be replaced when dependencies are built.
