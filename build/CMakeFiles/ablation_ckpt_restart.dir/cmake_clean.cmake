file(REMOVE_RECURSE
  "CMakeFiles/ablation_ckpt_restart.dir/bench/ablation_ckpt_restart.cpp.o"
  "CMakeFiles/ablation_ckpt_restart.dir/bench/ablation_ckpt_restart.cpp.o.d"
  "bench/ablation_ckpt_restart"
  "bench/ablation_ckpt_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ckpt_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
