# Empty compiler generated dependencies file for ablation_ckpt_restart.
# This may be replaced when dependencies are built.
