file(REMOVE_RECURSE
  "CMakeFiles/fig3_ckpt_overhead.dir/bench/fig3_ckpt_overhead.cpp.o"
  "CMakeFiles/fig3_ckpt_overhead.dir/bench/fig3_ckpt_overhead.cpp.o.d"
  "bench/fig3_ckpt_overhead"
  "bench/fig3_ckpt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ckpt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
