# Empty compiler generated dependencies file for fig3_ckpt_overhead.
# This may be replaced when dependencies are built.
