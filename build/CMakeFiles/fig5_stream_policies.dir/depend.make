# Empty dependencies file for fig5_stream_policies.
# This may be replaced when dependencies are built.
