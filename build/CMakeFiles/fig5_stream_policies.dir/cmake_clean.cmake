file(REMOVE_RECURSE
  "CMakeFiles/fig5_stream_policies.dir/bench/fig5_stream_policies.cpp.o"
  "CMakeFiles/fig5_stream_policies.dir/bench/fig5_stream_policies.cpp.o.d"
  "bench/fig5_stream_policies"
  "bench/fig5_stream_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_stream_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
