file(REMOVE_RECURSE
  "CMakeFiles/fig6_irf_timeline.dir/bench/fig6_irf_timeline.cpp.o"
  "CMakeFiles/fig6_irf_timeline.dir/bench/fig6_irf_timeline.cpp.o.d"
  "bench/fig6_irf_timeline"
  "bench/fig6_irf_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_irf_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
