# Empty dependencies file for fig6_irf_timeline.
# This may be replaced when dependencies are built.
