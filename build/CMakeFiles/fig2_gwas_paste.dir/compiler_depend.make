# Empty compiler generated dependencies file for fig2_gwas_paste.
# This may be replaced when dependencies are built.
