file(REMOVE_RECURSE
  "CMakeFiles/fig2_gwas_paste.dir/bench/fig2_gwas_paste.cpp.o"
  "CMakeFiles/fig2_gwas_paste.dir/bench/fig2_gwas_paste.cpp.o.d"
  "bench/fig2_gwas_paste"
  "bench/fig2_gwas_paste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_gwas_paste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
