# Empty dependencies file for fig4_ckpt_variation.
# This may be replaced when dependencies are built.
