file(REMOVE_RECURSE
  "CMakeFiles/fig4_ckpt_variation.dir/bench/fig4_ckpt_variation.cpp.o"
  "CMakeFiles/fig4_ckpt_variation.dir/bench/fig4_ckpt_variation.cpp.o.d"
  "bench/fig4_ckpt_variation"
  "bench/fig4_ckpt_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ckpt_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
