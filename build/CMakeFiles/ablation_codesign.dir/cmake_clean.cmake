file(REMOVE_RECURSE
  "CMakeFiles/ablation_codesign.dir/bench/ablation_codesign.cpp.o"
  "CMakeFiles/ablation_codesign.dir/bench/ablation_codesign.cpp.o.d"
  "bench/ablation_codesign"
  "bench/ablation_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
