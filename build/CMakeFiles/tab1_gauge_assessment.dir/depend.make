# Empty dependencies file for tab1_gauge_assessment.
# This may be replaced when dependencies are built.
