
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab1_gauge_assessment.cpp" "CMakeFiles/tab1_gauge_assessment.dir/bench/tab1_gauge_assessment.cpp.o" "gcc" "CMakeFiles/tab1_gauge_assessment.dir/bench/tab1_gauge_assessment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gwas/CMakeFiles/ff_gwas.dir/DependInfo.cmake"
  "/root/repo/build/src/skel/CMakeFiles/ff_skel.dir/DependInfo.cmake"
  "/root/repo/build/src/savanna/CMakeFiles/ff_savanna.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
