file(REMOVE_RECURSE
  "CMakeFiles/tab1_gauge_assessment.dir/bench/tab1_gauge_assessment.cpp.o"
  "CMakeFiles/tab1_gauge_assessment.dir/bench/tab1_gauge_assessment.cpp.o.d"
  "bench/tab1_gauge_assessment"
  "bench/tab1_gauge_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_gauge_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
