file(REMOVE_RECURSE
  "CMakeFiles/bench_irf"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench_irf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
