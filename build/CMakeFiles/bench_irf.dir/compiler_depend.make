# Empty custom commands generated dependencies file for bench_irf.
# This may be replaced when dependencies are built.
