file(REMOVE_RECURSE
  "CMakeFiles/ff_core.dir/assessment.cpp.o"
  "CMakeFiles/ff_core.dir/assessment.cpp.o.d"
  "CMakeFiles/ff_core.dir/component.cpp.o"
  "CMakeFiles/ff_core.dir/component.cpp.o.d"
  "CMakeFiles/ff_core.dir/gauge.cpp.o"
  "CMakeFiles/ff_core.dir/gauge.cpp.o.d"
  "CMakeFiles/ff_core.dir/gauge_profile.cpp.o"
  "CMakeFiles/ff_core.dir/gauge_profile.cpp.o.d"
  "CMakeFiles/ff_core.dir/metadata_catalog.cpp.o"
  "CMakeFiles/ff_core.dir/metadata_catalog.cpp.o.d"
  "CMakeFiles/ff_core.dir/technical_debt.cpp.o"
  "CMakeFiles/ff_core.dir/technical_debt.cpp.o.d"
  "CMakeFiles/ff_core.dir/workflow_graph.cpp.o"
  "CMakeFiles/ff_core.dir/workflow_graph.cpp.o.d"
  "libff_core.a"
  "libff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
