
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assessment.cpp" "src/core/CMakeFiles/ff_core.dir/assessment.cpp.o" "gcc" "src/core/CMakeFiles/ff_core.dir/assessment.cpp.o.d"
  "/root/repo/src/core/component.cpp" "src/core/CMakeFiles/ff_core.dir/component.cpp.o" "gcc" "src/core/CMakeFiles/ff_core.dir/component.cpp.o.d"
  "/root/repo/src/core/gauge.cpp" "src/core/CMakeFiles/ff_core.dir/gauge.cpp.o" "gcc" "src/core/CMakeFiles/ff_core.dir/gauge.cpp.o.d"
  "/root/repo/src/core/gauge_profile.cpp" "src/core/CMakeFiles/ff_core.dir/gauge_profile.cpp.o" "gcc" "src/core/CMakeFiles/ff_core.dir/gauge_profile.cpp.o.d"
  "/root/repo/src/core/metadata_catalog.cpp" "src/core/CMakeFiles/ff_core.dir/metadata_catalog.cpp.o" "gcc" "src/core/CMakeFiles/ff_core.dir/metadata_catalog.cpp.o.d"
  "/root/repo/src/core/technical_debt.cpp" "src/core/CMakeFiles/ff_core.dir/technical_debt.cpp.o" "gcc" "src/core/CMakeFiles/ff_core.dir/technical_debt.cpp.o.d"
  "/root/repo/src/core/workflow_graph.cpp" "src/core/CMakeFiles/ff_core.dir/workflow_graph.cpp.o" "gcc" "src/core/CMakeFiles/ff_core.dir/workflow_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
