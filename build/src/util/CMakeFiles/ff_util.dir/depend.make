# Empty dependencies file for ff_util.
# This may be replaced when dependencies are built.
