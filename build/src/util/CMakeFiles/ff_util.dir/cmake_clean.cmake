file(REMOVE_RECURSE
  "CMakeFiles/ff_util.dir/fs.cpp.o"
  "CMakeFiles/ff_util.dir/fs.cpp.o.d"
  "CMakeFiles/ff_util.dir/json.cpp.o"
  "CMakeFiles/ff_util.dir/json.cpp.o.d"
  "CMakeFiles/ff_util.dir/rng.cpp.o"
  "CMakeFiles/ff_util.dir/rng.cpp.o.d"
  "CMakeFiles/ff_util.dir/stats.cpp.o"
  "CMakeFiles/ff_util.dir/stats.cpp.o.d"
  "CMakeFiles/ff_util.dir/strings.cpp.o"
  "CMakeFiles/ff_util.dir/strings.cpp.o.d"
  "CMakeFiles/ff_util.dir/table.cpp.o"
  "CMakeFiles/ff_util.dir/table.cpp.o.d"
  "CMakeFiles/ff_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ff_util.dir/thread_pool.cpp.o.d"
  "libff_util.a"
  "libff_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
