file(REMOVE_RECURSE
  "CMakeFiles/ff_cheetah.dir/campaign.cpp.o"
  "CMakeFiles/ff_cheetah.dir/campaign.cpp.o.d"
  "CMakeFiles/ff_cheetah.dir/endpoint.cpp.o"
  "CMakeFiles/ff_cheetah.dir/endpoint.cpp.o.d"
  "CMakeFiles/ff_cheetah.dir/manifest.cpp.o"
  "CMakeFiles/ff_cheetah.dir/manifest.cpp.o.d"
  "CMakeFiles/ff_cheetah.dir/parameter.cpp.o"
  "CMakeFiles/ff_cheetah.dir/parameter.cpp.o.d"
  "CMakeFiles/ff_cheetah.dir/results.cpp.o"
  "CMakeFiles/ff_cheetah.dir/results.cpp.o.d"
  "CMakeFiles/ff_cheetah.dir/sweep.cpp.o"
  "CMakeFiles/ff_cheetah.dir/sweep.cpp.o.d"
  "libff_cheetah.a"
  "libff_cheetah.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_cheetah.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
