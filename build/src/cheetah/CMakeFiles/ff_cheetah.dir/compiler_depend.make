# Empty compiler generated dependencies file for ff_cheetah.
# This may be replaced when dependencies are built.
