file(REMOVE_RECURSE
  "libff_cheetah.a"
)
