
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cheetah/campaign.cpp" "src/cheetah/CMakeFiles/ff_cheetah.dir/campaign.cpp.o" "gcc" "src/cheetah/CMakeFiles/ff_cheetah.dir/campaign.cpp.o.d"
  "/root/repo/src/cheetah/endpoint.cpp" "src/cheetah/CMakeFiles/ff_cheetah.dir/endpoint.cpp.o" "gcc" "src/cheetah/CMakeFiles/ff_cheetah.dir/endpoint.cpp.o.d"
  "/root/repo/src/cheetah/manifest.cpp" "src/cheetah/CMakeFiles/ff_cheetah.dir/manifest.cpp.o" "gcc" "src/cheetah/CMakeFiles/ff_cheetah.dir/manifest.cpp.o.d"
  "/root/repo/src/cheetah/parameter.cpp" "src/cheetah/CMakeFiles/ff_cheetah.dir/parameter.cpp.o" "gcc" "src/cheetah/CMakeFiles/ff_cheetah.dir/parameter.cpp.o.d"
  "/root/repo/src/cheetah/results.cpp" "src/cheetah/CMakeFiles/ff_cheetah.dir/results.cpp.o" "gcc" "src/cheetah/CMakeFiles/ff_cheetah.dir/results.cpp.o.d"
  "/root/repo/src/cheetah/sweep.cpp" "src/cheetah/CMakeFiles/ff_cheetah.dir/sweep.cpp.o" "gcc" "src/cheetah/CMakeFiles/ff_cheetah.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/skel/CMakeFiles/ff_skel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
