file(REMOVE_RECURSE
  "CMakeFiles/ff_skel.dir/generator.cpp.o"
  "CMakeFiles/ff_skel.dir/generator.cpp.o.d"
  "CMakeFiles/ff_skel.dir/model.cpp.o"
  "CMakeFiles/ff_skel.dir/model.cpp.o.d"
  "CMakeFiles/ff_skel.dir/template_engine.cpp.o"
  "CMakeFiles/ff_skel.dir/template_engine.cpp.o.d"
  "libff_skel.a"
  "libff_skel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_skel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
