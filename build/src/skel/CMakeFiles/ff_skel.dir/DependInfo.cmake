
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skel/generator.cpp" "src/skel/CMakeFiles/ff_skel.dir/generator.cpp.o" "gcc" "src/skel/CMakeFiles/ff_skel.dir/generator.cpp.o.d"
  "/root/repo/src/skel/model.cpp" "src/skel/CMakeFiles/ff_skel.dir/model.cpp.o" "gcc" "src/skel/CMakeFiles/ff_skel.dir/model.cpp.o.d"
  "/root/repo/src/skel/template_engine.cpp" "src/skel/CMakeFiles/ff_skel.dir/template_engine.cpp.o" "gcc" "src/skel/CMakeFiles/ff_skel.dir/template_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
