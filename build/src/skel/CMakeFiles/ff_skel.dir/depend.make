# Empty dependencies file for ff_skel.
# This may be replaced when dependencies are built.
