file(REMOVE_RECURSE
  "libff_skel.a"
)
