file(REMOVE_RECURSE
  "libff_savanna.a"
)
