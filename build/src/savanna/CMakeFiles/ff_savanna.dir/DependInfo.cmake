
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/savanna/batch_runner.cpp" "src/savanna/CMakeFiles/ff_savanna.dir/batch_runner.cpp.o" "gcc" "src/savanna/CMakeFiles/ff_savanna.dir/batch_runner.cpp.o.d"
  "/root/repo/src/savanna/campaign_runner.cpp" "src/savanna/CMakeFiles/ff_savanna.dir/campaign_runner.cpp.o" "gcc" "src/savanna/CMakeFiles/ff_savanna.dir/campaign_runner.cpp.o.d"
  "/root/repo/src/savanna/executor.cpp" "src/savanna/CMakeFiles/ff_savanna.dir/executor.cpp.o" "gcc" "src/savanna/CMakeFiles/ff_savanna.dir/executor.cpp.o.d"
  "/root/repo/src/savanna/failure_injection.cpp" "src/savanna/CMakeFiles/ff_savanna.dir/failure_injection.cpp.o" "gcc" "src/savanna/CMakeFiles/ff_savanna.dir/failure_injection.cpp.o.d"
  "/root/repo/src/savanna/local_executor.cpp" "src/savanna/CMakeFiles/ff_savanna.dir/local_executor.cpp.o" "gcc" "src/savanna/CMakeFiles/ff_savanna.dir/local_executor.cpp.o.d"
  "/root/repo/src/savanna/provenance.cpp" "src/savanna/CMakeFiles/ff_savanna.dir/provenance.cpp.o" "gcc" "src/savanna/CMakeFiles/ff_savanna.dir/provenance.cpp.o.d"
  "/root/repo/src/savanna/tracker.cpp" "src/savanna/CMakeFiles/ff_savanna.dir/tracker.cpp.o" "gcc" "src/savanna/CMakeFiles/ff_savanna.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ff_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
