# Empty compiler generated dependencies file for ff_savanna.
# This may be replaced when dependencies are built.
