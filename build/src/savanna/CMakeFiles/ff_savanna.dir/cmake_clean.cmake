file(REMOVE_RECURSE
  "CMakeFiles/ff_savanna.dir/batch_runner.cpp.o"
  "CMakeFiles/ff_savanna.dir/batch_runner.cpp.o.d"
  "CMakeFiles/ff_savanna.dir/campaign_runner.cpp.o"
  "CMakeFiles/ff_savanna.dir/campaign_runner.cpp.o.d"
  "CMakeFiles/ff_savanna.dir/executor.cpp.o"
  "CMakeFiles/ff_savanna.dir/executor.cpp.o.d"
  "CMakeFiles/ff_savanna.dir/failure_injection.cpp.o"
  "CMakeFiles/ff_savanna.dir/failure_injection.cpp.o.d"
  "CMakeFiles/ff_savanna.dir/local_executor.cpp.o"
  "CMakeFiles/ff_savanna.dir/local_executor.cpp.o.d"
  "CMakeFiles/ff_savanna.dir/provenance.cpp.o"
  "CMakeFiles/ff_savanna.dir/provenance.cpp.o.d"
  "CMakeFiles/ff_savanna.dir/tracker.cpp.o"
  "CMakeFiles/ff_savanna.dir/tracker.cpp.o.d"
  "libff_savanna.a"
  "libff_savanna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_savanna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
