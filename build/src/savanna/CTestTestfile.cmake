# CMake generated Testfile for 
# Source directory: /root/repo/src/savanna
# Build directory: /root/repo/build/src/savanna
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
