file(REMOVE_RECURSE
  "CMakeFiles/ff_irf.dir/dataset.cpp.o"
  "CMakeFiles/ff_irf.dir/dataset.cpp.o.d"
  "CMakeFiles/ff_irf.dir/forest.cpp.o"
  "CMakeFiles/ff_irf.dir/forest.cpp.o.d"
  "CMakeFiles/ff_irf.dir/irf_loop.cpp.o"
  "CMakeFiles/ff_irf.dir/irf_loop.cpp.o.d"
  "CMakeFiles/ff_irf.dir/tree.cpp.o"
  "CMakeFiles/ff_irf.dir/tree.cpp.o.d"
  "libff_irf.a"
  "libff_irf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_irf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
