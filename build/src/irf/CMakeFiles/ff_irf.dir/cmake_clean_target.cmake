file(REMOVE_RECURSE
  "libff_irf.a"
)
