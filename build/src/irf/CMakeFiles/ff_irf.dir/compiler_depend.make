# Empty compiler generated dependencies file for ff_irf.
# This may be replaced when dependencies are built.
