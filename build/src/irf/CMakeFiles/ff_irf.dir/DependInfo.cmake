
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/irf/dataset.cpp" "src/irf/CMakeFiles/ff_irf.dir/dataset.cpp.o" "gcc" "src/irf/CMakeFiles/ff_irf.dir/dataset.cpp.o.d"
  "/root/repo/src/irf/forest.cpp" "src/irf/CMakeFiles/ff_irf.dir/forest.cpp.o" "gcc" "src/irf/CMakeFiles/ff_irf.dir/forest.cpp.o.d"
  "/root/repo/src/irf/irf_loop.cpp" "src/irf/CMakeFiles/ff_irf.dir/irf_loop.cpp.o" "gcc" "src/irf/CMakeFiles/ff_irf.dir/irf_loop.cpp.o.d"
  "/root/repo/src/irf/tree.cpp" "src/irf/CMakeFiles/ff_irf.dir/tree.cpp.o" "gcc" "src/irf/CMakeFiles/ff_irf.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
