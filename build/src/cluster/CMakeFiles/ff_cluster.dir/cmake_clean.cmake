file(REMOVE_RECURSE
  "CMakeFiles/ff_cluster.dir/batch.cpp.o"
  "CMakeFiles/ff_cluster.dir/batch.cpp.o.d"
  "CMakeFiles/ff_cluster.dir/failure.cpp.o"
  "CMakeFiles/ff_cluster.dir/failure.cpp.o.d"
  "CMakeFiles/ff_cluster.dir/filesystem.cpp.o"
  "CMakeFiles/ff_cluster.dir/filesystem.cpp.o.d"
  "CMakeFiles/ff_cluster.dir/machine.cpp.o"
  "CMakeFiles/ff_cluster.dir/machine.cpp.o.d"
  "CMakeFiles/ff_cluster.dir/sim.cpp.o"
  "CMakeFiles/ff_cluster.dir/sim.cpp.o.d"
  "CMakeFiles/ff_cluster.dir/workload.cpp.o"
  "CMakeFiles/ff_cluster.dir/workload.cpp.o.d"
  "libff_cluster.a"
  "libff_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
