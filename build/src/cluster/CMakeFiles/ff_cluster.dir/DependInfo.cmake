
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/batch.cpp" "src/cluster/CMakeFiles/ff_cluster.dir/batch.cpp.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/batch.cpp.o.d"
  "/root/repo/src/cluster/failure.cpp" "src/cluster/CMakeFiles/ff_cluster.dir/failure.cpp.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/failure.cpp.o.d"
  "/root/repo/src/cluster/filesystem.cpp" "src/cluster/CMakeFiles/ff_cluster.dir/filesystem.cpp.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/filesystem.cpp.o.d"
  "/root/repo/src/cluster/machine.cpp" "src/cluster/CMakeFiles/ff_cluster.dir/machine.cpp.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/machine.cpp.o.d"
  "/root/repo/src/cluster/sim.cpp" "src/cluster/CMakeFiles/ff_cluster.dir/sim.cpp.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/sim.cpp.o.d"
  "/root/repo/src/cluster/workload.cpp" "src/cluster/CMakeFiles/ff_cluster.dir/workload.cpp.o" "gcc" "src/cluster/CMakeFiles/ff_cluster.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
