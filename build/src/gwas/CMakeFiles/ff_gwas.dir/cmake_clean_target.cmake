file(REMOVE_RECURSE
  "libff_gwas.a"
)
