file(REMOVE_RECURSE
  "CMakeFiles/ff_gwas.dir/formats.cpp.o"
  "CMakeFiles/ff_gwas.dir/formats.cpp.o.d"
  "CMakeFiles/ff_gwas.dir/genotype.cpp.o"
  "CMakeFiles/ff_gwas.dir/genotype.cpp.o.d"
  "CMakeFiles/ff_gwas.dir/paste.cpp.o"
  "CMakeFiles/ff_gwas.dir/paste.cpp.o.d"
  "CMakeFiles/ff_gwas.dir/workflow.cpp.o"
  "CMakeFiles/ff_gwas.dir/workflow.cpp.o.d"
  "libff_gwas.a"
  "libff_gwas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_gwas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
