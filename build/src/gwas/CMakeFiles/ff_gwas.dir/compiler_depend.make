# Empty compiler generated dependencies file for ff_gwas.
# This may be replaced when dependencies are built.
