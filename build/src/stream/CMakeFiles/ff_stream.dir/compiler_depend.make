# Empty compiler generated dependencies file for ff_stream.
# This may be replaced when dependencies are built.
