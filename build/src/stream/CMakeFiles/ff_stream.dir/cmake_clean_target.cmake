file(REMOVE_RECURSE
  "libff_stream.a"
)
