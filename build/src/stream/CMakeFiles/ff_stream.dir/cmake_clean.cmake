file(REMOVE_RECURSE
  "CMakeFiles/ff_stream.dir/channel.cpp.o"
  "CMakeFiles/ff_stream.dir/channel.cpp.o.d"
  "CMakeFiles/ff_stream.dir/codegen.cpp.o"
  "CMakeFiles/ff_stream.dir/codegen.cpp.o.d"
  "CMakeFiles/ff_stream.dir/data.cpp.o"
  "CMakeFiles/ff_stream.dir/data.cpp.o.d"
  "CMakeFiles/ff_stream.dir/marshal.cpp.o"
  "CMakeFiles/ff_stream.dir/marshal.cpp.o.d"
  "CMakeFiles/ff_stream.dir/policy.cpp.o"
  "CMakeFiles/ff_stream.dir/policy.cpp.o.d"
  "CMakeFiles/ff_stream.dir/scheduler.cpp.o"
  "CMakeFiles/ff_stream.dir/scheduler.cpp.o.d"
  "libff_stream.a"
  "libff_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
