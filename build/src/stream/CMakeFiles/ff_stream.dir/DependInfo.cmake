
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/channel.cpp" "src/stream/CMakeFiles/ff_stream.dir/channel.cpp.o" "gcc" "src/stream/CMakeFiles/ff_stream.dir/channel.cpp.o.d"
  "/root/repo/src/stream/codegen.cpp" "src/stream/CMakeFiles/ff_stream.dir/codegen.cpp.o" "gcc" "src/stream/CMakeFiles/ff_stream.dir/codegen.cpp.o.d"
  "/root/repo/src/stream/data.cpp" "src/stream/CMakeFiles/ff_stream.dir/data.cpp.o" "gcc" "src/stream/CMakeFiles/ff_stream.dir/data.cpp.o.d"
  "/root/repo/src/stream/marshal.cpp" "src/stream/CMakeFiles/ff_stream.dir/marshal.cpp.o" "gcc" "src/stream/CMakeFiles/ff_stream.dir/marshal.cpp.o.d"
  "/root/repo/src/stream/policy.cpp" "src/stream/CMakeFiles/ff_stream.dir/policy.cpp.o" "gcc" "src/stream/CMakeFiles/ff_stream.dir/policy.cpp.o.d"
  "/root/repo/src/stream/scheduler.cpp" "src/stream/CMakeFiles/ff_stream.dir/scheduler.cpp.o" "gcc" "src/stream/CMakeFiles/ff_stream.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/skel/CMakeFiles/ff_skel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
