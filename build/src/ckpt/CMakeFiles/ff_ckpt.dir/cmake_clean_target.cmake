file(REMOVE_RECURSE
  "libff_ckpt.a"
)
