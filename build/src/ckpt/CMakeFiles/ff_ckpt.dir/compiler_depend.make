# Empty compiler generated dependencies file for ff_ckpt.
# This may be replaced when dependencies are built.
