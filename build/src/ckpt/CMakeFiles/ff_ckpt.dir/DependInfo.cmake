
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/calibrate.cpp" "src/ckpt/CMakeFiles/ff_ckpt.dir/calibrate.cpp.o" "gcc" "src/ckpt/CMakeFiles/ff_ckpt.dir/calibrate.cpp.o.d"
  "/root/repo/src/ckpt/gray_scott.cpp" "src/ckpt/CMakeFiles/ff_ckpt.dir/gray_scott.cpp.o" "gcc" "src/ckpt/CMakeFiles/ff_ckpt.dir/gray_scott.cpp.o.d"
  "/root/repo/src/ckpt/harness.cpp" "src/ckpt/CMakeFiles/ff_ckpt.dir/harness.cpp.o" "gcc" "src/ckpt/CMakeFiles/ff_ckpt.dir/harness.cpp.o.d"
  "/root/repo/src/ckpt/policy.cpp" "src/ckpt/CMakeFiles/ff_ckpt.dir/policy.cpp.o" "gcc" "src/ckpt/CMakeFiles/ff_ckpt.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ff_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
