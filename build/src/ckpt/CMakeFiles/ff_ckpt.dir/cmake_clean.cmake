file(REMOVE_RECURSE
  "CMakeFiles/ff_ckpt.dir/calibrate.cpp.o"
  "CMakeFiles/ff_ckpt.dir/calibrate.cpp.o.d"
  "CMakeFiles/ff_ckpt.dir/gray_scott.cpp.o"
  "CMakeFiles/ff_ckpt.dir/gray_scott.cpp.o.d"
  "CMakeFiles/ff_ckpt.dir/harness.cpp.o"
  "CMakeFiles/ff_ckpt.dir/harness.cpp.o.d"
  "CMakeFiles/ff_ckpt.dir/policy.cpp.o"
  "CMakeFiles/ff_ckpt.dir/policy.cpp.o.d"
  "libff_ckpt.a"
  "libff_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
